"""VTEAM voltage-controlled memristor model.

Implements the model of Kvatinsky et al., "VTEAM: a general model for
voltage-controlled memristors" (TCAS-II 2015), which the APIM paper uses for
all device-level simulation (paper Section 4.1).  The device parameters match
the paper: ``RON = 10 kOhm``, ``ROFF = 10 MOhm``.

Model summary
-------------
The device has an internal state variable ``s`` normalised to [0, 1], where
``s = 1`` is the fully-ON (low resistance, logic '1' in the MAGIC convention)
state and ``s = 0`` is fully OFF.  The state evolves only when the applied
voltage exceeds one of two thresholds:

.. math::

    \\frac{ds}{dt} = \\begin{cases}
        k_{off} (v/v_{off} - 1)^{\\alpha_{off}} f_{off}(s) & v < v_{off} < 0 \\\\
        0                                                   & v_{off} \\le v \\le v_{on} \\\\
        k_{on} (v/v_{on} - 1)^{\\alpha_{on}} f_{on}(s)      & v > v_{on} > 0
    \\end{cases}

(Sign convention here: a positive applied voltage drives the device toward
ON, a negative voltage toward OFF; this matches the MAGIC execution scheme
where ``V0`` applied across the output cell can RESET it.)

``f_on/f_off`` are window functions that clamp the state inside [0, 1]; we
implement the commonly-used Biolek-style rectangular window as well as a
smooth polynomial (Joglekar) window.

Resistance interpolates linearly in state:

.. math:: R(s) = R_{off} + s\\,(R_{on} - R_{off})

The rate constants are calibrated so that a full switching event under the
MAGIC execution voltage ``|v| = V0 = 1 V`` completes within one APIM clock
cycle (1.1 ns), consistent with the paper's definition of the cycle time as
the latency of one MAGIC NOR operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, DeviceError
from repro.units import KILO_OHM, MEGA_OHM, NS

__all__ = ["VTEAMParameters", "VTEAMModel", "default_parameters"]

#: Supported window-function names.
WINDOWS = ("rectangular", "joglekar")


@dataclass(frozen=True)
class VTEAMParameters:
    """Parameter set of the VTEAM model.

    Attributes
    ----------
    r_on, r_off:
        Bounding resistances in ohms.  Paper values: 10 kOhm / 10 MOhm.
    v_on, v_off:
        Switching thresholds in volts.  ``v_on > 0`` drives toward ON;
        ``v_off < 0`` drives toward OFF.
    k_on, k_off:
        Rate constants in 1/s (state units per second at threshold excess 1).
    alpha_on, alpha_off:
        Nonlinearity exponents of the threshold excess.
    window:
        Window-function name; one of :data:`WINDOWS`.
    window_p:
        Polynomial order of the Joglekar window (ignored for rectangular).
    """

    r_on: float = 10 * KILO_OHM
    r_off: float = 10 * MEGA_OHM
    v_on: float = 0.7
    v_off: float = -0.7
    k_on: float = 5.0e9
    k_off: float = -5.0e9
    alpha_on: float = 3.0
    alpha_off: float = 3.0
    window: str = "rectangular"
    window_p: int = 2

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on an inconsistent parameter set."""
        if self.r_on <= 0 or self.r_off <= 0:
            raise ConfigurationError("resistances must be positive")
        if self.r_on >= self.r_off:
            raise ConfigurationError(
                f"r_on ({self.r_on}) must be below r_off ({self.r_off})"
            )
        if self.v_on <= 0:
            raise ConfigurationError("v_on must be positive")
        if self.v_off >= 0:
            raise ConfigurationError("v_off must be negative")
        if self.k_on <= 0:
            raise ConfigurationError("k_on must be positive")
        if self.k_off >= 0:
            raise ConfigurationError("k_off must be negative")
        if self.alpha_on < 0 or self.alpha_off < 0:
            raise ConfigurationError("alpha exponents must be non-negative")
        if self.window not in WINDOWS:
            raise ConfigurationError(
                f"unknown window {self.window!r}; expected one of {WINDOWS}"
            )

    def with_resistances(self, r_on: float, r_off: float) -> "VTEAMParameters":
        """Return a copy with different resistance bounds."""
        return replace(self, r_on=r_on, r_off=r_off)


def default_parameters() -> VTEAMParameters:
    """The paper's device corner: RON = 10 kOhm, ROFF = 10 MOhm.

    Rate constants are calibrated such that a 1 V pulse fully switches the
    device in well under one 1.1 ns APIM cycle (see module docstring).
    """
    return VTEAMParameters()


class VTEAMModel:
    """Stateless evaluator of the VTEAM equations for a given parameter set.

    The model itself holds no device state; state lives in
    :class:`~repro.device.cell.MemristorCell` (or in bulk arrays inside the
    crossbar simulator).  This separation lets one model instance serve an
    entire crossbar.
    """

    def __init__(self, params: VTEAMParameters | None = None) -> None:
        self.params = params or default_parameters()
        self.params.validate()

    # -- static characteristics ------------------------------------------

    def resistance(self, state: float) -> float:
        """Device resistance at internal state ``state`` in [0, 1]."""
        self._check_state(state)
        p = self.params
        return p.r_off + state * (p.r_on - p.r_off)

    def conductance(self, state: float) -> float:
        """Device conductance (1/ohm) at internal state ``state``."""
        return 1.0 / self.resistance(state)

    def current(self, state: float, voltage: float) -> float:
        """Ohmic device current at the given state and applied voltage."""
        return voltage / self.resistance(state)

    # -- dynamics ----------------------------------------------------------

    def derivative(self, state: float, voltage: float) -> float:
        """``ds/dt`` under *voltage*; zero inside the threshold window."""
        self._check_state(state)
        p = self.params
        if voltage > p.v_on:
            excess = voltage / p.v_on - 1.0
            return p.k_on * excess**p.alpha_on * self._window(state, toward_on=True)
        if voltage < p.v_off:
            excess = voltage / p.v_off - 1.0
            return p.k_off * excess**p.alpha_off * self._window(state, toward_on=False)
        return 0.0

    def step(self, state: float, voltage: float, dt: float) -> float:
        """Advance the state by ``dt`` seconds using explicit Euler, clamped.

        Euler is adequate because callers integrate with steps far below the
        switching time constant; the state is clamped to [0, 1] which also
        realises the rectangular window exactly.
        """
        if dt < 0:
            raise DeviceError(f"negative timestep {dt}")
        new_state = state + self.derivative(state, voltage) * dt
        return min(1.0, max(0.0, new_state))

    def simulate_pulse(
        self,
        state: float,
        voltage: float,
        duration: float,
        steps: int = 64,
    ) -> tuple[float, float]:
        """Apply a constant-voltage pulse; return ``(final_state, energy)``.

        Energy is the Joule heating integral ``sum(v^2 / R(s) * dt)`` over the
        pulse, evaluated with the same Euler discretisation as the state.
        """
        if steps <= 0:
            raise DeviceError("steps must be positive")
        dt = duration / steps
        energy = 0.0
        s = state
        for _ in range(steps):
            energy += voltage * voltage / self.resistance(s) * dt
            s = self.step(s, voltage, dt)
        return s, energy

    def switching_time(
        self, voltage: float, from_state: float = 0.0, to_state: float = 1.0
    ) -> float:
        """Closed-form time to move between states under a constant voltage.

        Only defined for the rectangular window (constant ``ds/dt``); raises
        :class:`DeviceError` when the voltage cannot move the state in the
        requested direction.
        """
        if self.params.window != "rectangular":
            raise DeviceError("closed-form switching time needs rectangular window")
        rate = self.derivative(min(max(from_state, 1e-9), 1 - 1e-9), voltage)
        delta = to_state - from_state
        if delta == 0:
            return 0.0
        if rate == 0 or (rate > 0) != (delta > 0):
            raise DeviceError(
                f"voltage {voltage} V cannot drive state from {from_state} "
                f"to {to_state}"
            )
        return delta / rate

    # -- internals ---------------------------------------------------------

    def _window(self, state: float, toward_on: bool) -> float:
        p = self.params
        if p.window == "rectangular":
            if toward_on:
                return 0.0 if state >= 1.0 else 1.0
            return 0.0 if state <= 0.0 else 1.0
        # Joglekar polynomial window: 1 - (2s - 1)^(2p); symmetric, smooth.
        return 1.0 - (2.0 * state - 1.0) ** (2 * p.window_p)

    @staticmethod
    def _check_state(state: float) -> None:
        if math.isnan(state) or state < -1e-12 or state > 1.0 + 1e-12:
            raise DeviceError(f"state {state} outside [0, 1]")
