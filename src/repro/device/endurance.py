"""Endurance and wear modelling for the APIM crossbar.

MAGIC computation writes cells constantly — every NOR output, every copy,
every carry write-back — and RRAM endurance is finite (10^6-10^12
switching events depending on technology).  The paper notes its fast adder
trades "increased energy consumption and number of writes in memory" for
latency; this module quantifies the consequence:

- :class:`EnduranceModel` — lifetime estimation from a per-cell write
  budget and a measured write rate.
- :class:`WearTracker` — per-row write accounting over a block, with
  hottest-row statistics.
- :class:`RotatingAllocator` — the mitigation: a wear-levelling row
  allocator for processing-block scratch space that rotates allocations
  round-robin, flattening the per-row write distribution (the classic
  start-gap-style levelling, adapted to row granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError

__all__ = ["EnduranceModel", "WearTracker", "RotatingAllocator"]


@dataclass(frozen=True)
class EnduranceModel:
    """Technology endurance figures and lifetime arithmetic.

    Attributes
    ----------
    write_budget:
        Switching events a cell tolerates before failure (HfOx RRAM is
        commonly quoted at 10^6-10^10; default 1e9).
    """

    write_budget: float = 1e9

    def __post_init__(self) -> None:
        if self.write_budget <= 0:
            raise DeviceError("write_budget must be positive")

    def lifetime_seconds(self, writes_per_second: float) -> float:
        """Time until the budget is exhausted at a constant write rate."""
        if writes_per_second < 0:
            raise DeviceError("write rate must be non-negative")
        if writes_per_second == 0:
            return float("inf")
        return self.write_budget / writes_per_second

    def lifetime_operations(self, writes_per_operation: float) -> float:
        """Operations (e.g. multiplications) until the hottest cell dies."""
        if writes_per_operation < 0:
            raise DeviceError("writes per operation must be non-negative")
        if writes_per_operation == 0:
            return float("inf")
        return self.write_budget / writes_per_operation


class WearTracker:
    """Per-row write counters for one crossbar block."""

    def __init__(self, rows: int) -> None:
        if rows <= 0:
            raise DeviceError(f"rows must be positive: {rows}")
        self.rows = rows
        self._writes = np.zeros(rows, dtype=np.int64)

    def record(self, row: int, writes: int = 1) -> None:
        """Charge ``writes`` cell writes to ``row``."""
        if not 0 <= row < self.rows:
            raise DeviceError(f"row {row} outside [0, {self.rows})")
        if writes < 0:
            raise DeviceError("writes must be non-negative")
        self._writes[row] += writes

    @property
    def total_writes(self) -> int:
        """All writes recorded."""
        return int(self._writes.sum())

    @property
    def hottest_row(self) -> tuple[int, int]:
        """(row, writes) of the most-written row."""
        row = int(np.argmax(self._writes))
        return row, int(self._writes[row])

    def imbalance(self) -> float:
        """Hottest-row writes over the per-row mean (1.0 = perfectly flat).

        This is the factor wear levelling buys back: lifetime scales with
        ``1 / imbalance``.
        """
        mean = self._writes.mean()
        if mean == 0:
            return 1.0
        return float(self._writes.max() / mean)

    def writes_per_row(self) -> np.ndarray:
        """Copy of the per-row counter vector."""
        return self._writes.copy()


class RotatingAllocator:
    """Wear-levelling scratch-row allocator.

    A drop-in alternative to the LIFO free list of
    :class:`~repro.crossbar.structural_adder.RowPool`: allocations walk the
    row space round-robin so scratch-heavy operations spread their writes
    across the whole block instead of hammering the lowest-numbered rows.
    """

    def __init__(self, rows: int, reserved: tuple[int, ...] = ()) -> None:
        if rows <= 0:
            raise DeviceError(f"rows must be positive: {rows}")
        self.rows = rows
        self._eligible = [r for r in range(rows) if r not in set(reserved)]
        if not self._eligible:
            raise DeviceError("no allocatable rows after reservations")
        self._free = set(self._eligible)
        self._cursor = 0
        self._retired: set[int] = set()

    def alloc(self, count: int = 1) -> list[int]:
        """Take ``count`` rows, continuing from the rotation cursor."""
        if count > len(self._free):
            raise DeviceError(
                f"block out of scratch rows (need {count}, "
                f"have {len(self._free)})"
            )
        taken: list[int] = []
        probes = 0
        n = len(self._eligible)
        while len(taken) < count:
            row = self._eligible[self._cursor % n]
            self._cursor += 1
            probes += 1
            if row in self._free:
                self._free.discard(row)
                taken.append(row)
            if probes > 2 * n + count:  # pragma: no cover - defensive
                raise DeviceError("allocator cursor failed to progress")
        return taken

    def free(self, rows: list[int]) -> None:
        """Return rows to the pool (they re-enter at their rotation slot)."""
        for row in rows:
            if row not in set(self._eligible):
                raise DeviceError(f"row {row} was never allocatable")
            self._free.add(row)

    def retire(self, row: int) -> None:
        """Permanently remove a worn-out or faulty row from the rotation.

        The resilience layer calls this after a BIST scan condemns a row:
        wear levelling must stop cycling allocations through dead rows.
        Retiring a row that was never allocatable is an error; retiring the
        same row twice is idempotent.
        """
        if row not in set(self._eligible) and row not in self._retired:
            raise DeviceError(f"row {row} was never allocatable")
        self._eligible = [r for r in self._eligible if r != row]
        self._free.discard(row)
        self._retired.add(row)
        if not self._eligible:
            raise DeviceError("all allocatable rows are retired")

    @property
    def retired(self) -> frozenset[int]:
        """Rows permanently removed from the rotation."""
        return frozenset(self._retired)

    @property
    def available(self) -> int:
        """Rows currently free."""
        return len(self._free)
