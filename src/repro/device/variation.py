"""Process variation and fault modelling for the memristive crossbar.

RRAM devices vary: RON/ROFF spread log-normally across a die, some cells
are stuck (forming failures), and switching thresholds drift.  The paper's
circuit-level evaluation uses nominal corners; a production simulator must
also answer *"does MAGIC still evaluate correctly under variation?"* —
this module provides that analysis.

- :class:`VariationModel` — samples per-cell device parameters
  (log-normal resistance spread, Gaussian threshold spread) and stuck-at
  faults from a seeded RNG.
- :func:`nor_margin` — the sensing/switching margin of a MAGIC NOR under
  sampled resistances: the worst-case ratio between the "some input is 1"
  and "all inputs 0" current levels.  The margin is what shrinks as
  RON/ROFF spread grows.
- :class:`FaultInjector` — applies stuck-at faults to a
  :class:`~repro.crossbar.array.CrossbarArray` and reports which cells
  were hit, used by the reliability tests/bench to measure end-to-end
  arithmetic error rates under faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.device.vteam import VTEAMParameters, default_parameters
from repro.errors import DeviceError

if TYPE_CHECKING:  # crossbar imports device; avoid the cycle at runtime
    from repro.crossbar.array import CrossbarArray

__all__ = ["VariationModel", "SampledDevice", "nor_margin", "FaultInjector"]


@dataclass(frozen=True)
class SampledDevice:
    """One device's sampled parameters."""

    r_on: float
    r_off: float
    v_on: float
    v_off: float
    stuck: str | None  # None, "stuck_on", "stuck_off"


@dataclass(frozen=True)
class VariationModel:
    """Statistical device-variation model around a nominal corner.

    Attributes
    ----------
    nominal:
        The nominal VTEAM parameter set.
    resistance_sigma:
        Log-normal sigma of RON and ROFF (typical RRAM: 0.1-0.3).
    threshold_sigma:
        Relative Gaussian sigma of the switching thresholds.
    stuck_on_rate / stuck_off_rate:
        Per-cell probabilities of forming-time stuck faults.
    """

    nominal: VTEAMParameters = None  # type: ignore[assignment]
    resistance_sigma: float = 0.15
    threshold_sigma: float = 0.05
    stuck_on_rate: float = 0.0
    stuck_off_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.nominal is None:
            object.__setattr__(self, "nominal", default_parameters())
        if self.resistance_sigma < 0 or self.threshold_sigma < 0:
            raise DeviceError("variation sigmas must be non-negative")
        if not 0 <= self.stuck_on_rate <= 1 or not 0 <= self.stuck_off_rate <= 1:
            raise DeviceError("stuck rates must be probabilities")
        if self.stuck_on_rate + self.stuck_off_rate > 1:
            raise DeviceError("total stuck rate exceeds 1")

    def sample(self, rng: np.random.Generator) -> SampledDevice:
        """Draw one device."""
        return self.sample_many(1, rng)[0]

    def sample_many(
        self, count: int, rng: np.random.Generator
    ) -> list[SampledDevice]:
        """Draw ``count`` devices (vectorised internally)."""
        if count <= 0:
            raise DeviceError(f"count must be positive: {count}")
        nominal = self.nominal
        r_on = nominal.r_on * np.exp(
            rng.normal(0.0, self.resistance_sigma, count)
        )
        r_off = nominal.r_off * np.exp(
            rng.normal(0.0, self.resistance_sigma, count)
        )
        v_on = nominal.v_on * (1 + rng.normal(0, self.threshold_sigma, count))
        v_off = nominal.v_off * (1 + rng.normal(0, self.threshold_sigma, count))
        u = rng.uniform(size=count)
        devices = []
        for i in range(count):
            stuck: str | None = None
            if u[i] < self.stuck_on_rate:
                stuck = "stuck_on"
            elif u[i] < self.stuck_on_rate + self.stuck_off_rate:
                stuck = "stuck_off"
            devices.append(
                SampledDevice(
                    r_on=float(r_on[i]),
                    r_off=float(r_off[i]),
                    v_on=float(abs(v_on[i])),
                    v_off=-float(abs(v_off[i])),
                    stuck=stuck,
                )
            )
        return devices


def nor_margin(
    inputs_on: int,
    inputs_off: int,
    devices: list[SampledDevice],
    v0: float = 1.0,
) -> float:
    """Worst-case MAGIC NOR discrimination margin under sampled devices.

    A NOR evaluates by the current its input devices can drive into the
    output: with at least one '1' input the path conductance is RON-scale;
    with all-'0' inputs it is ROFF-scale.  The margin is the ratio of the
    weakest "must switch" current to the strongest "must not switch"
    current; MAGIC functions correctly while it stays well above 1
    (nominally ~1000, the RON/ROFF ratio).

    ``devices`` supplies one sampled device per input position (the first
    ``inputs_on`` play the '1' role).
    """
    total = inputs_on + inputs_off
    if total <= 0:
        raise DeviceError("NOR needs at least one input")
    if len(devices) < total:
        raise DeviceError(
            f"need {total} sampled devices, got {len(devices)}"
        )
    if inputs_on == 0:
        return float("inf")  # nothing must switch; no misfire possible
    # Weakest switching drive: the single ON device with the highest RON.
    weakest_on = min(v0 / d.r_on for d in devices[:inputs_on])
    # Strongest leakage: all OFF devices conducting in parallel.
    leakage = sum(v0 / d.r_off for d in devices[inputs_on:total])
    if inputs_off == 0:
        return float("inf")
    if leakage == 0:
        return float("inf")
    return weakest_on / leakage


class FaultInjector:
    """Applies stuck-at faults to a crossbar block.

    The injector freezes the chosen cells at their stuck level: subsequent
    writes to them are silently ineffective (as on real hardware), which
    the reliability analyses then observe as arithmetic errors.
    """

    def __init__(self, model: VariationModel, seed: int = 0) -> None:
        if model.stuck_on_rate + model.stuck_off_rate <= 0:
            raise DeviceError("fault injection needs a non-zero stuck rate")
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.injected: list[tuple[int, int, str]] = []

    def inject(
        self, array: CrossbarArray, pin: bool = False
    ) -> list[tuple[int, int, str]]:
        """Sample and apply faults to every cell of ``array``.

        Returns the list of (row, col, kind) hits in row-major cell order.
        The array's cells are set to the stuck level; with ``pin=True`` the
        cells are additionally frozen via
        :meth:`~repro.crossbar.array.CrossbarArray.pin_cell`, so *every*
        subsequent write (driver, MAGIC, bulk clear) is silently
        ineffective — the persistence real stuck-at faults have.  Without
        pinning, the caller re-asserts levels via :meth:`enforce` after
        each operation (or attaches the injector to a fabric with
        :meth:`~repro.crossbar.block.BlockedCrossbar.attach_fault_injector`).

        The fault draw is vectorised: one uniform matrix, thresholded, and
        ``np.argwhere`` extracts the hits — identical RNG stream and hit
        list to the per-cell scan, ~100x faster at 1024x1024.
        """
        u = self.rng.uniform(size=(array.rows, array.cols))
        on_rate = self.model.stuck_on_rate
        off_rate = self.model.stuck_off_rate
        on_mask = u < on_rate
        off_mask = ~on_mask & (u < on_rate + off_rate)
        hits = [
            (int(row), int(col),
             "stuck_on" if on_mask[row, col] else "stuck_off")
            for row, col in np.argwhere(on_mask | off_mask)
        ]
        self.injected = hits
        if pin:
            self.pin(array)
        else:
            self.enforce(array)
        return hits

    def pin(self, array: CrossbarArray) -> None:
        """Freeze every injected fault into the array's stuck-cell map."""
        for row, col, kind in self.injected:
            array.pin_cell(row, col, 1.0 if kind == "stuck_on" else 0.0)

    def enforce(self, array: CrossbarArray) -> None:
        """Re-assert the stuck levels (call after every crossbar op)."""
        for row, col, kind in self.injected:
            level = 1.0 if kind == "stuck_on" else 0.0
            if array.is_pinned(row, col):
                continue  # pinned cells cannot drift
            array.set_state(row, col, level)
