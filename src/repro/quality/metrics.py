"""Accuracy metrics used by the paper's evaluation framework.

The paper (Section 4.1): "our framework compares the approximate output
file of each application with the golden output from calculating exactly.
For image processing applications, we accept 30 dB peak signal-to-noise
ratio as an accuracy metric.  For other applications, the acceptable
accuracy is defined by having less than 10 % average relative error."
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "psnr",
    "average_relative_error",
    "normalized_rmse",
    "quality_loss_percent",
]


def _as_float_pair(
    reference: np.ndarray, output: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64)
    out = np.asarray(output, dtype=np.float64)
    if ref.shape != out.shape:
        raise WorkloadError(
            f"shape mismatch: reference {ref.shape} vs output {out.shape}"
        )
    if ref.size == 0:
        raise WorkloadError("cannot score empty outputs")
    return ref, out


def psnr(reference: np.ndarray, output: np.ndarray, peak: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical outputs).

    ``peak`` defaults to the reference's dynamic range, the convention for
    non-8-bit imagery.
    """
    ref, out = _as_float_pair(reference, output)
    mse = float(np.mean((ref - out) ** 2))
    if peak is None:
        peak = float(ref.max() - ref.min()) or 1.0
    if peak <= 0:
        raise WorkloadError(f"peak must be positive, got {peak}")
    if mse == 0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def average_relative_error(
    reference: np.ndarray, output: np.ndarray, epsilon: float | None = None
) -> float:
    """Mean of ``|out - ref| / max(|ref|, epsilon)``, as a fraction.

    ``epsilon`` guards near-zero reference values; it defaults to 1 % of
    the reference's RMS magnitude, so sparse outputs (edge maps, transform
    tails) do not blow the average up on numerically-empty samples.
    """
    ref, out = _as_float_pair(reference, output)
    if epsilon is None:
        rms = float(np.sqrt(np.mean(ref * ref)))
        epsilon = max(rms * 0.01, 1e-12)
    if epsilon <= 0:
        raise WorkloadError(f"epsilon must be positive, got {epsilon}")
    denom = np.maximum(np.abs(ref), epsilon)
    return float(np.mean(np.abs(out - ref) / denom))


def normalized_rmse(reference: np.ndarray, output: np.ndarray) -> float:
    """RMS error normalised by the reference RMS magnitude (fraction)."""
    ref, out = _as_float_pair(reference, output)
    rms_ref = float(np.sqrt(np.mean(ref * ref)))
    if rms_ref == 0:
        rms_ref = 1.0
    return float(np.sqrt(np.mean((out - ref) ** 2))) / rms_ref


def quality_loss_percent(
    reference: np.ndarray, output: np.ndarray, kind: str
) -> float:
    """Table-1-style "Quality of Loss" percentage.

    ``kind`` is ``"image"`` (normalised RMSE — the error measure PSNR is a
    log of) or ``"signal"`` (average relative error).
    """
    if kind == "image":
        return 100.0 * normalized_rmse(reference, output)
    if kind == "signal":
        return 100.0 * average_relative_error(reference, output)
    raise WorkloadError(f"unknown workload kind {kind!r}")
