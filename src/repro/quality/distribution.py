"""Error-distribution analysis beyond scalar QoL.

A single QoL percentage hides the error's *shape*: whether approximation
hurt a few elements catastrophically or everything a little.  The paper's
acceptance thresholds (PSNR / mean relative error) are averages, so an
application with hard per-element requirements needs the distribution.
:func:`error_distribution` summarises it; :func:`worst_case_elements`
locates the damage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["ErrorDistribution", "error_distribution", "worst_case_elements"]


@dataclass(frozen=True)
class ErrorDistribution:
    """Summary statistics of per-element relative error."""

    mean: float
    median: float
    p95: float
    p99: float
    max: float
    fraction_exact: float
    fraction_above_1pct: float

    def is_heavy_tailed(self, ratio: float = 10.0) -> bool:
        """True when the p99 error dwarfs the median — damage concentrated
        in a few elements rather than spread thin."""
        if self.median == 0:
            return self.p99 > 0
        return self.p99 / self.median >= ratio


def _relative_errors(
    reference: np.ndarray, output: np.ndarray
) -> np.ndarray:
    ref = np.asarray(reference, dtype=np.float64).ravel()
    out = np.asarray(output, dtype=np.float64).ravel()
    if ref.shape != out.shape:
        raise WorkloadError(
            f"shape mismatch: {ref.shape} vs {out.shape}"
        )
    if ref.size == 0:
        raise WorkloadError("cannot analyse empty outputs")
    rms = float(np.sqrt(np.mean(ref * ref)))
    guard = max(rms * 0.01, 1e-12)
    return np.abs(out - ref) / np.maximum(np.abs(ref), guard)


def error_distribution(
    reference: np.ndarray, output: np.ndarray
) -> ErrorDistribution:
    """Distribution summary of per-element relative error."""
    errors = _relative_errors(reference, output)
    return ErrorDistribution(
        mean=float(errors.mean()),
        median=float(np.median(errors)),
        p95=float(np.percentile(errors, 95)),
        p99=float(np.percentile(errors, 99)),
        max=float(errors.max()),
        fraction_exact=float(np.mean(errors == 0.0)),
        fraction_above_1pct=float(np.mean(errors > 0.01)),
    )


def worst_case_elements(
    reference: np.ndarray,
    output: np.ndarray,
    count: int = 10,
) -> list[tuple[int, float]]:
    """The ``count`` flat indices with the largest relative error,
    worst first, as ``(index, relative_error)`` pairs."""
    if count <= 0:
        raise WorkloadError(f"count must be positive: {count}")
    errors = _relative_errors(reference, output)
    count = min(count, errors.size)
    worst = np.argsort(errors)[::-1][:count]
    return [(int(i), float(errors[i])) for i in worst]
