"""Quality-of-result metrics and QoS policy (S16).

The paper's acceptance criteria (Section 4.1): image-processing outputs
must reach **30 dB PSNR**; all other applications must stay under **10 %
average relative error**.  Table 1 reports "Quality of Loss" percentages;
we compute QoL as the workload-kind-appropriate relative error measure.
"""

from repro.quality.metrics import (
    average_relative_error,
    normalized_rmse,
    psnr,
    quality_loss_percent,
)
from repro.quality.distribution import (
    ErrorDistribution,
    error_distribution,
    worst_case_elements,
)
from repro.quality.qos import QoSPolicy

__all__ = [
    "psnr",
    "average_relative_error",
    "normalized_rmse",
    "quality_loss_percent",
    "QoSPolicy",
    "ErrorDistribution",
    "error_distribution",
    "worst_case_elements",
]
