"""Quality-of-service acceptance policy (paper Section 4.1).

A :class:`QoSPolicy` decides whether one approximate run is acceptable:
image workloads must reach the PSNR floor (30 dB), everything else must
stay under the relative-error ceiling (10 %).  The adaptive tuner
(:mod:`repro.runtime.tuner`) walks the relax-bit ladder against this
policy, exactly as the paper's framework does ("it increases the level of
accuracy in 4-bit steps until ensuring the acceptable quality of
service").

:func:`relax_ladder` is the single source of that ladder.  The tuner
descends it (most approximate first, seeking the cheapest acceptable
rung); the campaign supervisor ascends the portion *above* a failing
point (:meth:`QoSPolicy.degradation_rungs`) — trading quality for cheaper
re-execution is the graceful alternative to losing the point entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.quality.metrics import average_relative_error, psnr

__all__ = ["QoSPolicy", "relax_ladder"]


def relax_ladder(max_relax_bits: int = 32, step: int = 4) -> tuple[int, ...]:
    """The paper's accuracy ladder: ``max, max-step, ..., 0``.

    Always ends at 0 (exact mode), even when ``max_relax_bits`` is not a
    multiple of ``step`` — the tuner's terminal rung must exist.
    """
    if max_relax_bits <= 0 or step <= 0:
        raise ConfigurationError(
            "max_relax_bits and step must be positive for a relax ladder"
        )
    rungs = list(range(max_relax_bits, 0, -step))
    rungs.append(0)
    return tuple(rungs)


@dataclass(frozen=True)
class QoSPolicy:
    """Acceptance thresholds.

    Attributes
    ----------
    min_psnr_db:
        Floor for image workloads (paper: 30 dB).
    max_relative_error:
        Ceiling for non-image workloads, as a fraction (paper: 0.10).
    """

    min_psnr_db: float = 30.0
    max_relative_error: float = 0.10

    def __post_init__(self) -> None:
        if self.min_psnr_db <= 0:
            raise ConfigurationError("min_psnr_db must be positive")
        if not 0 < self.max_relative_error < 1:
            raise ConfigurationError("max_relative_error must be in (0, 1)")

    def score(self, reference: np.ndarray, output: np.ndarray, kind: str) -> float:
        """The policy's decision metric for a run (dB or error fraction)."""
        if kind == "image":
            return psnr(reference, output)
        if kind == "signal":
            return average_relative_error(reference, output)
        raise ConfigurationError(f"unknown workload kind {kind!r}")

    def accepts(self, reference: np.ndarray, output: np.ndarray, kind: str) -> bool:
        """True when the output meets the paper's acceptance criterion."""
        value = self.score(reference, output, kind)
        if kind == "image":
            return value >= self.min_psnr_db
        return value <= self.max_relative_error

    def degradation_rungs(
        self, current: int, max_relax_bits: int = 32, step: int = 4
    ) -> tuple[int, ...]:
        """Relax levels above ``current``, nearest first.

        The supervisor walks these when a point exhausts its retries or
        deadline: each rung relaxes more product bits (cheaper, faster,
        lower quality), degrading the point instead of failing it.  Empty
        when ``current`` already sits at the top of the ladder.
        """
        if current < 0:
            raise ConfigurationError(
                f"current relax level must be non-negative: {current}"
            )
        return tuple(
            rung
            for rung in sorted(relax_ladder(max_relax_bits, step))
            if rung > current
        )
