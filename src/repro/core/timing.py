"""Canonical APIM latency formulas and micro-event cost builders.

Every cycle count stated in the paper is implemented here, once, and used by
both the functional models (:mod:`repro.core.multiplier`,
:mod:`repro.core.adder`) and the experiment drivers.  The structural crossbar
simulator (:mod:`repro.crossbar`) derives its own counts by actually
executing micro-ops; the cross-validation tests assert both agree.

Paper formulas (Sections 2-3.4):

==============================================  =======================
operation                                        cycles
==============================================  =======================
MAGIC NOR (any fan-in, any SIMD width)           1
two-operand serial N-bit add                     ``12N + 1``
one-bit full add / any-width 3:2 CSA step        ``13``
fast add of P operands (N-bit)                   ``13*stages(P) + 12*(N
                                                 + stages(P) - 1) + 1``
partial-product generation, c set multiplier     ``c + 1`` (worst N+1)
bits
exact final add of two W-bit addends             ``12W + 1``
hybrid final add, k exact MSBs + m approx LSBs   ``13k + 2m + 1``
==============================================  =======================

``stages(P)`` is the Wallace 3:2 reduction depth: operand count evolves as
``P -> 2*floor(P/3) + (P mod 3)`` until at most two operands remain
(9 operands take 4 stages, matching the paper's Figure 2(b)).

Micro-event counts (used for energy) follow the MAGIC NOR decompositions in
the paper's Eq. (1a)/(1b): one 1-bit full addition costs ``NOR_OPS_PER_FA``
NOR firings; a copy is two successive NOT (1-input NOR) operations whose
first stage is shared across all copies of the same source row.
"""

from __future__ import annotations

from repro.core.cost import Cost
from repro.errors import ApproximationError, ConfigurationError

__all__ = [
    "FULL_ADDER_CYCLES",
    "NOR_OPS_PER_FA",
    "serial_add_cycles",
    "hybrid_final_add_cycles",
    "reduction_sequence",
    "reduction_stages",
    "fast_multi_add_cycles",
    "ppgen_cycles",
    "cost_serial_add",
    "cost_hybrid_final_add",
    "cost_csa_step",
    "cost_wallace_reduce",
    "cost_ppgen",
    "cost_copy",
    "cost_multiply",
]

#: Cycles of one isolated 1-bit full addition (paper Section 3.2).
FULL_ADDER_CYCLES = 13

#: MAGIC NOR firings per 1-bit full addition, from the Eq. (1a)/(1b)
#: decomposition of sum and carry into NOR operations.
NOR_OPS_PER_FA = 12


def _check_width(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"bit width must be positive, got {n}")


# ---------------------------------------------------------------------------
# pure cycle formulas
# ---------------------------------------------------------------------------


def serial_add_cycles(n: int) -> int:
    """Cycles of a two-operand serial N-bit in-memory addition: ``12N + 1``."""
    _check_width(n)
    return 12 * n + 1


def hybrid_final_add_cycles(width: int, relax_bits: int) -> int:
    """Cycles of the final product stage with ``relax_bits`` approximate LSBs.

    ``13k + 2m + 1`` for ``k = width - m`` exact MSBs (paper Section 3.4).
    The formula is applied uniformly, so the exact case (``m = 0``) costs
    ``13*width + 1`` — the paper's own figure for the conventional final
    stage ("the conventional approach requires 13*2N cycles"); with
    ``relax_bits == width`` only the MAJ carry chain and one sum-inversion
    cycle remain (``2*width + 1``).
    """
    _check_width(width)
    if not 0 <= relax_bits <= width:
        raise ApproximationError(
            f"relax_bits {relax_bits} outside [0, {width}] for width {width}"
        )
    k = width - relax_bits
    return 13 * k + 2 * relax_bits + 1


def reduction_sequence(operands: int) -> list[int]:
    """Operand counts at the start of each 3:2 reduction stage.

    ``reduction_sequence(9) == [9, 6, 4, 3]`` (then 2 remain), i.e. four
    stages — the paper's 9:2 example.
    """
    if operands < 0:
        raise ConfigurationError(f"operand count must be non-negative: {operands}")
    sequence = []
    count = operands
    while count > 2:
        sequence.append(count)
        count = 2 * (count // 3) + count % 3
    return sequence


def reduction_stages(operands: int) -> int:
    """Number of 3:2 reduction stages to reach at most two operands."""
    return len(reduction_sequence(operands))


def fast_multi_add_cycles(operands: int, n: int) -> int:
    """Cycles of the fast adder summing ``operands`` N-bit numbers.

    Tree reduction (13 cycles per stage) followed by a serial addition of
    the two survivors, whose width has grown by one bit per stage beyond the
    first (9 operands of N bits leave two (N+3)-bit numbers; 3 operands give
    the paper's ``12N + 14``).
    """
    _check_width(n)
    if operands < 1:
        raise ConfigurationError("need at least one operand")
    if operands == 1:
        return 0
    stages = reduction_stages(operands)
    final_width = n + max(stages - 1, 0)
    return FULL_ADDER_CYCLES * stages + serial_add_cycles(final_width)


def ppgen_cycles(set_bits: int) -> int:
    """Cycles to generate partial products for a multiplier with ``set_bits``
    ones: one shared NOT of the multiplicand plus one gated copy per set bit
    (worst case ``N + 1``; zero set bits produce the zero product for free).
    """
    if set_bits < 0:
        raise ConfigurationError(f"set_bits must be non-negative: {set_bits}")
    if set_bits == 0:
        return 0
    return set_bits + 1


# ---------------------------------------------------------------------------
# cost builders (cycles + micro-events)
# ---------------------------------------------------------------------------


def cost_serial_add(n: int) -> Cost:
    """Exact serial addition of two N-bit operands."""
    return Cost(cycles=serial_add_cycles(n), nor_ops=NOR_OPS_PER_FA * n)


def cost_hybrid_final_add(width: int, relax_bits: int) -> Cost:
    """Final product stage with ``relax_bits`` approximate LSBs.

    The m approximate positions each evaluate MAJ over the two addend bits
    and the incoming carry in a single bitline activation, then write the
    carry back (2 cycles/bit, one MAJ + one cell write); all approximate sum
    bits are then produced by one parallel inversion cycle (m NOR firings).
    The k exact positions are conventional MAGIC full adders.
    """
    cycles = hybrid_final_add_cycles(width, relax_bits)
    k = width - relax_bits
    m = relax_bits
    return Cost(
        cycles=cycles,
        nor_ops=NOR_OPS_PER_FA * k + m,
        maj_ops=m,
        cell_writes=m,
    )


def cost_csa_step(width: int, groups: int = 1) -> Cost:
    """One 3:2 carry-save step over ``groups`` independent operand triples.

    13 cycles regardless of width or group count (all bit positions and all
    groups execute in parallel under MAGIC's SIMD voltage scheme).
    """
    _check_width(width)
    if groups < 1:
        raise ConfigurationError(f"groups must be >= 1, got {groups}")
    return Cost(
        cycles=FULL_ADDER_CYCLES,
        nor_ops=NOR_OPS_PER_FA * width * groups,
    )


def cost_wallace_reduce(operands: int, width: int, max_width: int | None = None) -> Cost:
    """Full N:2 tree reduction of ``operands`` numbers of ``width`` bits.

    Accumulates one CSA step per stage plus the interconnect traffic of
    toggling intermediate results between the data and processing blocks
    (every surviving operand moves once per stage, paper Section 3.3).

    ``max_width`` caps the stage width: inside a multiplication the
    operands are partial products whose sum — the product — is bounded by
    ``2**(2N)``, so fields never grow past the product width.
    """
    _check_width(width)
    total = Cost()
    stage_width = width
    for count in reduction_sequence(operands):
        groups = count // 3
        total += cost_csa_step(stage_width, groups)
        survivors = 2 * groups + count % 3
        total += Cost(interconnect_bits=survivors * stage_width)
        stage_width += 1
        if max_width is not None:
            stage_width = min(stage_width, max_width)
    return total


def cost_copy(bits: int, shared_not: bool = False) -> Cost:
    """Copy of a ``bits``-wide row between blocks through the interconnect.

    A copy is two successive NOT operations; when ``shared_not`` is true the
    first inversion was already produced by an earlier copy of the same
    source and only the second NOT fires (1 cycle).
    """
    _check_width(bits)
    if shared_not:
        return Cost(cycles=1, nor_ops=bits, interconnect_bits=bits)
    return Cost(cycles=2, nor_ops=2 * bits, interconnect_bits=bits)


def cost_ppgen(n: int, set_bits: int) -> Cost:
    """Partial-product generation for an N-bit multiplicand.

    Reads all N multiplier bits through the SA, then performs one gated
    shifted copy per set bit (first copy pays the extra inversion cycle).
    """
    _check_width(n)
    if set_bits < 0 or set_bits > n:
        raise ConfigurationError(f"set_bits {set_bits} outside [0, {n}]")
    cost = Cost(sa_reads=n)
    if set_bits == 0:
        return cost
    cost += cost_copy(n, shared_not=False)
    for _ in range(set_bits - 1):
        cost += cost_copy(n, shared_not=True)
    return cost


def cost_multiply(n: int, set_bits: int, relax_bits: int = 0) -> Cost:
    """Complete N x N multiplication cost for a multiplier with ``set_bits``
    ones and ``relax_bits`` approximate LSBs in the final stage.

    Stages (paper Figure 1(b)-(d)): partial-product generation, Wallace
    N:2 reduction of the ``set_bits`` non-zero partial products, and the
    final two-addend addition over the ``2N``-bit product.
    """
    _check_width(n)
    product_width = 2 * n
    if not 0 <= relax_bits <= product_width:
        raise ApproximationError(
            f"relax_bits {relax_bits} outside [0, {product_width}]"
        )
    cost = cost_ppgen(n, set_bits)
    if set_bits == 0:
        # Zero multiplier: the product is the freshly-initialised zero row.
        return cost
    if set_bits == 1:
        # Single partial product: it *is* the product, already in place.
        return cost
    cost += cost_wallace_reduce(set_bits, product_width, max_width=product_width)
    cost += cost_hybrid_final_add(product_width, relax_bits)
    return cost
