"""Latency/energy cost accounting for APIM operations.

A :class:`Cost` records what an operation *did* — clock cycles on the
critical path plus counters of physical micro-events (MAGIC NOR gate firings,
cell writes, SA reads, majority evaluations, interconnect bit transfers).
Costs are composable: ``+`` merges sequential work, :meth:`scaled` replicates
a cost (e.g. the same multiply over a million array elements).

Energy is evaluated against an :class:`~repro.core.config.APIMConfig` at
query time, so a single measured cost can be re-priced under different
energy corners (useful for the ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import APIMConfig
from repro.errors import ConfigurationError

__all__ = ["Cost", "CostLedger", "ENERGY_CATEGORIES"]

#: Categories reported by :meth:`Cost.energy_breakdown`.
ENERGY_CATEGORIES = (
    "nor",
    "write",
    "sa_read",
    "maj",
    "interconnect",
    "peripheral",
    "static",
)


@dataclass(frozen=True)
class Cost:
    """Cycle count and micro-event counters of one (or many) operations.

    Attributes
    ----------
    cycles:
        MAGIC clock cycles on the critical path of *one* lane.  When a cost
        describes work replicated across independent SIMD lanes (see
        :meth:`scaled`), ``cycles`` accumulates *total lane-cycles*; the
        runtime divides by the machine's lane count to obtain wall time.
    nor_ops:
        MAGIC NOR firings, counted per output cell.
    cell_writes:
        Full cell writes (initialisation, copies, result write-back).
    sa_reads:
        Sense-amplifier bit reads.
    maj_ops:
        Majority evaluations in the modified SA.
    interconnect_bits:
        Bits moved through the configurable interconnect.
    """

    cycles: float = 0.0
    nor_ops: float = 0.0
    cell_writes: float = 0.0
    sa_reads: float = 0.0
    maj_ops: float = 0.0
    interconnect_bits: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(
            cycles=self.cycles + other.cycles,
            nor_ops=self.nor_ops + other.nor_ops,
            cell_writes=self.cell_writes + other.cell_writes,
            sa_reads=self.sa_reads + other.sa_reads,
            maj_ops=self.maj_ops + other.maj_ops,
            interconnect_bits=self.interconnect_bits + other.interconnect_bits,
        )

    __radd__ = __add__

    def scaled(self, count: float) -> "Cost":
        """Replicate this cost ``count`` times (sequential or SIMD lanes)."""
        if count < 0:
            raise ConfigurationError(f"cannot scale a cost by {count}")
        return Cost(
            cycles=self.cycles * count,
            nor_ops=self.nor_ops * count,
            cell_writes=self.cell_writes * count,
            sa_reads=self.sa_reads * count,
            maj_ops=self.maj_ops * count,
            interconnect_bits=self.interconnect_bits * count,
        )

    # -- pricing --------------------------------------------------------------

    def time(self, config: APIMConfig, lanes: int = 1) -> float:
        """Wall-clock seconds when executed across ``lanes`` parallel lanes."""
        if lanes <= 0:
            raise ConfigurationError(f"lanes must be positive, got {lanes}")
        return self.cycles * config.cycle_time / lanes

    def energy_breakdown(
        self, config: APIMConfig, lanes: int = 1, active_blocks: int = 1
    ) -> dict[str, float]:
        """Per-category energy in joules.

        Static energy integrates peripheral leakage of the active blocks over
        the wall time; the dynamic categories are independent of lane count.
        """
        wall_time = self.time(config, lanes)
        return {
            "nor": self.nor_ops * config.e_nor,
            "write": self.cell_writes * config.e_write,
            "sa_read": self.sa_reads * config.e_sa_read,
            "maj": self.maj_ops * config.e_maj,
            "interconnect": self.interconnect_bits * config.e_interconnect,
            "peripheral": self.cycles * config.e_peripheral,
            "static": active_blocks * config.p_static_per_block * wall_time,
        }

    def energy(
        self, config: APIMConfig, lanes: int = 1, active_blocks: int = 1
    ) -> float:
        """Total energy in joules."""
        return sum(self.energy_breakdown(config, lanes, active_blocks).values())

    def edp(self, config: APIMConfig, lanes: int = 1, active_blocks: int = 1) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy(config, lanes, active_blocks) * self.time(config, lanes)

    def is_zero(self) -> bool:
        """True when the cost records no work at all."""
        return (
            self.cycles == 0
            and self.nor_ops == 0
            and self.cell_writes == 0
            and self.sa_reads == 0
            and self.maj_ops == 0
            and self.interconnect_bits == 0
        )


class CostLedger:
    """Mutable accumulator of :class:`Cost` objects with named entries.

    The engine and executor use a ledger to attribute cost to logical steps
    (``"multiply"``, ``"reduce"``, ``"final"`` ...), which the ablation
    benches then break down.
    """

    def __init__(self) -> None:
        self._entries: dict[str, Cost] = {}

    def charge(self, label: str, cost: Cost) -> None:
        """Add ``cost`` under ``label`` (labels accumulate)."""
        self._entries[label] = self._entries.get(label, Cost()) + cost

    @property
    def total(self) -> Cost:
        """Sum of all entries."""
        return sum(self._entries.values(), Cost())

    def entry(self, label: str) -> Cost:
        """Cost recorded under ``label`` (zero cost if absent)."""
        return self._entries.get(label, Cost())

    def labels(self) -> tuple[str, ...]:
        """Labels with recorded cost, in insertion order."""
        return tuple(self._entries)

    def reset(self) -> None:
        """Drop all recorded entries."""
        self._entries.clear()

    def as_dict(self) -> dict[str, Cost]:
        """Snapshot of the ledger contents."""
        return dict(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{label}={cost.cycles:.0f}cyc" for label, cost in self._entries.items()
        )
        return f"CostLedger({parts})"
