"""Central configuration of the APIM architecture model.

Every latency and energy constant used by the functional models lives here,
with its derivation.  The paper (Section 4.1) obtains these constants from
Cadence Virtuoso circuit simulation at 45 nm with the VTEAM memristor model
(RON = 10 kOhm, ROFF = 10 MOhm); we derive constants of the same magnitude
analytically from the same device parameters and calibrate the remaining
freedom against the paper's headline results (see ``EXPERIMENTS.md``).

Timing facts stated explicitly in the paper:

- one MAGIC NOR operation defines the cycle time, **1.1 ns**;
- a sense-amplifier read takes **0.3 ns**;
- the modified SA computes a majority (MAJ) in **0.6 ns**, so carry
  generation plus write-back costs **2 cycles per bit** in the approximate
  final stage (2*2N + 1 cycles total for a 2N-bit result).

Energy derivations (order-of-magnitude, documented per field):

- ``e_nor``: a MAGIC NOR drives ``V0`` across input devices in series with
  the output device.  Worst case (all inputs '1', output switching) the path
  resistance is about ``RON`` so the instantaneous power is
  ``V0^2 / RON = 100 uW`` and a full 1.1 ns cycle dissipates about 110 fJ.
  Averaged over input patterns most gates see an ROFF-dominated path
  (0.1 uA), so the *average* per-cell NOR energy is far lower; we use 8 fJ.
- ``e_write``: a full SET/RESET pulse through a device trajectory between
  RON and ROFF; comparable to a worst-case NOR but with a stronger driver,
  averaged ~25 fJ per cell.
- ``e_sa_read``: small-signal sensing at 0.3 ns, ~2 fJ per bit.
- ``e_maj``: the modified SA evaluates MAJ in 0.6 ns, ~4 fJ per bit.
- ``e_interconnect``: driving one bit across the blocked-crossbar barrel
  shifter, ~1 fJ per bit (the paper stresses this circuit is small because
  all blocks share row/column controllers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.units import FJ, NS, KILO_OHM, MEGA_OHM

__all__ = ["APIMConfig", "default_config"]


@dataclass(frozen=True)
class APIMConfig:
    """Architecture, timing and energy parameters of the APIM design.

    Instances are immutable; use :meth:`with_overrides` to derive variants
    (e.g. for ablation benches).
    """

    # -- timing ------------------------------------------------------------
    cycle_time: float = 1.1 * NS
    """Latency of one MAGIC NOR operation (paper Section 2)."""

    sa_read_time: float = 0.3 * NS
    """Sense-amplifier read latency (paper Section 3.4)."""

    maj_time: float = 0.6 * NS
    """Majority evaluation latency in the modified SA (paper Section 3.4)."""

    # -- device ------------------------------------------------------------
    v0: float = 1.0
    """MAGIC execution voltage in volts."""

    r_on: float = 10 * KILO_OHM
    """Low (logic '1') device resistance (paper Section 4.1)."""

    r_off: float = 10 * MEGA_OHM
    """High (logic '0') device resistance (paper Section 4.1)."""

    # -- per-operation energies (joules) ------------------------------------
    e_nor: float = 8 * FJ
    """Average energy of one MAGIC NOR per output cell (see module doc)."""

    e_write: float = 25 * FJ
    """Average energy of one full cell write (SET/RESET pulse)."""

    e_sa_read: float = 2 * FJ
    """Energy of one sense-amplifier bit read."""

    e_maj: float = 4 * FJ
    """Energy of one majority evaluation in the modified SA."""

    e_interconnect: float = 1 * FJ
    """Energy of moving one bit through the configurable interconnect."""

    e_peripheral: float = 800 * FJ
    """Peripheral energy per lane-cycle (row/column decoders, line drivers,
    controller sequencing) for one active lane's block section.

    Driving a kilobit wordline plus decode logic at 45 nm costs on the
    order of a picojoule per activation; this term dominates APIM's energy
    (as peripheral circuits do in most RRAM designs) and is the constant
    calibrated against the paper's 28x energy headline (EXPERIMENTS.md).
    """

    p_static_per_block: float = 0.5e-6
    """Static power per active block pair in watts.

    Non-volatile crossbars have essentially no retention power; this term
    models peripheral (decoder/controller) leakage only.
    """

    # -- organisation --------------------------------------------------------
    word_bits: int = 32
    """Operand width N; the paper evaluates 32x32 multiplication."""

    block_rows: int = 1024
    """Wordlines per crossbar block."""

    block_cols: int = 1024
    """Bitlines per crossbar block."""

    mult_rows_per_lane: int = 192
    """Crossbar rows a single in-flight operation chain occupies.

    A 32x32 multiplication holds up to 32 partial products, about ten
    concurrent carry-save groups of 12 scratch rows each, and the final
    stage's working rows — roughly 6 N rows in total.  One 1024-row block
    therefore sustains ``block_rows / mult_rows_per_lane`` concurrent
    operations; this bounds APIM's SIMD width and is what Section 4.2's
    system-level speedups rest on.
    """

    processing_block_fraction: float = 0.5
    """Fraction of blocks acting as processing blocks at any instant.

    The paper toggles between data and processing blocks during N:2
    reduction, so on average half the involved blocks compute.
    """

    spare_row_fraction: float = 0.02
    """Fraction of each block's wordlines reserved as spare rows.

    The resilience layer retires rows with stuck cells onto this pool
    (CONTRA-style area budget: redundancy is bought at design time and the
    area model charges for it).  2% tracks commodity RRAM/DRAM redundancy
    provisioning; raise it for harsher fault-rate corners."""

    def __post_init__(self) -> None:
        self.validate()

    # -- derived quantities --------------------------------------------------

    @property
    def block_bits(self) -> int:
        """Storage capacity of one block in bits."""
        return self.block_rows * self.block_cols

    @property
    def block_bytes(self) -> int:
        """Storage capacity of one block in bytes."""
        return self.block_bits // 8

    def blocks_for(self, dataset_bytes: float) -> int:
        """Number of crossbar blocks a dataset of this size occupies."""
        if dataset_bytes <= 0:
            raise ConfigurationError("dataset size must be positive")
        return max(1, int(-(-dataset_bytes // self.block_bytes)))

    @property
    def spare_rows_per_block(self) -> int:
        """Spare wordlines reserved per block under the spare budget."""
        return math.ceil(self.block_rows * self.spare_row_fraction)

    def parallel_lanes(self, dataset_bytes: float) -> int:
        """Concurrent word-level operations for a resident dataset.

        ``lanes = processing_blocks * (rows per block / rows per op)``;
        each lane executes one multiplication (or addition) chain at a time,
        with MAGIC's row-parallel execution providing the intra-block SIMD.
        """
        blocks = self.blocks_for(dataset_bytes)
        processing = max(1, int(blocks * self.processing_block_fraction))
        per_block = max(1, self.block_rows // self.mult_rows_per_lane)
        return processing * per_block

    # -- lifecycle -------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        positive = {
            "cycle_time": self.cycle_time,
            "sa_read_time": self.sa_read_time,
            "maj_time": self.maj_time,
            "v0": self.v0,
            "r_on": self.r_on,
            "r_off": self.r_off,
            "word_bits": self.word_bits,
            "block_rows": self.block_rows,
            "block_cols": self.block_cols,
            "mult_rows_per_lane": self.mult_rows_per_lane,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        non_negative = {
            "e_nor": self.e_nor,
            "e_write": self.e_write,
            "e_sa_read": self.e_sa_read,
            "e_maj": self.e_maj,
            "e_interconnect": self.e_interconnect,
            "e_peripheral": self.e_peripheral,
            "p_static_per_block": self.p_static_per_block,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")
        if self.r_on >= self.r_off:
            raise ConfigurationError("r_on must be below r_off")
        if not 0 < self.processing_block_fraction <= 1:
            raise ConfigurationError("processing_block_fraction must be in (0, 1]")
        if not 0 <= self.spare_row_fraction < 0.5:
            raise ConfigurationError(
                "spare_row_fraction must be in [0, 0.5): spares are "
                "redundancy, not the majority of the array"
            )
        if self.word_bits > 64:
            raise ConfigurationError("word_bits above 64 is not supported")

    def with_overrides(self, **overrides: object) -> "APIMConfig":
        """Return a copy with some fields replaced (for ablations/sweeps)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def default_config() -> APIMConfig:
    """The paper's configuration: 1.1 ns cycle, 32-bit words, 10 k/10 M ohm."""
    return APIMConfig()
