"""APIM's two approximation mechanisms, bit-accurate and vectorised.

The paper (Section 3.4) proposes two ways to trade accuracy for speed:

1. **First-stage approximation** — mask the ``masked_bits`` least significant
   bits of the multiplier before partial products are generated.  Cheap and
   energy-efficient (fewer partial products), but the error enters at the
   start and propagates through the whole multiplication.

2. **Last-stage approximation** — in the final addition of the two 2N-bit
   carry-save survivors, compute every carry exactly via the modified
   sense amplifier's MAJ function, then *approximate* each of the
   ``relax_bits`` least significant sum bits as the complement of the carry
   generated at that position: ``S_i = NOT(C_{i+1})``.  This identity holds
   for six of the eight input combinations of a 1-bit addition; it fails
   only for ``(A, B, Cin) = (0,0,0)`` and ``(1,1,1)`` — a 25 % per-bit error
   probability on random data.  The ``k = width - m`` most significant bits
   are computed conventionally, so the approximation cannot corrupt them.

Both mechanisms are implemented here as exact bit-level transforms over
NumPy ``uint64`` arrays, so workload-scale experiments run at array speed
while remaining faithful to the hardware's bit behaviour.

The paper's adaptive mode uses last-stage approximation only (Table 1's
"relax bits" is ``m``); first-stage masking appears in Figure 4's
comparison.  :class:`ApproxSpec` captures either (or both, for ablations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ApproximationError

__all__ = [
    "ApproxMode",
    "ApproxSpec",
    "EXACT",
    "mask_multiplier",
    "approximate_final_add",
    "approximate_sum_bit",
]


class ApproxMode(enum.Enum):
    """Which approximation mechanism an :class:`ApproxSpec` engages."""

    EXACT = "exact"
    FIRST_STAGE = "first_stage"
    LAST_STAGE = "last_stage"
    BOTH = "both"


@dataclass(frozen=True)
class ApproxSpec:
    """Approximation setting of one APIM operation.

    Attributes
    ----------
    masked_bits:
        First-stage: number of multiplier LSBs masked to zero.
    relax_bits:
        Last-stage: number of product LSBs whose sum bits are approximated
        (the paper's ``m``); the exact portion is ``k = 2N - m``.
    """

    masked_bits: int = 0
    relax_bits: int = 0

    def __post_init__(self) -> None:
        if self.masked_bits < 0:
            raise ApproximationError(f"masked_bits must be >= 0: {self.masked_bits}")
        if self.relax_bits < 0:
            raise ApproximationError(f"relax_bits must be >= 0: {self.relax_bits}")

    @property
    def mode(self) -> ApproxMode:
        """The mechanism combination this spec engages."""
        if self.masked_bits and self.relax_bits:
            return ApproxMode.BOTH
        if self.masked_bits:
            return ApproxMode.FIRST_STAGE
        if self.relax_bits:
            return ApproxMode.LAST_STAGE
        return ApproxMode.EXACT

    @property
    def is_exact(self) -> bool:
        """True when no approximation is applied."""
        return self.masked_bits == 0 and self.relax_bits == 0

    def validate_for(self, word_bits: int) -> None:
        """Check the spec against an operand width (product is 2x wider)."""
        if self.masked_bits > word_bits:
            raise ApproximationError(
                f"masked_bits {self.masked_bits} exceeds word width {word_bits}"
            )
        if self.relax_bits > 2 * word_bits:
            raise ApproximationError(
                f"relax_bits {self.relax_bits} exceeds product width {2 * word_bits}"
            )

    @classmethod
    def first_stage(cls, masked_bits: int) -> "ApproxSpec":
        """Spec masking ``masked_bits`` multiplier LSBs."""
        return cls(masked_bits=masked_bits)

    @classmethod
    def last_stage(cls, relax_bits: int) -> "ApproxSpec":
        """Spec relaxing ``relax_bits`` product LSBs (the paper's default)."""
        return cls(relax_bits=relax_bits)


#: Convenience constant: the exact (no approximation) spec.
EXACT = ApproxSpec()


def _as_uint64(values: np.ndarray | int) -> np.ndarray:
    array = np.asarray(values, dtype=np.uint64)
    return array


def mask_multiplier(
    multiplier: np.ndarray | int, masked_bits: int, word_bits: int
) -> np.ndarray:
    """First-stage approximation: zero the ``masked_bits`` LSBs.

    Returns the masked multiplier as ``uint64``.
    """
    if not 0 <= masked_bits <= word_bits:
        raise ApproximationError(
            f"masked_bits {masked_bits} outside [0, {word_bits}]"
        )
    values = _as_uint64(multiplier)
    if masked_bits == 0:
        return values
    keep = (np.uint64(1) << np.uint64(word_bits)) - np.uint64(1)
    keep &= ~((np.uint64(1) << np.uint64(masked_bits)) - np.uint64(1))
    return values & keep


def approximate_final_add(
    x: np.ndarray | int,
    y: np.ndarray | int,
    width: int,
    relax_bits: int,
) -> np.ndarray:
    """Bit-accurate model of the approximate final product stage.

    Adds the two carry-save survivors ``x`` and ``y`` (each at most ``width``
    bits, with ``x + y < 2**width`` guaranteed by construction since their
    sum is the true product).  Carries are exact at every position; the
    ``relax_bits`` least significant *sum* bits are replaced by the
    complement of the carry generated at their position.

    Implementation note: for a ripple addition, the exact carry-in vector is
    recoverable from the exact sum as ``c = x XOR y XOR (x + y)`` (bit ``i``
    of ``c`` is the carry *into* position ``i``), so the whole transform is
    a handful of vectorised bitwise operations — no per-bit loop.
    """
    if not 1 <= width <= 64:
        raise ApproximationError(f"width {width} outside [1, 64]")
    if not 0 <= relax_bits <= width:
        raise ApproximationError(f"relax_bits {relax_bits} outside [0, {width}]")
    xv = _as_uint64(x)
    yv = _as_uint64(y)
    exact_sum = xv + yv  # < 2**width by contract; wraps harmlessly at 64.
    if relax_bits == 0:
        return exact_sum
    carries_in = xv ^ yv ^ exact_sum  # bit i = carry into position i
    carries_out = carries_in >> np.uint64(1)
    if width < 64:
        carries_out |= (exact_sum >> np.uint64(width)) << np.uint64(width - 1)
    low_mask = np.uint64(0xFFFFFFFFFFFFFFFF) if relax_bits >= 64 else (
        (np.uint64(1) << np.uint64(relax_bits)) - np.uint64(1)
    )
    approx_low = (~carries_out) & low_mask
    return (exact_sum & ~low_mask) | approx_low


def approximate_sum_bit(a: int, b: int, carry_in: int) -> tuple[int, int]:
    """Scalar 1-bit approximate addition: ``(sum_approx, carry_out_exact)``.

    The hardware primitive behind last-stage approximation: the modified SA
    evaluates ``Cout = MAJ(a, b, cin)`` exactly and the sum is approximated
    as ``NOT(Cout)``.  Used by the structural simulator and by tests that
    verify the 25 % random-input error rate the paper quotes.
    """
    for name, bit in (("a", a), ("b", b), ("carry_in", carry_in)):
        if bit not in (0, 1):
            raise ApproximationError(f"{name} must be 0 or 1, got {bit!r}")
    carry_out = (a & b) | (b & carry_in) | (carry_in & a)
    return 1 - carry_out, carry_out
