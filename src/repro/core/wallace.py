"""Carry-save (3:2) reduction — the fast adder's arithmetic core.

The APIM fast adder (paper Section 3.2, Figure 2) reduces P operands to two
using layers of carry-save adders: every group of three operands is replaced
by a *sum* word (bitwise XOR) and a *carry* word (bitwise majority shifted
left by one).  Each layer costs 13 cycles regardless of operand width
because MAGIC executes all bit positions in parallel.

This module provides the reduction as bit-exact NumPy transforms, both for a
list of explicit operands (:func:`reduce_to_two`) and fused with partial
product generation for multiplication (:func:`reduce_partial_products`).
Carry-save reduction is *exact*: the two survivors always sum to the same
value as the inputs.  Approximation only ever enters in the final
two-operand addition (:mod:`repro.core.approximation`).

Note on fidelity: the hardware only instantiates partial products for *set*
multiplier bits, so operand grouping (and hence the individual survivor bit
patterns, though never their sum) depends on the multiplier's popcount.
:func:`reduce_partial_products` models that faithfully per scalar;
:func:`reduce_partial_products_vectorised` groups all N rows including
zeros, which preserves sums exactly and error statistics to within noise
(asserted by ``tests/test_cross_validation.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "csa_step",
    "reduce_to_two",
    "partial_products",
    "reduce_partial_products",
    "reduce_partial_products_vectorised",
]

_ONE = np.uint64(1)


def csa_step(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One 3:2 carry-save addition: ``(sum, carry)`` with
    ``sum + carry == a + b + c`` (modulo 2**64)."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    c = np.asarray(c, dtype=np.uint64)
    total = a ^ b ^ c
    carry = ((a & b) | (b & c) | (c & a)) << _ONE
    return total, carry


def reduce_to_two(operands: Sequence[np.ndarray | int]) -> tuple[np.ndarray, np.ndarray]:
    """Wallace-style reduction of arbitrarily many operands to two.

    Operands are grouped in threes per stage, exactly as the configurable
    interconnect arranges them in hardware; leftovers (one or two) pass
    through to the next stage unchanged.
    """
    if len(operands) == 0:
        raise ConfigurationError("cannot reduce an empty operand list")
    current = [np.asarray(op, dtype=np.uint64) for op in operands]
    if len(current) == 1:
        return current[0], np.zeros_like(current[0])
    while len(current) > 2:
        nxt: list[np.ndarray] = []
        for i in range(0, len(current) - 2, 3):
            s, c = csa_step(current[i], current[i + 1], current[i + 2])
            nxt.append(s)
            nxt.append(c)
        remainder = len(current) % 3
        if remainder:
            nxt.extend(current[-remainder:])
        current = nxt
    return current[0], current[1]


def partial_products(
    a: np.ndarray | int, b: np.ndarray | int, word_bits: int
) -> list[np.ndarray]:
    """All N shifted partial products ``(a << i) * bit_i(b)`` as uint64.

    Rows for zero multiplier bits are zero words — the vectorised reduction
    keeps them (see module docstring); the scalar path filters them out.
    """
    if not 1 <= word_bits <= 32:
        raise ConfigurationError(f"word_bits {word_bits} outside [1, 32]")
    av = np.asarray(a, dtype=np.uint64)
    bv = np.asarray(b, dtype=np.uint64)
    rows = []
    for i in range(word_bits):
        bit = (bv >> np.uint64(i)) & _ONE
        rows.append((av << np.uint64(i)) * bit)
    return rows


def reduce_partial_products_vectorised(
    a: np.ndarray, b: np.ndarray, word_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Carry-save survivors of ``a * b`` over whole arrays.

    Groups all ``word_bits`` partial-product rows (zero rows included), so
    every array element follows the same reduction schedule — this is what
    makes the transform expressible as a fixed sequence of vector ops.
    ``x + y == a * b`` exactly.
    """
    return reduce_to_two(partial_products(a, b, word_bits))


def reduce_partial_products(a: int, b: int, word_bits: int) -> tuple[int, int]:
    """Scalar carry-save survivors with hardware-faithful zero-row skipping.

    Only partial products of *set* multiplier bits enter the tree, matching
    the SA-gated copy in the hardware (paper Section 3.3: "we only generate
    a partial product when the multiplier bits are 1").
    """
    if not 1 <= word_bits <= 32:
        raise ConfigurationError(f"word_bits {word_bits} outside [1, 32]")
    if a < 0 or b < 0:
        raise ConfigurationError("operands must be non-negative")
    if a >= 1 << word_bits or b >= 1 << word_bits:
        raise ConfigurationError("operand exceeds word width")
    rows = [a << i for i in range(word_bits) if (b >> i) & 1]
    if not rows:
        return 0, 0
    if len(rows) == 1:
        return rows[0], 0
    x, y = reduce_to_two([np.uint64(r) for r in rows])
    return int(x), int(y)
