"""Functional model of APIM's in-memory adders.

Two entry points mirror the hardware:

- :meth:`APIMAdder.add` — the serial two-operand adder (paper Section 2 /
  Talati-style MAGIC ripple addition, ``12N + 1`` cycles), optionally with
  the last-stage approximation applied to its ``relax_bits`` LSBs.  APIM
  reuses the same MAJ-based shortcut for standalone additions as for the
  multiplier's final stage, which is where most of Table 1's application
  speed-up on addition-heavy kernels comes from.
- :meth:`APIMAdder.add_many` — the fast multi-operand adder (paper
  Section 3.2, Figure 2): Wallace 3:2 reduction of all operands followed by
  one serial addition of the two survivors.

Values are bit-accurate uint64 transforms; costs come from
:mod:`repro.core.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.approximation import approximate_final_add
from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost
from repro.core.timing import (
    cost_hybrid_final_add,
    cost_wallace_reduce,
    reduction_stages,
)
from repro.core.wallace import reduce_to_two
from repro.errors import ApproximationError, ConfigurationError

__all__ = ["APIMAdder", "AddResult"]


@dataclass(frozen=True)
class AddResult:
    """Sums plus the aggregate cost of producing them."""

    sums: np.ndarray
    cost: Cost

    def __iter__(self):
        return iter((self.sums, self.cost))


class APIMAdder:
    """In-memory adder (functional model) for ``config.word_bits`` operands."""

    def __init__(self, config: APIMConfig | None = None) -> None:
        self.config = config or default_config()

    def add(
        self,
        a: np.ndarray | int,
        b: np.ndarray | int,
        relax_bits: int = 0,
        width: int | None = None,
    ) -> AddResult:
        """Add element-wise; result is ``width + 1`` bits (carry included).

        ``relax_bits`` LSBs of each sum are produced by the MAJ-based
        approximation; the rest (including the carry-out) are exact.
        """
        width = width or self.config.word_bits
        if not 1 <= width <= 63:
            raise ConfigurationError(f"add width {width} outside [1, 63]")
        if not 0 <= relax_bits <= width:
            raise ApproximationError(
                f"relax_bits {relax_bits} outside [0, {width}]"
            )
        av = self._check(a, width, "a")
        bv = self._check(b, width, "b")
        # Operands are < 2**width so x + y < 2**(width+1); evaluate the
        # approximation over width+1 bits so the carry-out stays exact.
        sums = approximate_final_add(av, bv, width + 1, relax_bits)
        per_element = cost_hybrid_final_add(width, relax_bits)
        count = int(np.asarray(av + bv).size)
        return AddResult(sums=sums, cost=per_element.scaled(count))

    def add_many(
        self,
        operands: Sequence[np.ndarray | int],
        relax_bits: int = 0,
        width: int | None = None,
    ) -> AddResult:
        """Fast multi-operand addition (tree reduction + one serial add).

        All operands are added element-wise; with P operands the reduction
        costs ``13 * stages(P)`` cycles and the final serial addition runs
        at the grown width ``width + stages(P) - 1``.
        """
        width = width or self.config.word_bits
        if not operands:
            raise ConfigurationError("add_many needs at least one operand")
        arrays = [self._check(op, width, f"operand[{i}]") for i, op in enumerate(operands)]
        count = int(np.broadcast(*arrays[:32]).size) if len(arrays) > 1 else int(
            np.asarray(arrays[0]).size
        )
        if len(arrays) == 1:
            return AddResult(sums=arrays[0].copy(), cost=Cost())
        x, y = reduce_to_two(arrays)
        stages = reduction_stages(len(arrays))
        final_width = min(width + max(stages - 1, 0) + 1, 64)
        sums = approximate_final_add(x, y, final_width, min(relax_bits, final_width))
        per_element = Cost()
        if stages:
            per_element += cost_wallace_reduce(len(arrays), width)
        per_element += cost_hybrid_final_add(
            final_width - 1, min(relax_bits, final_width - 1)
        )
        return AddResult(sums=sums, cost=per_element.scaled(count))

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _check(values: np.ndarray | int, width: int, name: str) -> np.ndarray:
        array = np.asarray(values, dtype=np.uint64)
        limit = np.uint64((1 << width) - 1)
        if np.any(array > limit):
            raise ConfigurationError(f"{name} exceeds the {width}-bit width")
        return array
