"""Functional (bit-accurate, vectorised) model of the APIM multiplier.

Implements the three-stage multiplication of paper Section 3.3 /
Figure 1(b)-(d) over NumPy arrays:

1. **Partial product generation** — the multiplier is read bit-wise through
   the sense amplifier and the (pre-inverted) multiplicand is copy-shifted
   into the processing block once per *set* bit.
2. **Fast addition** — Wallace 3:2 carry-save reduction of the partial
   products down to two survivors (:mod:`repro.core.wallace`).
3. **Final product generation** — serial addition of the survivors, either
   exact or with the last-stage approximation
   (:func:`repro.core.approximation.approximate_final_add`).

Latency and energy are charged per array element from the canonical
formulas in :mod:`repro.core.timing`; because every per-element cost is a
pure function of the multiplier's popcount, array-wide cost evaluation is a
popcount histogram away from the scalar model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approximation import (
    EXACT,
    ApproxSpec,
    approximate_final_add,
    mask_multiplier,
)
from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost
from repro.core.timing import cost_multiply
from repro.core.wallace import (
    reduce_partial_products,
    reduce_partial_products_vectorised,
)
from repro.errors import ConfigurationError

__all__ = ["APIMMultiplier", "MultiplyResult", "popcount"]


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of a uint64 array."""
    return np.bitwise_count(np.asarray(values, dtype=np.uint64))


@dataclass(frozen=True)
class MultiplyResult:
    """Products plus the aggregate cost of producing them."""

    products: np.ndarray
    cost: Cost

    def __iter__(self):
        return iter((self.products, self.cost))


class APIMMultiplier:
    """Unsigned N x N in-memory multiplier (functional model).

    Parameters
    ----------
    config:
        Architecture configuration; ``config.word_bits`` fixes the operand
        width N (the paper evaluates N = 32, product width 64).
    """

    def __init__(self, config: APIMConfig | None = None) -> None:
        self.config = config or default_config()
        n = self.config.word_bits
        if n > 32:
            raise ConfigurationError(
                "functional multiplier supports word_bits <= 32 "
                "(products must fit in uint64)"
            )
        self._operand_mask = np.uint64((1 << n) - 1)
        # Per-popcount cost tables, built lazily per relax setting.
        self._cost_tables: dict[tuple[int, int], list[Cost]] = {}

    # -- public API -------------------------------------------------------

    def multiply(
        self, a: np.ndarray | int, b: np.ndarray | int, spec: ApproxSpec = EXACT
    ) -> MultiplyResult:
        """Multiply arrays of unsigned operands under an approximation spec.

        Returns products as ``uint64`` and the summed :class:`Cost` over all
        elements.  Operands must fit in ``word_bits``.
        """
        n = self.config.word_bits
        spec.validate_for(n)
        av = self._check_operands(a, "multiplicand")
        bv = self._check_operands(b, "multiplier")
        b_eff = mask_multiplier(bv, spec.masked_bits, n)
        x, y = reduce_partial_products_vectorised(av, b_eff, n)
        products = approximate_final_add(x, y, 2 * n, spec.relax_bits)
        if spec.relax_bits:
            # Multipliers with at most one set bit never enter the final
            # stage (the lone partial product *is* the product), so no
            # approximation is applied to them in hardware.
            trivial = popcount(b_eff) <= 1
            if np.any(trivial):
                products = np.where(trivial, av * b_eff, products)
        cost = self._array_cost(b_eff, spec)
        return MultiplyResult(products=products, cost=cost)

    def multiply_scalar(
        self, a: int, b: int, spec: ApproxSpec = EXACT
    ) -> tuple[int, Cost]:
        """Hardware-faithful scalar multiply (zero partial products skipped).

        This is the reference the structural crossbar simulator is validated
        against; it differs from :meth:`multiply` only in which rows enter
        the reduction tree (never in the exact product value).
        """
        n = self.config.word_bits
        spec.validate_for(n)
        if a < 0 or b < 0 or a >= 1 << n or b >= 1 << n:
            raise ConfigurationError(
                f"operands ({a}, {b}) must be unsigned {n}-bit values"
            )
        b_eff = int(mask_multiplier(b, spec.masked_bits, n))
        set_bits = bin(b_eff).count("1")
        if set_bits <= 1:
            # No final stage: the lone (or absent) partial product is exact.
            return a * b_eff, cost_multiply(n, set_bits, spec.relax_bits)
        x, y = reduce_partial_products(a, b_eff, n)
        product = int(
            approximate_final_add(
                np.uint64(x), np.uint64(y), 2 * n, spec.relax_bits
            )
        )
        return product, cost_multiply(n, set_bits, spec.relax_bits)

    def exact_reference(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """The golden exact product (no cost), for accuracy evaluation."""
        av = self._check_operands(a, "multiplicand")
        bv = self._check_operands(b, "multiplier")
        return av * bv

    # -- internals ---------------------------------------------------------

    def _check_operands(self, values: np.ndarray | int, name: str) -> np.ndarray:
        array = np.asarray(values, dtype=np.uint64)
        if np.any(array > self._operand_mask):
            raise ConfigurationError(
                f"{name} exceeds the {self.config.word_bits}-bit word width"
            )
        return array

    def _cost_table(self, relax_bits: int) -> list[Cost]:
        """Cost of one multiply for every possible multiplier popcount."""
        n = self.config.word_bits
        key = (n, relax_bits)
        table = self._cost_tables.get(key)
        if table is None:
            table = [cost_multiply(n, c, relax_bits) for c in range(n + 1)]
            self._cost_tables[key] = table
        return table

    def _array_cost(self, multipliers: np.ndarray, spec: ApproxSpec) -> Cost:
        """Aggregate cost over an array via a popcount histogram."""
        counts = popcount(multipliers)
        histogram = np.bincount(
            counts.ravel().astype(np.int64), minlength=self.config.word_bits + 1
        )
        table = self._cost_table(spec.relax_bits)
        total = Cost()
        for set_bits, occurrences in enumerate(histogram):
            if occurrences:
                total += table[set_bits].scaled(int(occurrences))
        return total
