"""APIM core: functional models, cost accounting and configuration (S9-S11).

Public surface:

- :class:`~repro.core.config.APIMConfig` — all architecture constants.
- :class:`~repro.core.approximation.ApproxSpec` — the runtime accuracy knob.
- :class:`~repro.core.engine.APIMEngine` — signed array arithmetic with
  cost accounting (what workloads call).
- :class:`~repro.core.multiplier.APIMMultiplier` /
  :class:`~repro.core.adder.APIMAdder` — the unsigned bit-accurate models.
- :mod:`~repro.core.timing` — every cycle-count formula from the paper.
"""

from repro.core.adder import AddResult, APIMAdder
from repro.core.approximation import EXACT, ApproxMode, ApproxSpec
from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost, CostLedger
from repro.core.engine import APIMEngine
from repro.core.multiplier import APIMMultiplier, MultiplyResult

__all__ = [
    "APIMConfig",
    "default_config",
    "ApproxSpec",
    "ApproxMode",
    "EXACT",
    "Cost",
    "CostLedger",
    "APIMEngine",
    "APIMMultiplier",
    "MultiplyResult",
    "APIMAdder",
    "AddResult",
]
