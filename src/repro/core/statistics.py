"""Analytic error statistics of the last-stage approximation.

The MAJ shortcut (``S_i = NOT(C_{i+1})``) errs on exactly two of the eight
input patterns of a 1-bit addition; this module derives the closed-form
consequences for uniformly random addends and checks them against the bit
model — the theory that grounds the empirical QoL curves:

- per-bit error probability: 1/4 (the paper's "25 % error ... for a
  random input data");
- each erroneous bit at position ``i`` flips the output by ``+-2^i``, with
  sign determined by the pattern ((0,0,0) adds, (1,1,1) subtracts), both
  patterns equally likely -> zero-mean error;
- expected absolute error of relaxing ``m`` LSBs is therefore bounded by
  ``sum_i 2^i / 4 = (2^m - 1) / 4`` and concentrates near that scale.
"""

from __future__ import annotations

import numpy as np

from repro.core.approximation import approximate_final_add
from repro.errors import ApproximationError

__all__ = [
    "per_bit_error_probability",
    "expected_abs_error_bound",
    "measure_error_moments",
]


def per_bit_error_probability() -> float:
    """Probability that one relaxed sum bit is wrong for uniform random
    inputs: 2 failing patterns of 8 (paper Section 3.4)."""
    return 0.25


def expected_abs_error_bound(relax_bits: int) -> float:
    """Upper bound on E|error| of relaxing ``m`` LSBs (uniform inputs).

    Linearity of expectation over positions: each contributes at most
    ``2^i / 4``.  (A bound rather than an equality because bit errors are
    correlated through the shared carry chain.)
    """
    if relax_bits < 0:
        raise ApproximationError(f"relax_bits must be >= 0: {relax_bits}")
    if relax_bits == 0:
        return 0.0
    return (2.0**relax_bits - 1.0) / 4.0


def measure_error_moments(
    relax_bits: int,
    width: int = 40,
    samples: int = 50000,
    seed: int = 2017,
) -> dict[str, float]:
    """Monte-Carlo moments of the approximation error.

    Returns ``mean``, ``mean_abs`` and ``per_bit_rate`` (the measured
    fraction of wrong bits among the relaxed positions), for uniform
    random addends of ``width - 1`` bits.
    """
    if not 0 <= relax_bits <= width <= 63:
        raise ApproximationError(
            f"need 0 <= relax_bits <= width <= 63, got "
            f"({relax_bits}, {width})"
        )
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1 << (width - 1), samples, dtype=np.uint64)
    y = rng.integers(0, 1 << (width - 1), samples, dtype=np.uint64)
    approx = approximate_final_add(x, y, width, relax_bits)
    exact = x + y
    signed_error = approx.astype(np.int64) - exact.astype(np.int64)
    if relax_bits:
        flipped = (approx ^ exact) & np.uint64((1 << relax_bits) - 1)
        wrong_bits = np.bitwise_count(flipped).astype(np.float64)
        per_bit = float(wrong_bits.mean() / relax_bits)
    else:
        per_bit = 0.0
    return {
        "mean": float(signed_error.mean()),
        "mean_abs": float(np.abs(signed_error).mean()),
        "per_bit_rate": per_bit,
    }
