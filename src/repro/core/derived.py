"""Derived arithmetic built from APIM's add/multiply primitives.

The paper (Section 4.1): "The other common operations such as square root
has been approximated by these two functions [addition and multiplication]
in OpenCL code."  This module provides those compositions as first-class
library operations — Newton-Raphson reciprocal, division and square root
over the engine's fixed-point datapath — so workloads that need them (and
users porting their own kernels) get the same cost accounting and
approximation behaviour as the primitive operations.

All routines operate on unsigned fixed-point values with ``frac_bits``
fractional bits, iterate a fixed (data-independent) number of Newton
steps — hardware cannot data-depend its schedule — and route every
multiply/add through the :class:`~repro.core.engine.APIMEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import APIMEngine
from repro.errors import ConfigurationError

__all__ = [
    "fixed_reciprocal",
    "fixed_divide",
    "fixed_sqrt",
    "magnitude_approx",
]

#: Newton-Raphson iterations; four steps converge the power-of-two seed
#: (initial error <= 0.5) to ~2e-5 relative error, ample for Q16 work.
DEFAULT_ITERATIONS = 4


def _check_frac_bits(frac_bits: int) -> None:
    if not 1 <= frac_bits <= 24:
        raise ConfigurationError(f"frac_bits {frac_bits} outside [1, 24]")


def _reciprocal_seed(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """Initial 1/x estimate from the operand's magnitude (a LUT/priority
    encoder in hardware — free relative to the Newton multiplies).

    For x in [2^(k-1), 2^k): seed = 2^(2*frac_bits) / 2^k, i.e. a power of
    two within 2x of the true reciprocal — enough for quadratic
    convergence.
    """
    one = np.int64(1)
    bit_lengths = np.zeros_like(values)
    probe = values.copy()
    while np.any(probe > 0):
        mask = probe > 0
        bit_lengths = np.where(mask, bit_lengths + one, bit_lengths)
        probe = probe >> one
    return np.where(
        values > 0,
        one << np.minimum(
            np.maximum(2 * frac_bits - bit_lengths, 0), np.int64(62)
        ),
        one << np.int64(62 - frac_bits),  # x = 0: saturate
    ).astype(np.int64)


def fixed_reciprocal(
    engine: APIMEngine,
    values: np.ndarray | int,
    frac_bits: int = 16,
    iterations: int = DEFAULT_ITERATIONS,
) -> np.ndarray:
    """Fixed-point ``1 / x`` via Newton-Raphson on the engine.

    Iterates ``r <- r * (2 - x * r)``, every multiply through APIM.
    Operands and results are Q(32 - frac_bits).frac_bits values; ``x`` must
    be positive (the caller handles signs — APIM's datapath is
    sign-magnitude anyway).
    """
    _check_frac_bits(frac_bits)
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    x = np.atleast_1d(np.asarray(values, dtype=np.int64))
    if np.any(x < 0):
        raise ConfigurationError("fixed_reciprocal needs non-negative input")
    two = np.int64(2) << np.int64(frac_bits)
    r = _reciprocal_seed(x, frac_bits)
    for _ in range(iterations):
        # x*r is Q(2*frac_bits); rescale each product back to Q(frac_bits).
        xr = engine.shift_right(engine.mul(x, r), frac_bits)
        # Saturate the correction to [0, 2.0): the controller clamps the
        # Newton update so that aggressive approximation settings (which
        # can corrupt intermediates wildly) degrade gracefully instead of
        # driving operands out of the datapath's range.
        correction = np.clip(engine.sub(two, xr, width=40), 0, two - 1)
        r = engine.shift_right(engine.mul(r, correction), frac_bits)
        r = np.clip(r, 0, np.int64(1) << np.int64(30))
    return r if np.ndim(values) else r


def fixed_divide(
    engine: APIMEngine,
    numerators: np.ndarray | int,
    denominators: np.ndarray | int,
    frac_bits: int = 16,
    iterations: int = DEFAULT_ITERATIONS,
) -> np.ndarray:
    """Fixed-point ``a / b`` as ``a * reciprocal(b)`` on the engine."""
    _check_frac_bits(frac_bits)
    a = np.atleast_1d(np.asarray(numerators, dtype=np.int64))
    recip = fixed_reciprocal(engine, denominators, frac_bits, iterations)
    return engine.shift_right(engine.mul(a, recip), frac_bits)


def fixed_sqrt(
    engine: APIMEngine,
    values: np.ndarray | int,
    frac_bits: int = 16,
    iterations: int = DEFAULT_ITERATIONS + 1,
) -> np.ndarray:
    """Fixed-point ``sqrt(x)`` via damped Newton (Babylonian) iteration.

    ``s <- (s + x / s) / 2`` with the division expanded through
    :func:`fixed_reciprocal`; the seed is ``2^ceil(bitlen/2)`` scaled to
    the Q format (a shift in hardware).
    """
    _check_frac_bits(frac_bits)
    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    x = np.atleast_1d(np.asarray(values, dtype=np.int64))
    if np.any(x < 0):
        raise ConfigurationError("fixed_sqrt needs non-negative input")
    # Seed: power of two near sqrt(x) in the Q format.
    one = np.int64(1)
    bit_lengths = np.zeros_like(x)
    probe = x.copy()
    while np.any(probe > 0):
        mask = probe > 0
        bit_lengths = np.where(mask, bit_lengths + one, bit_lengths)
        probe = probe >> one
    # sqrt of Q(frac) value v = sqrt(v_real) in Q(frac):
    # exponent (bitlen + frac_bits) / 2.
    seed_exp = np.maximum((bit_lengths + frac_bits) // 2, one)
    s = (one << np.minimum(seed_exp, np.int64(40))).astype(np.int64)
    for _ in range(iterations):
        quotient = fixed_divide(engine, x, np.maximum(s, 1), frac_bits, 3)
        s = engine.shift_right(engine.add(s, quotient, width=48), 1)
    return np.where(x == 0, np.int64(0), s)


def magnitude_approx(
    engine: APIMEngine,
    x: np.ndarray | int,
    y: np.ndarray | int,
    width: int = 48,
) -> np.ndarray:
    """The stencil kernels' sqrt-free magnitude: ``|x| + |y|``.

    This is the exact composition the paper's OpenCL sources use in place
    of ``sqrt(x^2 + y^2)``; |.| is free on the sign-magnitude datapath.
    """
    return engine.add(
        np.abs(np.asarray(x, dtype=np.int64)),
        np.abs(np.asarray(y, dtype=np.int64)),
        width=width,
    )
