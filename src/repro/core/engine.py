"""APIM execution engine: the public arithmetic front end for workloads.

Workloads (Sobel, FFT, ...) express their inner loops as calls on an
:class:`APIMEngine`.  The engine

- performs *signed* fixed-point arithmetic on NumPy ``int64`` arrays by
  lowering to the unsigned bit-accurate models (sign-magnitude datapath for
  multiplication, two's-complement for addition — matching how the OpenCL
  kernels would be compiled onto APIM's unsigned crossbar primitives);
- applies the engine's current :class:`~repro.core.approximation.ApproxSpec`
  to every operation (this is the paper's runtime-tunable knob: the
  controller "sets the pre-calculated value of m" per application);
- charges every operation to a :class:`~repro.core.cost.CostLedger` and
  counts operations, so the runtime can roll up energy, latency and EDP.

The engine is deliberately small: multiply, add, multi-operand add, and the
free-in-hardware data-movement helpers (shift/scale via the configurable
interconnect).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.adder import APIMAdder
from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost, CostLedger
from repro.core.multiplier import APIMMultiplier
from repro.core.timing import cost_copy
from repro.errors import ConfigurationError

__all__ = ["APIMEngine"]


class APIMEngine:
    """Array-level APIM arithmetic with cost accounting.

    Parameters
    ----------
    config:
        Architecture configuration (defaults to the paper's).
    spec:
        Approximation applied to every operation unless overridden per call.
    """

    def __init__(
        self,
        config: APIMConfig | None = None,
        spec: ApproxSpec = EXACT,
    ) -> None:
        self.config = config or default_config()
        self.spec = spec
        self.ledger = CostLedger()
        self.multiplier = APIMMultiplier(self.config)
        self.adder = APIMAdder(self.config)
        self.mul_count = 0
        self.add_count = 0
        self._sign_limit = np.int64(1 << (self.config.word_bits - 1))

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Clear accumulated cost and operation counters."""
        self.ledger.reset()
        self.mul_count = 0
        self.add_count = 0

    @property
    def total_cost(self) -> Cost:
        """Everything charged since the last :meth:`reset`."""
        return self.ledger.total

    # -- arithmetic ----------------------------------------------------------

    def mul(
        self,
        a: np.ndarray | int,
        b: np.ndarray | int,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        """Signed element-wise multiplication; returns full int64 products.

        Lowered to the unsigned multiplier on magnitudes with the result
        sign restored (sign-magnitude datapath); both approximation
        mechanisms therefore act on magnitude bits, as in the hardware.
        """
        spec = self.spec if spec is None else spec
        av, a_sign = self._to_magnitude(a, "a")
        bv, b_sign = self._to_magnitude(b, "b")
        result = self.multiplier.multiply(av, bv, spec)
        self.ledger.charge("multiply", result.cost)
        self.mul_count += int(np.asarray(result.products).size)
        signs = a_sign * b_sign
        return (result.products.astype(np.int64)) * signs

    def add(
        self,
        a: np.ndarray | int,
        b: np.ndarray | int,
        width: int | None = None,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        """Signed element-wise addition at ``width`` bits (two's complement).

        ``width`` defaults to the word width; accumulations of products may
        pass a wider width (up to 62).  The last-stage approximation relaxes
        ``spec.relax_bits`` LSBs, exactly as in the multiplier's final stage.
        """
        spec = self.spec if spec is None else spec
        width = width or self.config.word_bits
        if not 1 <= width <= 62:
            raise ConfigurationError(f"add width {width} outside [1, 62]")
        relax = min(spec.relax_bits, width)
        au = self._to_twos_complement(a, width, "a")
        bu = self._to_twos_complement(b, width, "b")
        result = self.adder.add(au, bu, relax_bits=relax, width=width)
        self.ledger.charge("add", result.cost)
        self.add_count += int(np.asarray(result.sums).size)
        return self._from_twos_complement(result.sums, width)

    def sub(
        self,
        a: np.ndarray | int,
        b: np.ndarray | int,
        width: int | None = None,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        """Signed subtraction ``a - b`` (addition of the two's complement)."""
        b_arr = np.asarray(b, dtype=np.int64)
        return self.add(a, -b_arr, width=width, spec=spec)

    def sum_many(
        self,
        operands: Sequence[np.ndarray | int],
        width: int | None = None,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        """Signed multi-operand addition via the fast (tree) adder."""
        spec = self.spec if spec is None else spec
        width = width or self.config.word_bits
        if not 1 <= width <= 58:
            raise ConfigurationError(f"sum_many width {width} outside [1, 58]")
        if not operands:
            raise ConfigurationError("sum_many needs at least one operand")
        relax = min(spec.relax_bits, width)
        lowered = [self._to_twos_complement(op, width, f"operand[{i}]")
                   for i, op in enumerate(operands)]
        result = self.adder.add_many(lowered, relax_bits=relax, width=width)
        self.ledger.charge("add", result.cost)
        self.add_count += int(np.asarray(result.sums).size) * (len(operands) - 1)
        return self._from_twos_complement(result.sums, width)

    def shift_right(self, values: np.ndarray | int, shift: int) -> np.ndarray:
        """Arithmetic right shift (fixed-point rescale).

        Free in latency on APIM — the configurable interconnect shifts while
        copying (paper Section 3.1) — but the copy's NOR/interconnect energy
        is charged.
        """
        if shift < 0:
            raise ConfigurationError(f"shift must be >= 0, got {shift}")
        array = np.asarray(values, dtype=np.int64)
        if shift:
            self._charge_shift(array.size)
        return array >> np.int64(shift) if shift else array

    def shift_left(self, values: np.ndarray | int, shift: int) -> np.ndarray:
        """Left shift (fixed-point up-scale); free latency, copy energy.

        Raises when the shifted value would leave the 62-bit accumulator
        range the engine's adders support.
        """
        if shift < 0:
            raise ConfigurationError(f"shift must be >= 0, got {shift}")
        array = np.asarray(values, dtype=np.int64)
        if shift:
            limit = np.int64(1) << np.int64(61 - shift)
            if np.any(np.abs(array) >= limit):
                raise ConfigurationError(
                    f"shift_left by {shift} overflows the accumulator range"
                )
            self._charge_shift(array.size)
        return array << np.int64(shift) if shift else array

    def _charge_shift(self, count: int) -> None:
        """Energy of a shift-while-copy through the interconnect.

        No cycle overhead (paper Section 3.1: shifting is clubbed with the
        copy that surrounds it); the two-NOT copy energy and interconnect
        traffic are charged.
        """
        copy = cost_copy(self.config.word_bits).scaled(count)
        self.ledger.charge(
            "interconnect",
            Cost(nor_ops=copy.nor_ops, interconnect_bits=copy.interconnect_bits),
        )

    # -- lowering helpers ------------------------------------------------------

    def _to_magnitude(
        self, values: np.ndarray | int, name: str
    ) -> tuple[np.ndarray, np.ndarray]:
        array = np.asarray(values, dtype=np.int64)
        if np.any(np.abs(array) >= self._sign_limit):
            raise ConfigurationError(
                f"{name} magnitude exceeds the signed "
                f"{self.config.word_bits}-bit range"
            )
        signs = np.where(array < 0, np.int64(-1), np.int64(1))
        return np.abs(array).astype(np.uint64), signs

    @staticmethod
    def _to_twos_complement(
        values: np.ndarray | int, width: int, name: str
    ) -> np.ndarray:
        array = np.asarray(values, dtype=np.int64)
        limit = np.int64(1) << np.int64(width - 1)
        if np.any(array >= limit) or np.any(array < -limit):
            raise ConfigurationError(
                f"{name} exceeds the signed {width}-bit range"
            )
        modulus = np.uint64(1) << np.uint64(width)
        return array.astype(np.uint64) & (modulus - np.uint64(1))

    @staticmethod
    def _from_twos_complement(values: np.ndarray, width: int) -> np.ndarray:
        # The adder returns width+1 bits (carry-out); interpret the low
        # `width` bits as two's complement.
        modulus = np.uint64(1) << np.uint64(width)
        low = np.asarray(values, dtype=np.uint64) & (modulus - np.uint64(1))
        signed = low.astype(np.int64)
        half = np.int64(1) << np.int64(width - 1)
        return np.where(signed >= half, signed - np.int64(2) * half, signed)
