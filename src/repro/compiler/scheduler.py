"""Lane scheduling of kernel DAGs onto the APIM machine.

One crossbar block pair executes one operation chain at a time; the
machine's parallelism is its lane count
(:meth:`~repro.core.config.APIMConfig.parallel_lanes`).  Given a kernel
DAG, the :class:`ListScheduler` assigns every arithmetic node to a lane
and a start cycle, respecting data dependencies, and reports

- **makespan** — cycles until the last node finishes;
- **critical path** — the dependence-bound lower limit;
- **utilisation** — busy lane-cycles over makespan * lanes.

Costs come from the canonical formulas (:func:`op_cycles`); multiplies are
priced at the random-operand average (popcount = N/2), matching how the
runtime's aggregate accounting behaves in expectation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.compiler.ir import Kernel, Node, OpKind
from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig, default_config
from repro.core.timing import cost_hybrid_final_add, cost_multiply, cost_wallace_reduce
from repro.errors import ConfigurationError

__all__ = ["op_cycles", "ListScheduler", "Schedule", "ScheduledNode"]


def op_cycles(
    node: Node, config: APIMConfig | None = None, spec: ApproxSpec = EXACT
) -> int:
    """Expected APIM cycles of one IR node under an approximation spec."""
    config = config or default_config()
    n = config.word_bits
    if node.kind is OpKind.MUL:
        relax = min(spec.relax_bits, 2 * n)
        return int(cost_multiply(n, n // 2, relax).cycles)
    if node.kind in (OpKind.ADD, OpKind.SUB):
        width = node.attrs.get("width", n)
        relax = min(spec.relax_bits, width)
        return int(cost_hybrid_final_add(width, relax).cycles)
    if node.kind is OpKind.SUM:
        width = node.attrs.get("width", n)
        operands = len(node.operands)
        relax = min(spec.relax_bits, width)
        reduce_cycles = cost_wallace_reduce(operands, width).cycles
        return int(reduce_cycles + cost_hybrid_final_add(width, relax).cycles)
    # INPUT/CONST/SHR/SHL/ABS are free in latency.
    return 0


@dataclass(frozen=True)
class ScheduledNode:
    """Placement of one node: lane and cycle interval [start, end)."""

    node_id: int
    lane: int
    start: int
    end: int


@dataclass(frozen=True)
class Schedule:
    """A complete lane assignment for a kernel."""

    kernel: str
    lanes: int
    placements: tuple[ScheduledNode, ...]
    makespan: int
    critical_path: int

    def placement(self, node_id: int) -> ScheduledNode:
        """Placement of one node (free nodes have zero-length intervals)."""
        for item in self.placements:
            if item.node_id == node_id:
                return item
        raise ConfigurationError(f"node {node_id} not in schedule")

    @property
    def utilization(self) -> float:
        """Busy lane-cycles over available lane-cycles."""
        busy = sum(p.end - p.start for p in self.placements)
        available = self.makespan * self.lanes
        return busy / available if available else 1.0

    @property
    def speedup_vs_serial(self) -> float:
        """Makespan improvement over a single-lane execution."""
        busy = sum(p.end - p.start for p in self.placements)
        return busy / self.makespan if self.makespan else 1.0


class ListScheduler:
    """Critical-path list scheduling onto a fixed lane count."""

    def __init__(
        self,
        lanes: int,
        config: APIMConfig | None = None,
        spec: ApproxSpec = EXACT,
    ) -> None:
        if lanes <= 0:
            raise ConfigurationError(f"lanes must be positive: {lanes}")
        self.lanes = lanes
        self.config = config or default_config()
        self.spec = spec

    # -- analysis ----------------------------------------------------------

    def _costs(self, kernel: Kernel) -> list[int]:
        return [op_cycles(n, self.config, self.spec) for n in kernel.nodes]

    def critical_path(self, kernel: Kernel) -> int:
        """Longest dependence chain in cycles (schedule lower bound)."""
        costs = self._costs(kernel)
        longest = [0] * len(kernel.nodes)
        for node in kernel.nodes:  # topological order
            base = max(
                (longest[i] for i in node.operands), default=0
            )
            longest[node.id] = base + costs[node.id]
        return max(longest, default=0)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, kernel: Kernel) -> Schedule:
        """Assign every node a lane and start cycle.

        Classic list scheduling: nodes become ready when their operands
        complete; the ready node with the longest remaining critical path
        wins the next free lane.  Free (zero-cost) nodes complete at their
        operands' finish time without occupying a lane slot.
        """
        costs = self._costs(kernel)
        consumers = kernel.consumers()

        # Downstream critical path (priority).
        downstream = [0] * len(kernel.nodes)
        for node in reversed(kernel.nodes):
            tail = max(
                (downstream[c] for c in consumers[node.id]), default=0
            )
            downstream[node.id] = costs[node.id] + tail

        pending = {
            n.id: len(n.operands) for n in kernel.nodes
        }
        finish = [0] * len(kernel.nodes)
        placements: list[ScheduledNode] = []
        # Lane availability as a min-heap of (free_at, lane).
        lanes = [(0, lane) for lane in range(self.lanes)]
        heapq.heapify(lanes)
        # Ready heap: (-priority, node_id, earliest_start).
        ready: list[tuple[int, int, int]] = []
        for node in kernel.nodes:
            if pending[node.id] == 0:
                heapq.heappush(ready, (-downstream[node.id], node.id, 0))

        scheduled = 0
        while ready:
            _, node_id, earliest = heapq.heappop(ready)
            cost = costs[node_id]
            if cost == 0:
                start = end = earliest
                lane = -1  # free nodes occupy no lane
            else:
                free_at, lane = heapq.heappop(lanes)
                start = max(free_at, earliest)
                end = start + cost
                heapq.heappush(lanes, (end, lane))
            finish[node_id] = end
            placements.append(
                ScheduledNode(node_id=node_id, lane=lane, start=start, end=end)
            )
            scheduled += 1
            for consumer in consumers[node_id]:
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    earliest_start = max(
                        finish[i] for i in kernel.nodes[consumer].operands
                    )
                    heapq.heappush(
                        ready,
                        (-downstream[consumer], consumer, earliest_start),
                    )
        if scheduled != len(kernel.nodes):  # pragma: no cover - defensive
            raise ConfigurationError("scheduler failed to place every node")
        return Schedule(
            kernel=kernel.name,
            lanes=self.lanes,
            placements=tuple(placements),
            makespan=max(finish, default=0),
            critical_path=self.critical_path(kernel),
        )
