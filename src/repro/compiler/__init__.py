"""Kernel compiler: express computations once, run them on APIM (S21).

The paper maps OpenCL kernels onto APIM by hand; this subpackage provides
the programmable equivalent — a small dataflow IR plus the tooling to run
it on the engine and to schedule it onto the machine's SIMD lanes:

- :mod:`repro.compiler.ir` — the kernel IR: a DAG of fixed-point
  operations built through :class:`KernelBuilder`.
- :mod:`repro.compiler.evaluate` — execute a kernel on an
  :class:`~repro.core.engine.APIMEngine` (any approximation setting, full
  cost accounting) or against the exact NumPy reference.
- :mod:`repro.compiler.scheduler` — a list scheduler that maps kernel
  operations onto a bounded number of lanes and reports makespan,
  critical path and utilisation, using the canonical cycle formulas.
"""

from repro.compiler.evaluate import evaluate, exact_reference
from repro.compiler.frontend import fir_kernel, mac_chain_kernel, stencil_kernel
from repro.compiler.ir import Kernel, KernelBuilder, Node, OpKind
from repro.compiler.optimizer import OptimizationReport, optimize
from repro.compiler.scheduler import ListScheduler, Schedule, op_cycles

__all__ = [
    "OpKind",
    "Node",
    "Kernel",
    "KernelBuilder",
    "evaluate",
    "exact_reference",
    "ListScheduler",
    "Schedule",
    "op_cycles",
    "optimize",
    "OptimizationReport",
    "stencil_kernel",
    "fir_kernel",
    "mac_chain_kernel",
]
