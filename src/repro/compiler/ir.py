"""The kernel IR: a dataflow DAG of fixed-point operations.

A :class:`Kernel` is an immutable DAG built through a
:class:`KernelBuilder`.  Nodes are fixed-point operations over signed
values (the engine's domain); edges are data dependencies.  The builder
enforces well-formedness at construction time — operands must already
exist, so the graph is acyclic by construction and the node list is a
valid topological order.

Example::

    b = KernelBuilder("saxpy")
    x = b.input("x")
    y = b.input("y")
    a = b.const(3 << 14)               # Q14 coefficient
    b.output("out", b.shr(b.add(b.mul(a, x), b.shl(y, 14)), 14))
    kernel = b.build()
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WorkloadError

__all__ = ["OpKind", "Node", "Kernel", "KernelBuilder"]


class OpKind(enum.Enum):
    """Operation kinds of the kernel IR."""

    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SUM = "sum"  # n-ary fast-adder reduction
    SHR = "shr"
    SHL = "shl"
    ABS = "abs"

    @property
    def is_arithmetic(self) -> bool:
        """True for operations that consume APIM cycles."""
        return self in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.SUM)


#: Required operand counts (None = variadic with a minimum of 1).
_ARITY: dict[OpKind, int | None] = {
    OpKind.INPUT: 0,
    OpKind.CONST: 0,
    OpKind.ADD: 2,
    OpKind.SUB: 2,
    OpKind.MUL: 2,
    OpKind.SUM: None,
    OpKind.SHR: 1,
    OpKind.SHL: 1,
    OpKind.ABS: 1,
}


@dataclass(frozen=True)
class Node:
    """One IR node.

    Attributes
    ----------
    id:
        Dense index into the kernel's node list (also its topological
        position).
    kind:
        The operation.
    operands:
        Ids of this node's inputs.
    attrs:
        Kind-specific attributes: ``name`` (INPUT), ``value`` (CONST),
        ``shift`` (SHR/SHL), ``width`` (ADD/SUB/SUM accumulator width).
    """

    id: int
    kind: OpKind
    operands: tuple[int, ...] = ()
    attrs: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class Kernel:
    """An immutable, validated kernel DAG."""

    name: str
    nodes: tuple[Node, ...]
    inputs: dict[str, int]      # name -> node id
    outputs: dict[str, int]     # name -> node id

    def node(self, node_id: int) -> Node:
        """Fetch one node by id."""
        if not 0 <= node_id < len(self.nodes):
            raise WorkloadError(f"node id {node_id} outside the kernel")
        return self.nodes[node_id]

    def consumers(self) -> dict[int, tuple[int, ...]]:
        """Reverse edges: node id -> ids of nodes that read it."""
        out: dict[int, list[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for operand in node.operands:
                out[operand].append(node.id)
        return {k: tuple(v) for k, v in out.items()}

    def op_counts(self) -> dict[OpKind, int]:
        """Histogram of node kinds."""
        counts: dict[OpKind, int] = {}
        for node in self.nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def arithmetic_ops(self) -> int:
        """Number of cycle-consuming operations."""
        return sum(1 for n in self.nodes if n.kind.is_arithmetic)

    def __len__(self) -> int:
        return len(self.nodes)


class KernelBuilder:
    """Constructs a :class:`Kernel` one operation at a time.

    Every factory method returns the new node's id, which later operations
    consume — the ids double as SSA value names.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkloadError("kernel needs a non-empty name")
        self.name = name
        self._nodes: list[Node] = []
        self._inputs: dict[str, int] = {}
        self._outputs: dict[str, int] = {}

    # -- node factories ------------------------------------------------------

    def _emit(self, kind: OpKind, operands: tuple[int, ...], **attrs) -> int:
        arity = _ARITY[kind]
        if arity is None:
            if not operands:
                raise WorkloadError(f"{kind.value} needs at least one operand")
        elif len(operands) != arity:
            raise WorkloadError(
                f"{kind.value} expects {arity} operands, got {len(operands)}"
            )
        for operand in operands:
            if not 0 <= operand < len(self._nodes):
                raise WorkloadError(
                    f"operand {operand} does not exist yet "
                    f"(kernel has {len(self._nodes)} nodes)"
                )
        node = Node(
            id=len(self._nodes), kind=kind, operands=operands, attrs=attrs
        )
        self._nodes.append(node)
        return node.id

    def input(self, name: str) -> int:
        """Declare a named input array."""
        if name in self._inputs:
            raise WorkloadError(f"duplicate input {name!r}")
        node_id = self._emit(OpKind.INPUT, (), name=name)
        self._inputs[name] = node_id
        return node_id

    def const(self, value: int) -> int:
        """A compile-time scalar constant."""
        return self._emit(OpKind.CONST, (), value=int(value))

    def add(self, a: int, b: int, width: int = 48) -> int:
        """Signed addition at ``width`` bits."""
        return self._emit(OpKind.ADD, (a, b), width=width)

    def sub(self, a: int, b: int, width: int = 48) -> int:
        """Signed subtraction at ``width`` bits."""
        return self._emit(OpKind.SUB, (a, b), width=width)

    def mul(self, a: int, b: int) -> int:
        """Signed multiplication (full product)."""
        return self._emit(OpKind.MUL, (a, b))

    def sum(self, operands: list[int], width: int = 52) -> int:
        """N-ary fast-adder reduction."""
        return self._emit(OpKind.SUM, tuple(operands), width=width)

    def shr(self, a: int, shift: int) -> int:
        """Arithmetic right shift (fixed-point rescale; free latency)."""
        if shift < 0:
            raise WorkloadError(f"shift must be >= 0: {shift}")
        return self._emit(OpKind.SHR, (a,), shift=shift)

    def shl(self, a: int, shift: int) -> int:
        """Left shift (free latency)."""
        if shift < 0:
            raise WorkloadError(f"shift must be >= 0: {shift}")
        return self._emit(OpKind.SHL, (a,), shift=shift)

    def abs(self, a: int) -> int:
        """Magnitude (free on the sign-magnitude datapath)."""
        return self._emit(OpKind.ABS, (a,))

    def output(self, name: str, node_id: int) -> None:
        """Mark a node as a named kernel output."""
        if name in self._outputs:
            raise WorkloadError(f"duplicate output {name!r}")
        if not 0 <= node_id < len(self._nodes):
            raise WorkloadError(f"output refers to unknown node {node_id}")
        self._outputs[name] = node_id

    # -- finalisation -------------------------------------------------------

    def build(self) -> Kernel:
        """Validate and freeze the kernel."""
        if not self._outputs:
            raise WorkloadError(f"kernel {self.name!r} has no outputs")
        live = self._reachable()
        dead = [
            n.id
            for n in self._nodes
            if n.id not in live and n.kind is not OpKind.INPUT
        ]
        if dead:
            raise WorkloadError(
                f"kernel {self.name!r} has dead nodes {dead}; "
                "every non-input node must feed an output"
            )
        return Kernel(
            name=self.name,
            nodes=tuple(self._nodes),
            inputs=dict(self._inputs),
            outputs=dict(self._outputs),
        )

    def _reachable(self) -> set[int]:
        seen: set[int] = set()
        stack = list(self._outputs.values())
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(self._nodes[node_id].operands)
        return seen
