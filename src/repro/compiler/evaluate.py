"""Kernel execution: on the APIM engine, and against the exact reference.

:func:`evaluate` interprets a :class:`~repro.compiler.ir.Kernel` over
NumPy arrays with every arithmetic node routed through an
:class:`~repro.core.engine.APIMEngine` — so one kernel definition serves
exact runs, approximate runs (any :class:`ApproxSpec`) and cost analysis.
:func:`exact_reference` evaluates the same semantics in pure NumPy,
providing the golden output QoL is scored against.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.compiler.ir import Kernel, OpKind
from repro.core.engine import APIMEngine
from repro.errors import WorkloadError

__all__ = ["evaluate", "exact_reference"]


def _gather_inputs(
    kernel: Kernel, inputs: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    missing = set(kernel.inputs) - set(inputs)
    if missing:
        raise WorkloadError(f"kernel inputs missing: {sorted(missing)}")
    extra = set(inputs) - set(kernel.inputs)
    if extra:
        raise WorkloadError(f"unknown kernel inputs supplied: {sorted(extra)}")
    return {
        name: np.asarray(array, dtype=np.int64) for name, array in inputs.items()
    }


def evaluate(
    kernel: Kernel,
    engine: APIMEngine,
    inputs: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Run ``kernel`` on ``engine``; returns the named output arrays.

    The engine's approximation spec and cost ledger apply to every
    arithmetic node, exactly as for the built-in workloads.
    """
    arrays = _gather_inputs(kernel, inputs)
    values: list[np.ndarray | None] = [None] * len(kernel.nodes)
    for node in kernel.nodes:  # node list is a topological order
        ops = [values[i] for i in node.operands]
        if node.kind is OpKind.INPUT:
            result = arrays[node.attrs["name"]]
        elif node.kind is OpKind.CONST:
            result = np.int64(node.attrs["value"])
        elif node.kind is OpKind.ADD:
            result = engine.add(ops[0], ops[1], width=node.attrs["width"])
        elif node.kind is OpKind.SUB:
            result = engine.sub(ops[0], ops[1], width=node.attrs["width"])
        elif node.kind is OpKind.MUL:
            result = engine.mul(ops[0], ops[1])
        elif node.kind is OpKind.SUM:
            result = engine.sum_many(list(ops), width=node.attrs["width"])
        elif node.kind is OpKind.SHR:
            result = engine.shift_right(ops[0], node.attrs["shift"])
        elif node.kind is OpKind.SHL:
            result = engine.shift_left(ops[0], node.attrs["shift"])
        elif node.kind is OpKind.ABS:
            result = np.abs(np.asarray(ops[0], dtype=np.int64))
        else:  # pragma: no cover - enum is closed
            raise WorkloadError(f"unhandled op {node.kind}")
        values[node.id] = result
    return {
        name: np.asarray(values[node_id])
        for name, node_id in kernel.outputs.items()
    }


def exact_reference(
    kernel: Kernel, inputs: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Pure-NumPy evaluation of the kernel (the golden output)."""
    arrays = _gather_inputs(kernel, inputs)
    values: list[np.ndarray | None] = [None] * len(kernel.nodes)
    for node in kernel.nodes:
        ops = [values[i] for i in node.operands]
        if node.kind is OpKind.INPUT:
            result = arrays[node.attrs["name"]]
        elif node.kind is OpKind.CONST:
            result = np.int64(node.attrs["value"])
        elif node.kind is OpKind.ADD:
            result = ops[0] + ops[1]
        elif node.kind is OpKind.SUB:
            result = ops[0] - ops[1]
        elif node.kind is OpKind.MUL:
            result = ops[0] * ops[1]
        elif node.kind is OpKind.SUM:
            result = ops[0]
            for operand in ops[1:]:
                result = result + operand
        elif node.kind is OpKind.SHR:
            result = np.asarray(ops[0]) >> np.int64(node.attrs["shift"])
        elif node.kind is OpKind.SHL:
            result = np.asarray(ops[0]) << np.int64(node.attrs["shift"])
        elif node.kind is OpKind.ABS:
            result = np.abs(np.asarray(ops[0], dtype=np.int64))
        else:  # pragma: no cover - enum is closed
            raise WorkloadError(f"unhandled op {node.kind}")
        values[node.id] = result
    return {
        name: np.asarray(values[node_id])
        for name, node_id in kernel.outputs.items()
    }
