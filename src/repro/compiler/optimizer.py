"""Kernel IR optimisation passes.

Three classic passes, each directly valuable on APIM's cost model:

- **constant folding** — arithmetic between constants happens at compile
  time; on APIM every folded multiply saves ~900 lane-cycles.
- **common-subexpression elimination (CSE)** — structurally identical
  nodes compute once; stencil kernels written naively repeat whole taps.
- **strength reduction** — multiplication by a power-of-two constant
  becomes a shift, which the configurable interconnect performs during a
  copy for *zero* cycles (paper Section 3.1); this pass is where the
  blocked-memory design pays off at the compiler level.

``optimize`` runs the pipeline to a fixed point and returns a new
:class:`~repro.compiler.ir.Kernel` plus a report of what each pass did.
Semantic preservation is pinned by ``tests/test_optimizer.py``: optimised
kernels must produce bit-identical outputs on the exact engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import Kernel, Node, OpKind
from repro.errors import WorkloadError

__all__ = ["optimize", "OptimizationReport"]


@dataclass
class OptimizationReport:
    """What the pipeline changed."""

    folded_constants: int = 0
    eliminated_subexpressions: int = 0
    strength_reduced: int = 0
    iterations: int = 0

    @property
    def total_changes(self) -> int:
        """Sum of all rewrites."""
        return (
            self.folded_constants
            + self.eliminated_subexpressions
            + self.strength_reduced
        )


def _rebuild(
    name: str,
    nodes: list[Node],
    inputs: dict[str, int],
    outputs: dict[str, int],
    replacements: dict[int, int],
) -> Kernel:
    """Re-number a node list after rewrites, dropping dead nodes.

    ``replacements`` maps old node ids to the ids that supersede them;
    chains are followed.  Inputs always survive (the kernel signature is
    part of its contract).
    """

    def resolve(node_id: int) -> int:
        while node_id in replacements:
            node_id = replacements[node_id]
        return node_id

    # Topological order over the live subgraph (rewrites may have appended
    # replacement nodes after their consumers, so original order is no
    # longer topological).  Inputs always survive: they are the signature.
    order: list[int] = []
    visited: set[int] = set()

    def visit(node_id: int) -> None:
        node_id = resolve(node_id)
        if node_id in visited:
            return
        visited.add(node_id)
        for operand in nodes[node_id].operands:
            visit(operand)
        order.append(node_id)

    for input_id in inputs.values():
        visit(input_id)
    for output_id in outputs.values():
        visit(output_id)

    old_to_new: dict[int, int] = {}
    rebuilt: list[Node] = []
    for node_id in order:
        node = nodes[node_id]
        new_id = len(rebuilt)
        old_to_new[node_id] = new_id
        rebuilt.append(
            Node(
                id=new_id,
                kind=node.kind,
                operands=tuple(
                    old_to_new[resolve(op)] for op in node.operands
                ),
                attrs=dict(node.attrs),
            )
        )
    return Kernel(
        name=name,
        nodes=tuple(rebuilt),
        inputs={k: old_to_new[resolve(v)] for k, v in inputs.items()},
        outputs={k: old_to_new[resolve(v)] for k, v in outputs.items()},
    )


def _fold_constants(kernel: Kernel, report: OptimizationReport) -> Kernel:
    """Evaluate arithmetic whose operands are all constants."""
    nodes = list(kernel.nodes)
    replacements: dict[int, int] = {}
    new_nodes = nodes[:]

    def const_value(node_id: int) -> int | None:
        node = new_nodes[node_id]
        return node.attrs["value"] if node.kind is OpKind.CONST else None

    changed = False
    for node in nodes:
        if not (node.kind.is_arithmetic or node.kind in (OpKind.SHR, OpKind.SHL, OpKind.ABS)):
            continue
        values = [const_value(op) for op in node.operands]
        if any(v is None for v in values) or not values:
            continue
        if node.kind is OpKind.ADD:
            folded = values[0] + values[1]
        elif node.kind is OpKind.SUB:
            folded = values[0] - values[1]
        elif node.kind is OpKind.MUL:
            folded = values[0] * values[1]
        elif node.kind is OpKind.SUM:
            folded = sum(values)
        elif node.kind is OpKind.SHR:
            folded = values[0] >> node.attrs["shift"]
        elif node.kind is OpKind.SHL:
            folded = values[0] << node.attrs["shift"]
        elif node.kind is OpKind.ABS:
            folded = abs(values[0])
        else:  # pragma: no cover - closed set above
            continue
        const_node = Node(
            id=len(new_nodes), kind=OpKind.CONST, operands=(),
            attrs={"value": int(folded)},
        )
        new_nodes.append(const_node)
        replacements[node.id] = const_node.id
        report.folded_constants += 1
        changed = True
    if not changed:
        return kernel
    return _rebuild(kernel.name, new_nodes, kernel.inputs, kernel.outputs,
                    replacements)


def _signature(node: Node) -> tuple:
    attrs = tuple(sorted(node.attrs.items())) if node.kind in (
        OpKind.CONST, OpKind.SHR, OpKind.SHL, OpKind.ADD, OpKind.SUB,
        OpKind.SUM,
    ) else ()
    return (node.kind, node.operands, attrs)


def _eliminate_common_subexpressions(
    kernel: Kernel, report: OptimizationReport
) -> Kernel:
    """Merge structurally identical non-input nodes."""
    seen: dict[tuple, int] = {}
    replacements: dict[int, int] = {}
    changed = False
    for node in kernel.nodes:
        if node.kind is OpKind.INPUT:
            continue
        # Operands must be resolved against earlier replacements so chains
        # of duplicates collapse in one pass.
        resolved = tuple(replacements.get(op, op) for op in node.operands)
        key = _signature(
            Node(id=node.id, kind=node.kind, operands=resolved,
                 attrs=node.attrs)
        )
        if key in seen:
            replacements[node.id] = seen[key]
            report.eliminated_subexpressions += 1
            changed = True
        else:
            seen[key] = node.id
    if not changed:
        return kernel
    return _rebuild(kernel.name, list(kernel.nodes), kernel.inputs,
                    kernel.outputs, replacements)


def _strength_reduce(kernel: Kernel, report: OptimizationReport) -> Kernel:
    """Rewrite ``x * 2^k`` as ``x << k`` (free on the interconnect)."""
    nodes = list(kernel.nodes)
    new_nodes = nodes[:]
    replacements: dict[int, int] = {}
    changed = False
    for node in nodes:
        if node.kind is not OpKind.MUL:
            continue
        operands = node.operands
        consts = [
            (i, new_nodes[op].attrs["value"])
            for i, op in enumerate(operands)
            if new_nodes[op].kind is OpKind.CONST
        ]
        for index, value in consts:
            if value > 0 and value & (value - 1) == 0:
                other = operands[1 - index]
                shift_node = Node(
                    id=len(new_nodes), kind=OpKind.SHL, operands=(other,),
                    attrs={"shift": value.bit_length() - 1},
                )
                new_nodes.append(shift_node)
                replacements[node.id] = shift_node.id
                report.strength_reduced += 1
                changed = True
                break
    if not changed:
        return kernel
    return _rebuild(kernel.name, new_nodes, kernel.inputs, kernel.outputs,
                    replacements)


def optimize(kernel: Kernel, max_iterations: int = 8) -> tuple[Kernel, OptimizationReport]:
    """Run all passes to a fixed point; returns (kernel, report)."""
    if max_iterations < 1:
        raise WorkloadError("max_iterations must be >= 1")
    report = OptimizationReport()
    current = kernel
    for _ in range(max_iterations):
        report.iterations += 1
        before = report.total_changes
        current = _fold_constants(current, report)
        current = _strength_reduce(current, report)
        current = _eliminate_common_subexpressions(current, report)
        if report.total_changes == before:
            break
    return current, report
