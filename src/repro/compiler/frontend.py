"""Kernel frontends: generate IR from higher-level operator descriptions.

Hand-building IR node by node is fine for small kernels; common operator
families deserve generators.  These produce exactly the structures the
built-in workloads use, so a user's generated stencil and the shipped
Sobel implementation follow the same arithmetic (Q-format coefficients,
product-scale accumulation, single trailing rescale):

- :func:`stencil_kernel` — a 2-D convolution as IR over per-tap shifted
  input planes (the caller shifts image views; the kernel is pure
  arithmetic, so it stays array-shape agnostic);
- :func:`fir_kernel` — a 1-D FIR filter over tap-delayed inputs;
- :func:`mac_chain_kernel` — a weighted-sum (dot product) kernel.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.ir import Kernel, KernelBuilder
from repro.errors import WorkloadError

__all__ = ["stencil_kernel", "fir_kernel", "mac_chain_kernel", "COEFF_BITS"]

#: Q-format fraction bits of generated coefficients (matches the stencil
#: workloads' convention).
COEFF_BITS = 14


def _quantise(coefficient: float) -> int:
    return int(round(coefficient * (1 << COEFF_BITS)))


def stencil_kernel(
    name: str,
    taps: Sequence[Sequence[float]],
    accumulator_width: int = 52,
) -> Kernel:
    """A 2-D convolution as a kernel over per-tap input planes.

    Inputs are named ``tap_{dy}_{dx}`` for every non-zero coefficient —
    the caller supplies each as the correspondingly shifted image view
    (exactly how the built-in stencils index their padded arrays).  The
    output ``out`` is the convolution at pixel scale (coefficients are
    quantised to Q14 and one trailing shift rescales).
    """
    rows = [list(row) for row in taps]
    if not rows or not rows[0] or any(len(r) != len(rows[0]) for r in rows):
        raise WorkloadError("taps must form a non-empty rectangular matrix")
    builder = KernelBuilder(name)
    terms = []
    for dy, row in enumerate(rows):
        for dx, coefficient in enumerate(row):
            if coefficient == 0:
                continue
            tap_input = builder.input(f"tap_{dy}_{dx}")
            quantised = builder.const(_quantise(coefficient))
            terms.append(builder.mul(quantised, tap_input))
    if not terms:
        raise WorkloadError("stencil has no non-zero taps")
    if len(terms) == 1:
        total = terms[0]
    else:
        total = builder.sum(terms, width=accumulator_width)
    builder.output("out", builder.shr(total, COEFF_BITS))
    return builder.build()


def fir_kernel(
    name: str,
    coefficients: Sequence[float],
    accumulator_width: int = 52,
) -> Kernel:
    """A 1-D FIR filter over tap-delayed input streams ``x0, x1, ...``."""
    if not coefficients:
        raise WorkloadError("FIR filter needs at least one coefficient")
    builder = KernelBuilder(name)
    terms = []
    for k, coefficient in enumerate(coefficients):
        x = builder.input(f"x{k}")
        if coefficient == 0:
            continue
        terms.append(builder.mul(builder.const(_quantise(coefficient)), x))
    if not terms:
        raise WorkloadError("FIR filter has no non-zero coefficients")
    total = terms[0] if len(terms) == 1 else builder.sum(
        terms, width=accumulator_width
    )
    builder.output("y", builder.shr(total, COEFF_BITS))
    return builder.build()


def mac_chain_kernel(
    name: str,
    weights: Sequence[int],
    accumulator_width: int = 52,
) -> Kernel:
    """A weighted integer sum ``sum_k w_k * x_k`` (no rescale).

    Integer weights are used verbatim — the shape of the quasi-random
    radical-inverse and of quantised dot products.
    """
    if not weights:
        raise WorkloadError("MAC chain needs at least one weight")
    builder = KernelBuilder(name)
    terms = []
    for k, weight in enumerate(weights):
        x = builder.input(f"x{k}")
        if weight == 0:
            continue
        terms.append(builder.mul(builder.const(int(weight)), x))
    if not terms:
        raise WorkloadError("MAC chain has no non-zero weights")
    total = terms[0] if len(terms) == 1 else builder.sum(
        terms, width=accumulator_width
    )
    builder.output("acc", total)
    return builder.build()
