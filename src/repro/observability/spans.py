"""Hierarchical span profiling: one instrumentation point, two outputs.

``with span("executor.run", workload="Sobel"):`` measures a region of wall
clock and publishes it twice from the same measurement:

- a ``repro_span_duration_seconds{name}`` histogram observation in the
  metrics registry (aggregate view: "how long do executor runs take?");
- a duration slice in a :class:`~repro.runtime.trace.ChromeTraceWriter`,
  when one is attached (timeline view: "what was running at t=3.2 s?") —
  stamped with the real thread id so concurrent executors render on
  separate tracks.

Spans nest: each thread keeps its own stack, a completed span attaches to
its parent (or becomes a root), and the finished tree is available on the
profiler for programmatic inspection.  The clock is injectable, so tests
assert exact durations instead of sleeping.

When observability is disabled (:func:`repro.observability.disable`), the
module-level :func:`span` returns a shared ``nullcontext`` — a single
global check and no allocation, which is what keeps instrumentation in hot
paths essentially free for the overhead benchmark's baseline arm.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    active_registry,
)

if TYPE_CHECKING:
    from repro.runtime.trace import ChromeTraceWriter

__all__ = ["SpanProfiler", "SpanRecord", "default_profiler", "span"]

#: Family every span duration lands in, labelled by span name.
SPAN_HISTOGRAM = "repro_span_duration_seconds"


@dataclass
class SpanRecord:
    """One completed (or in-flight) profiled region."""

    name: str
    start_s: float
    end_s: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    thread_id: int = 0

    @property
    def duration_s(self) -> float:
        """Wall-clock duration (0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def walk(self) -> Iterator["SpanRecord"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanProfiler:
    """Per-thread span stacks feeding the registry and an optional trace.

    ``registry=None`` (the default) resolves
    :func:`~repro.observability.registry.active_registry` at record time,
    so one profiler honours enable/disable and registry swaps; pass an
    explicit registry to pin it.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        trace: "ChromeTraceWriter | None" = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._registry = registry
        self.trace = trace
        self.clock = clock
        self._epoch = clock()
        self._local = threading.local()
        self._roots: list[SpanRecord] = []
        self._lock = threading.Lock()

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _resolve_registry(self) -> MetricsRegistry | None:
        return self._registry if self._registry is not None \
            else active_registry()

    @property
    def roots(self) -> tuple[SpanRecord, ...]:
        """Completed top-level spans, across all threads."""
        with self._lock:
            return tuple(self._roots)

    def reset(self) -> None:
        """Forget completed roots (per-run CLI hygiene)."""
        with self._lock:
            self._roots.clear()

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[SpanRecord]:
        """Profile a region; yields the live :class:`SpanRecord` so callers
        can attach attributes mid-flight."""
        record = SpanRecord(
            name=name,
            start_s=self.clock(),
            attrs=dict(attrs),
            thread_id=threading.get_ident(),
        )
        stack = self._stack()
        stack.append(record)
        try:
            yield record
        finally:
            record.end_s = self.clock()
            # Remove *this* record by identity rather than popping blindly:
            # a span held open across a generator that is closed out of
            # order (or abandoned and finalised later by GC) would
            # otherwise pop someone else's frame and mis-parent every
            # span recorded after it.  Its parent is whatever sat below
            # it on the stack at close time.
            try:
                index = next(
                    i for i in range(len(stack) - 1, -1, -1)
                    if stack[i] is record
                )
            except StopIteration:  # already removed; never double-publish
                index = None
            if index is not None:
                del stack[index]
                parent = stack[index - 1] if index > 0 else None
                if parent is not None:
                    parent.children.append(record)
                else:
                    with self._lock:
                        self._roots.append(record)
                self._publish(record)

    def _publish(self, record: SpanRecord) -> None:
        registry = self._resolve_registry()
        if registry is not None:
            registry.histogram(
                SPAN_HISTOGRAM,
                "Wall-clock duration of profiled spans.",
                labelnames=("name",),
                buckets=DEFAULT_LATENCY_BUCKETS,
            ).labels(name=record.name).observe(record.duration_s)
        if self.trace is not None:
            self.trace.slice(
                record.name,
                ts_us=(record.start_s - self._epoch) * 1e6,
                dur_us=record.duration_s * 1e6,
                tid=record.thread_id,
                **record.attrs,
            )


_default_profiler = SpanProfiler()
_NULL_SPAN = nullcontext(None)


def default_profiler() -> SpanProfiler:
    """The process-wide profiler the module-level :func:`span` uses."""
    return _default_profiler


def span(name: str, **attrs):
    """Profile a region through the default profiler.

    Returns a shared null context while observability is disabled, so call
    sites never pay for profiling they did not ask for.
    """
    if active_registry() is None and _default_profiler.trace is None:
        return _NULL_SPAN
    return _default_profiler.span(name, **attrs)
