"""Observability: metrics registry, span profiling and telemetry export.

The subsystem has four small parts:

- :mod:`repro.observability.registry` — labelled counters, gauges and
  fixed-bucket histograms in a process-wide :class:`MetricsRegistry`;
- :mod:`repro.observability.spans` — the :func:`span` context manager:
  hierarchical wall-clock profiling feeding both the registry and the
  Chrome trace writer from one instrumentation point;
- :mod:`repro.observability.export` — Prometheus text exposition and
  JSONL snapshot sink;
- :mod:`repro.observability.instruments` — the domain metric families the
  executor, supervisor, campaign, checkpoint, resilience and controller
  layers emit into.

See ``docs/observability.md`` for naming conventions and usage.
"""

from repro.observability.export import JsonlSnapshotSink, snapshot, to_prometheus
from repro.observability.registry import (
    DEFAULT_ENERGY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    default_registry,
    disable,
    enable,
    enabled,
    exponential_buckets,
    set_default_registry,
)
from repro.observability.spans import (
    SpanProfiler,
    SpanRecord,
    default_profiler,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSnapshotSink",
    "MetricsRegistry",
    "SpanProfiler",
    "SpanRecord",
    "DEFAULT_ENERGY_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "active_registry",
    "default_profiler",
    "default_registry",
    "disable",
    "enable",
    "enabled",
    "exponential_buckets",
    "set_default_registry",
    "snapshot",
    "span",
    "to_prometheus",
]
