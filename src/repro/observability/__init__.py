"""Observability: metrics, spans, tracing, tail analytics and SLOs.

The subsystem's parts:

- :mod:`repro.observability.registry` — labelled counters, gauges and
  fixed-bucket histograms (with per-bucket exemplars) in a process-wide
  :class:`MetricsRegistry`;
- :mod:`repro.observability.spans` — the :func:`span` context manager:
  hierarchical wall-clock profiling feeding both the registry and the
  Chrome trace writer from one instrumentation point;
- :mod:`repro.observability.tracing` — per-request :class:`TraceContext`
  propagation across the serving stack, with a bounded
  :class:`TraceStore` (JSONL spill) behind ``GET /trace/<id>``;
- :mod:`repro.observability.sketch` — mergeable streaming quantile
  sketches (:class:`QuantileSketch`, :class:`LatencyAnalytics`) for
  p50/p95/p99/p999 tail reporting;
- :mod:`repro.observability.slo` — :class:`SLOPolicy` objectives and
  multi-window :class:`BurnRateEvaluator` verdicts (the ``healthz``
  503-on-fast-burn signal);
- :mod:`repro.observability.export` — Prometheus text exposition
  (exemplar-annotated) and the rotating JSONL snapshot sink;
- :mod:`repro.observability.timeseries` — the streaming telemetry
  pipeline: bounded :class:`RingSeries` history of the registry and
  sketch quantiles, derived signals (rates, EWMA, slope), declarative
  alert/recording rules and the fleet's :class:`SlopeVerdictSource`;
- :mod:`repro.observability.instruments` — the domain metric families the
  executor, supervisor, campaign, checkpoint, resilience, serving and
  controller layers emit into.

See ``docs/observability.md`` for naming conventions and usage.
"""

from repro.observability.export import JsonlSnapshotSink, snapshot, to_prometheus
from repro.observability.registry import (
    DEFAULT_ENERGY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    default_registry,
    disable,
    enable,
    enabled,
    exponential_buckets,
    set_default_registry,
)
from repro.observability.sketch import (
    TAIL_QUANTILES,
    LatencyAnalytics,
    QuantileSketch,
)
from repro.observability.slo import BurnRateEvaluator, SLOPolicy, evaluate_points
from repro.observability.timeseries import (
    AlertRule,
    RecordingRule,
    RingSeries,
    SlopeVerdictSource,
    TelemetryPipeline,
    TimeSeriesStore,
    counter_rate,
    ewma,
    series_key,
    slope,
)
from repro.observability.spans import (
    SpanProfiler,
    SpanRecord,
    default_profiler,
    span,
)
from repro.observability.tracing import (
    TraceContext,
    TraceEvent,
    TraceRecord,
    TraceStore,
    current_trace,
    default_trace_store,
    format_timeline,
    set_default_trace_store,
    trace_event,
    use_trace,
)

__all__ = [
    "AlertRule",
    "BurnRateEvaluator",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSnapshotSink",
    "LatencyAnalytics",
    "MetricsRegistry",
    "QuantileSketch",
    "RecordingRule",
    "RingSeries",
    "SLOPolicy",
    "SlopeVerdictSource",
    "SpanProfiler",
    "SpanRecord",
    "TelemetryPipeline",
    "TimeSeriesStore",
    "TraceContext",
    "TraceEvent",
    "TraceRecord",
    "TraceStore",
    "DEFAULT_ENERGY_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "TAIL_QUANTILES",
    "active_registry",
    "counter_rate",
    "current_trace",
    "default_profiler",
    "default_registry",
    "default_trace_store",
    "disable",
    "enable",
    "enabled",
    "evaluate_points",
    "ewma",
    "exponential_buckets",
    "format_timeline",
    "series_key",
    "set_default_registry",
    "set_default_trace_store",
    "slope",
    "snapshot",
    "span",
    "to_prometheus",
    "trace_event",
    "use_trace",
]
