"""Streaming telemetry: ring-buffer time series, derived signals, rules.

The registry (:mod:`repro.observability.registry`) and the latency
sketches (:mod:`repro.observability.sketch`) answer *point-in-time*
questions — current counter totals, current tail quantiles.  This module
retains their **history** so trends become first-class signals:

- :class:`RingSeries` — a fixed-capacity sample buffer.  When full it
  never truncates silently: adjacent samples merge pairwise (2x
  decimation), halving the resolution while keeping the *whole* retained
  span.  Counter samples merge by keeping the later cumulative value
  (exact at its timestamp); gauge samples merge into their weighted
  centroid (the weighted mean over the series is preserved exactly).
  Memory per series is therefore bounded by ``capacity`` forever.
- :class:`TimeSeriesStore` — named, labelled series
  (``name{label="value"}``), with selector lookup (a bare name selects
  every labelled child).
- Derived signals — :func:`counter_rate` (reset-tolerant, never
  negative), :func:`ewma` (time-aware exponential smoothing) and
  :func:`slope` (least-squares trend, invariant under time
  translation).  ``p99_slope_s_per_s`` — the slope of the sampled
  end-to-end p99 — is the headline signal the fleet autoscaler consumes
  through :class:`SlopeVerdictSource`.
- :class:`AlertRule` / :class:`RecordingRule` — a declarative layer
  evaluated every sample tick on the *injected clock*.  Alerts walk the
  ``inactive -> pending -> firing -> resolved`` state machine with
  ``for_s`` hysteresis on both edges, so a flapping signal neither pages
  instantly nor silences instantly.
- :class:`TelemetryPipeline` — the conductor: each :meth:`tick` samples
  the registry (counters, gauges, histogram count/sum/buckets), the
  latency sketches' tail quantiles, process resource gauges and any
  extra samplers into the store, evaluates the rules, observes itself
  (``repro_telemetry_*`` families) and optionally appends one JSONL
  record to a rotating :class:`~repro.observability.export.JsonlSnapshotSink`.

Everything runs on an injectable clock: a test (or the replay harness)
drives :class:`~repro.runtime.supervisor.ManualClock` ticks and the whole
pipeline — samples, rule transitions, verdicts — is deterministic.  The
optional :meth:`TelemetryPipeline.start` background thread exists only
for wall-clock serving.

Expression syntax (rules and ``GET /query``'s ``fn``)::

    value(series_selector)            latest sample
    rate(series_selector, window_s)   per-second increase (counters)
    ewma(series_selector, tau_s)      exponential smoothing
    slope(series_selector, window_s)  least-squares trend per second
    mean|min|max(series_selector, window_s)

A selector matching several series aggregates by summation (``value`` /
``rate`` / ``mean``), which is the natural fold for per-tenant counters.
"""

from __future__ import annotations

import math
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TelemetryError
from repro.observability.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.sketch import TAIL_QUANTILES, LatencyAnalytics

__all__ = [
    "AlertRule",
    "RecordingRule",
    "RingSeries",
    "SlopeVerdictSource",
    "TelemetryPipeline",
    "TimeSeriesStore",
    "counter_rate",
    "ewma",
    "series_key",
    "slope",
]

#: Series name for sampled sketch quantiles (labels: layer, quantile).
QUANTILE_SERIES = "repro_latency_quantile_seconds"

#: The alert states the rule engine can report.
ALERT_STATES = ("inactive", "pending", "firing", "resolved")


def series_key(name: str, labels: dict | None = None) -> str:
    """The canonical key of one series: ``name{k="v",...}`` with label
    names sorted, or the bare name for an unlabelled series."""
    if not labels:
        return name
    body = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{body}}}"


_SELECTOR_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?$"
)
_LABEL_PAIR_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def parse_selector(selector: str) -> tuple[str, dict | None]:
    """``name`` or ``name{k="v",...}`` -> (name, labels-or-None).

    A bare name selects every labelled child of the family; a labelled
    selector matches series carrying (at least) those label values.
    """
    match = _SELECTOR_RE.match(selector.strip())
    if match is None:
        raise TelemetryError(f"malformed series selector {selector!r}")
    body = match.group("labels")
    if body is None:
        return match.group("name"), None
    labels: dict[str, str] = {}
    if body.strip():
        for pair in body.split(","):
            pair_match = _LABEL_PAIR_RE.match(pair.strip())
            if pair_match is None:
                raise TelemetryError(
                    f"malformed label matcher {pair.strip()!r} in "
                    f"{selector!r} (want key=\"value\")"
                )
            labels[pair_match.group("key")] = pair_match.group("value")
    return match.group("name"), labels


class RingSeries:
    """One series: bounded samples with pairwise 2x decimation.

    Samples are ``(t, value, weight)`` where ``weight`` counts the raw
    samples merged into the point (1 until the first decimation).  The
    buffer holds at most ``capacity`` points; an append into a full
    buffer first merges adjacent pairs oldest-first, so the series keeps
    its entire retained time span at half the resolution instead of
    dropping history.

    ``kind`` picks the merge rule:

    - ``"counter"`` — keep the later sample verbatim.  Cumulative totals
      are exact at every retained timestamp, so rates between retained
      points are exact.
    - ``"gauge"`` — weighted centroid of time and value.  The weighted
      mean of the retained points equals the mean of all raw samples
      exactly, at any decimation depth.
    """

    __slots__ = ("kind", "capacity", "points", "decimations", "total_samples")

    def __init__(self, kind: str = "gauge", capacity: int = 512) -> None:
        if kind not in ("counter", "gauge"):
            raise TelemetryError(f"unknown series kind {kind!r}")
        if capacity < 4:
            raise TelemetryError(
                f"series capacity must be at least 4: {capacity}"
            )
        if capacity % 2:
            raise TelemetryError(
                f"series capacity must be even (pairwise decimation): "
                f"{capacity}"
            )
        self.kind = kind
        self.capacity = int(capacity)
        self.points: list[tuple[float, float, int]] = []
        self.decimations = 0
        self.total_samples = 0

    def append(self, t: float, value: float) -> None:
        """Ingest one sample; decimates first when the buffer is full."""
        value = float(value)
        if math.isnan(value):
            raise TelemetryError("cannot record NaN")
        if len(self.points) >= self.capacity:
            self._decimate()
        self.points.append((float(t), value, 1))
        self.total_samples += 1

    def _decimate(self) -> None:
        merged: list[tuple[float, float, int]] = []
        points = self.points
        for i in range(0, len(points) - 1, 2):
            t1, v1, w1 = points[i]
            t2, v2, w2 = points[i + 1]
            if self.kind == "counter":
                merged.append((t2, v2, w1 + w2))
            else:
                w = w1 + w2
                merged.append(
                    ((t1 * w1 + t2 * w2) / w, (v1 * w1 + v2 * w2) / w, w)
                )
        if len(points) % 2:
            merged.append(points[-1])
        self.points = merged
        self.decimations += 1

    def window(
        self, window_s: float | None = None, now: float | None = None
    ) -> list[tuple[float, float, int]]:
        """The retained points, optionally only those within
        ``[now - window_s, now]`` (``now`` defaults to the newest
        sample's timestamp)."""
        if window_s is None:
            return list(self.points)
        if not self.points:
            return []
        horizon = (now if now is not None else self.points[-1][0]) - window_s
        return [p for p in self.points if p[0] >= horizon]

    def latest(self) -> tuple[float, float] | None:
        """The newest ``(t, value)``, or None while empty."""
        if not self.points:
            return None
        t, v, _w = self.points[-1]
        return t, v

    @property
    def resolution_s_factor(self) -> int:
        """How much coarser than the raw cadence the buffer currently is."""
        return 1 << self.decimations

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "capacity": self.capacity,
            "points": [[t, v, w] for t, v, w in self.points],
            "decimations": self.decimations,
            "total_samples": self.total_samples,
        }


class TimeSeriesStore:
    """Named, labelled :class:`RingSeries`; thread-safe get-or-create."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._series: dict[str, RingSeries] = {}
        self._meta: dict[str, tuple[str, dict]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._series)

    def series(
        self, name: str, labels: dict | None = None, kind: str = "gauge"
    ) -> RingSeries:
        """Get-or-create one series (kind fixed at first creation)."""
        key = series_key(name, labels)
        existing = self._series.get(key)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._series.get(key)
            if existing is None:
                existing = self._series[key] = RingSeries(
                    kind=kind, capacity=self.capacity
                )
                self._meta[key] = (name, dict(labels or {}))
            return existing

    def get(self, key: str) -> RingSeries | None:
        return self._series.get(key)

    def keys(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._series))

    def select(self, selector: str) -> dict[str, RingSeries]:
        """Series matching a selector (see :func:`parse_selector`)."""
        name, labels = parse_selector(selector)
        out: dict[str, RingSeries] = {}
        with self._lock:
            items = list(self._series.items())
        for key, series in items:
            meta = self._meta.get(key)
            if meta is None or meta[0] != name:
                continue
            if labels is not None and any(
                meta[1].get(k) != v for k, v in labels.items()
            ):
                continue
            out[key] = series
        return out


# -- derived signals ----------------------------------------------------------


def counter_rate(
    points: list[tuple[float, float, int]], window_s: float | None = None
) -> float | None:
    """Per-second increase of a cumulative counter over its points.

    Reset-tolerant: a decrease between adjacent samples is read as a
    counter restart, contributing the new absolute value (the increase
    since the reset) rather than a negative delta — so the result is
    never negative.  None with fewer than two points or zero elapsed
    time.
    """
    if window_s is not None and points:
        horizon = points[-1][0] - window_s
        points = [p for p in points if p[0] >= horizon]
    if len(points) < 2:
        return None
    elapsed = points[-1][0] - points[0][0]
    if elapsed <= 0:
        return None
    increase = 0.0
    for (t1, v1, _w1), (t2, v2, _w2) in zip(points, points[1:]):
        del t1, t2
        increase += (v2 - v1) if v2 >= v1 else v2
    return max(0.0, increase) / elapsed


def ewma(
    points: list[tuple[float, float, int]], tau_s: float
) -> float | None:
    """Time-aware exponential smoothing with time constant ``tau_s``.

    Between samples ``dt`` apart the old estimate decays by
    ``exp(-dt / tau_s)`` — robust to irregular (and decimated) spacing.
    """
    if not points:
        return None
    if tau_s <= 0:
        raise TelemetryError(f"ewma time constant must be positive: {tau_s}")
    smoothed = points[0][1]
    last_t = points[0][0]
    for t, v, _w in points[1:]:
        dt = max(0.0, t - last_t)
        alpha = 1.0 - math.exp(-dt / tau_s)
        smoothed += alpha * (v - smoothed)
        last_t = t
    return smoothed


def slope(
    points: list[tuple[float, float, int]], window_s: float | None = None
) -> float | None:
    """Weighted least-squares trend in value-units per second.

    Centered on the weighted mean time, so translating every timestamp
    by a constant leaves the result unchanged (the property test pins
    this).  None with fewer than two distinct timestamps.
    """
    if window_s is not None and points:
        horizon = points[-1][0] - window_s
        points = [p for p in points if p[0] >= horizon]
    if len(points) < 2:
        return None
    total_w = sum(w for _t, _v, w in points)
    mean_t = sum(t * w for t, _v, w in points) / total_w
    mean_v = sum(v * w for _t, v, w in points) / total_w
    var_t = sum(w * (t - mean_t) ** 2 for t, _v, w in points)
    if var_t <= 0:
        return None
    cov = sum(
        w * (t - mean_t) * (v - mean_v) for t, v, w in points
    )
    return cov / var_t


def _window_agg(
    fn: str,
    points: list[tuple[float, float, int]],
    window_s: float | None,
) -> float | None:
    if window_s is not None and points:
        horizon = points[-1][0] - window_s
        points = [p for p in points if p[0] >= horizon]
    if not points:
        return None
    values = [v for _t, v, _w in points]
    if fn == "min":
        return min(values)
    if fn == "max":
        return max(values)
    weights = [w for _t, _v, w in points]
    return sum(v * w for v, w in zip(values, weights)) / sum(weights)


# -- the expression engine ----------------------------------------------------

_EXPR_RE = re.compile(
    r"^\s*(?P<fn>[a-z_]+)\s*\(\s*"
    r"(?P<selector>[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)\s*"
    r"(?:,\s*(?P<window>[0-9]*\.?[0-9]+)\s*)?\)\s*$"
)

_EXPR_FNS = ("value", "rate", "ewma", "slope", "mean", "min", "max")
#: Functions that require the trailing window/tau argument.
_WINDOW_REQUIRED = ("rate", "ewma", "slope", "mean", "min", "max")


def parse_expr(expr: str) -> tuple[str, str, float | None]:
    """``fn(selector[, window_s])`` -> (fn, selector, window)."""
    match = _EXPR_RE.match(expr)
    if match is None:
        raise TelemetryError(
            f"malformed expression {expr!r} (want fn(series[, window_s]), "
            f"fn one of {_EXPR_FNS})"
        )
    fn = match.group("fn")
    if fn not in _EXPR_FNS:
        raise TelemetryError(
            f"unknown expression function {fn!r} (one of {_EXPR_FNS})"
        )
    window = match.group("window")
    if window is None and fn in _WINDOW_REQUIRED:
        raise TelemetryError(f"{fn}() needs a window: {expr!r}")
    parse_selector(match.group("selector"))  # validate eagerly
    return fn, match.group("selector"), None if window is None else float(window)


def evaluate_expr(store: TimeSeriesStore, expr: str) -> float | None:
    """Evaluate one expression against the store (None = no data yet).

    Multiple matching series fold by summation for ``value``/``rate``
    (the per-tenant counter fold) and ``mean``; by extremum for
    ``min``/``max``; ``ewma``/``slope`` also sum (a trend over a summed
    family equals the sum of trends for aligned samples).
    """
    fn, selector, window = parse_expr(expr)
    matched = store.select(selector)
    if not matched:
        return None
    per_series: list[float] = []
    for series in matched.values():
        points = series.window()
        if fn == "value":
            result = points[-1][1] if points else None
        elif fn == "rate":
            result = counter_rate(points, window)
        elif fn == "ewma":
            result = ewma(points, window)
        elif fn == "slope":
            result = slope(points, window)
        else:
            result = _window_agg(fn, points, window)
        if result is not None:
            per_series.append(result)
    if not per_series:
        return None
    if fn == "min":
        return min(per_series)
    if fn == "max":
        return max(per_series)
    return sum(per_series)


# -- rules --------------------------------------------------------------------

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert: fire when ``expr op threshold`` sustains.

    ``for_s`` is the hysteresis on *both* edges, on the injected clock:
    a breach must hold ``for_s`` before ``pending`` promotes to
    ``firing``, and the breach must stay clear ``for_s`` before
    ``resolved`` relaxes to ``inactive`` (a re-breach while resolved
    returns straight to ``firing`` — the flap guard).
    """

    name: str
    expr: str
    threshold: float
    op: str = ">"
    for_s: float = 0.0
    severity: str = "warn"

    def __post_init__(self) -> None:
        if not self.name:
            raise TelemetryError("alert rule needs a name")
        if self.op not in _OPS:
            raise TelemetryError(
                f"unknown comparison {self.op!r} (one of {sorted(_OPS)})"
            )
        if self.for_s < 0:
            raise TelemetryError(f"for_s must be non-negative: {self.for_s}")
        if self.severity not in ("info", "warn", "page"):
            raise TelemetryError(
                f"severity must be info/warn/page: {self.severity!r}"
            )
        parse_expr(self.expr)  # validate eagerly

    def breached(self, value: float | None) -> bool:
        """No data is never a breach — absence of samples must not page."""
        if value is None:
            return False
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class RecordingRule:
    """Evaluate ``expr`` each tick and write it back as ``record`` —
    derived series become queryable/alertable like sampled ones."""

    record: str
    expr: str
    labels: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        parse_expr(self.expr)  # validate eagerly
        parse_selector(series_key(self.record, self.labels))


class _AlertStatus:
    """Mutable per-rule state the engine walks each tick."""

    __slots__ = ("state", "since", "value", "transitions")

    def __init__(self, now: float) -> None:
        self.state = "inactive"
        self.since = now
        self.value: float | None = None
        self.transitions = 0

    def _move(self, state: str, now: float) -> None:
        if state != self.state:
            self.state = state
            self.since = now
            self.transitions += 1

    def step(self, rule: AlertRule, value: float | None, now: float) -> None:
        self.value = value
        breached = rule.breached(value)
        if self.state == "inactive":
            if breached:
                self._move("pending", now)
        elif self.state == "pending":
            if not breached:
                self._move("inactive", now)
        elif self.state == "firing":
            if not breached:
                self._move("resolved", now)
        elif self.state == "resolved":
            if breached:
                # Re-breach inside the hysteresis window: straight back
                # to firing, no second pending dwell (the flap guard).
                self._move("firing", now)
        # Dwell promotions (may complete within the same tick iff
        # for_s == 0 — pending is still entered first, never skipped).
        if self.state == "pending" and now - self.since >= rule.for_s:
            self._move("firing", now)
        elif self.state == "resolved" and now - self.since >= rule.for_s:
            self._move("inactive", now)

    def to_dict(self, rule: AlertRule) -> dict:
        return {
            "name": rule.name,
            "expr": rule.expr,
            "op": rule.op,
            "threshold": rule.threshold,
            "for_s": rule.for_s,
            "severity": rule.severity,
            "state": self.state,
            "since": self.since,
            "value": self.value,
            "transitions": self.transitions,
        }


# -- the pipeline -------------------------------------------------------------


class TelemetryPipeline:
    """Sample -> derive -> evaluate, one deterministic tick at a time.

    ``interval_s`` is the intended cadence; it scales the retention
    math (``capacity * interval_s`` seconds at full resolution, doubling
    per decimation) and is the sleep used by the optional background
    thread.  Determinism never depends on it: every :meth:`tick` stamps
    samples from the injected ``clock``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        analytics: LatencyAnalytics | None = None,
        interval_s: float = 1.0,
        capacity: int = 512,
        clock: Callable[[], float] = time.monotonic,
        include_buckets: bool = True,
        sample_process: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise TelemetryError(
                f"sampling interval must be positive: {interval_s}"
            )
        self.registry = registry
        self.analytics = analytics
        self.interval_s = float(interval_s)
        self.clock = clock
        self.include_buckets = include_buckets
        self.sample_process = sample_process
        self.store = TimeSeriesStore(capacity=capacity)
        self.alert_rules: list[AlertRule] = []
        self.recording_rules: list[RecordingRule] = []
        self._alert_status: dict[str, _AlertStatus] = {}
        self.ticks = 0
        self.last_tick_at: float | None = None
        self._sink = None
        self._extra_samplers: list[Callable[[], dict]] = []
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- wiring ---------------------------------------------------------------

    @classmethod
    def for_pool(cls, pool, **kwargs) -> "TelemetryPipeline":
        """A pipeline wired to one serving pool: the process registry,
        the pool's latency sketches and the pool scheduler's clock (a
        :class:`~repro.runtime.supervisor.ManualClock` injected there
        drives telemetry too).  Attaches itself as ``pool.telemetry`` —
        the handle ``GET /query`` / ``GET /alerts`` serve through."""
        from repro.observability.registry import default_registry

        kwargs.setdefault("registry", default_registry())
        kwargs.setdefault("analytics", pool.latency)
        kwargs.setdefault("clock", pool.scheduler.clock)
        pipeline = cls(**kwargs)
        pool.telemetry = pipeline
        return pipeline

    def add_rule(self, rule: "AlertRule | RecordingRule") -> None:
        """Register one rule (recording rules evaluate before alerts)."""
        if isinstance(rule, AlertRule):
            if any(r.name == rule.name for r in self.alert_rules):
                raise TelemetryError(
                    f"duplicate alert rule name {rule.name!r}"
                )
            self.alert_rules.append(rule)
            self._alert_status[rule.name] = _AlertStatus(self.clock())
        elif isinstance(rule, RecordingRule):
            self.recording_rules.append(rule)
        else:
            raise TelemetryError(
                f"not a rule: {type(rule).__name__}"
            )

    def add_sampler(self, sampler: Callable[[], dict]) -> None:
        """Register an extra source: a callable returning
        ``{(name, label-items-tuple): value}`` (or ``{name: value}``)
        sampled as gauges each tick."""
        self._extra_samplers.append(sampler)

    def attach_sink(self, sink) -> None:
        """Append one JSONL telemetry record per tick to ``sink`` (a
        :class:`~repro.observability.export.JsonlSnapshotSink`, rotation
        included)."""
        self._sink = sink

    # -- sampling -------------------------------------------------------------

    def _sample_registry(self, now: float) -> int:
        samples = 0
        registry = self.registry
        if registry is None:
            return 0
        for family in registry.families():
            if family.name.startswith(("repro_telemetry_", "repro_process_")):
                # telemetry families would feed the pipeline back into
                # itself; process gauges are appended by the extras pass
                # (one source per series).
                continue
            if isinstance(family, Histogram):
                for labels, child in family.samples():
                    self.store.series(
                        f"{family.name}_count", labels, kind="counter"
                    ).append(now, child.count)
                    self.store.series(
                        f"{family.name}_sum", labels, kind="counter"
                    ).append(now, child.sum)
                    samples += 2
                    if not self.include_buckets:
                        continue
                    cumulative = child.cumulative()
                    for bound, count in zip(family.buckets, cumulative):
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = f"{bound:g}"
                        self.store.series(
                            f"{family.name}_bucket",
                            bucket_labels,
                            kind="counter",
                        ).append(now, count)
                        samples += 1
            elif isinstance(family, (Counter, Gauge)):
                kind = "counter" if family.kind == "counter" else "gauge"
                for labels, child in family.samples():
                    self.store.series(family.name, labels, kind=kind).append(
                        now, child.value
                    )
                    samples += 1
        return samples

    def _sample_analytics(self, now: float) -> int:
        samples = 0
        analytics = self.analytics
        if analytics is None:
            return 0
        for layer in analytics.layers():
            sketch = analytics.sketch(layer)
            if sketch.count == 0:
                continue
            for name, q in TAIL_QUANTILES.items():
                self.store.series(
                    QUANTILE_SERIES,
                    {"layer": layer, "quantile": name},
                    kind="gauge",
                ).append(now, sketch.quantile(q))
                samples += 1
            self.store.series(
                "repro_latency_events_total", {"layer": layer},
                kind="counter",
            ).append(now, sketch.count)
            samples += 1
        return samples

    def _sample_extras(self, now: float) -> int:
        samples = 0
        sources: list[Callable[[], dict]] = list(self._extra_samplers)
        if self.sample_process:
            from repro.observability.instruments import (
                sample_process_resources,
            )

            sources.insert(0, sample_process_resources)
        for sampler in sources:
            for key, value in (sampler() or {}).items():
                if value is None:
                    continue
                if isinstance(key, tuple):
                    name, label_items = key
                    labels = dict(label_items)
                else:
                    name, labels = key, None
                self.store.series(name, labels, kind="gauge").append(
                    now, float(value)
                )
                samples += 1
        return samples

    # -- the tick -------------------------------------------------------------

    def tick(self) -> dict:
        """One full pipeline pass; returns a JSON-able tick summary."""
        from repro.observability.instruments import (
            record_telemetry_tick,
            set_telemetry_alert_states,
        )

        started = time.perf_counter()
        with self._lock:
            now = self.clock()
            samples = self._sample_extras(now)
            samples += self._sample_registry(now)
            samples += self._sample_analytics(now)
            for rule in self.recording_rules:
                value = evaluate_expr(self.store, rule.expr)
                if value is not None:
                    self.store.series(
                        rule.record, rule.labels, kind="gauge"
                    ).append(now, value)
                    samples += 1
            for rule in self.alert_rules:
                value = evaluate_expr(self.store, rule.expr)
                self._alert_status[rule.name].step(rule, value, now)
            state_counts = {state: 0 for state in ALERT_STATES}
            for status in self._alert_status.values():
                state_counts[status.state] += 1
            self.ticks += 1
            self.last_tick_at = now
            summary = {
                "at": now,
                "samples": samples,
                "series": len(self.store),
                "alerts": state_counts,
                "firing": sorted(
                    rule.name
                    for rule in self.alert_rules
                    if self._alert_status[rule.name].state == "firing"
                ),
            }
            if self._sink is not None:
                self._sink.write_record(
                    {"ts": now, "telemetry": self._export_tails(summary)}
                )
        eval_s = time.perf_counter() - started
        record_telemetry_tick(samples, eval_s)
        set_telemetry_alert_states(state_counts)
        summary["eval_seconds"] = eval_s
        return summary

    def _export_tails(self, summary: dict) -> dict:
        """The per-tick JSONL record: newest sample of every series plus
        the alert roll-up — diffable line by line, bounded per line."""
        tails = {}
        for key in self.store.keys():
            latest = self.store.get(key).latest()
            if latest is not None:
                tails[key] = latest[1]
        return {
            "samples": summary["samples"],
            "alerts": summary["alerts"],
            "firing": summary["firing"],
            "tails": tails,
        }

    # -- queries --------------------------------------------------------------

    def query(
        self,
        selector: str,
        window_s: float | None = None,
        fn: str | None = None,
    ) -> dict:
        """The ``GET /query`` payload: matching series with their points
        inside ``window_s`` (all retained points when omitted), plus the
        derived scalar when ``fn`` (rate/ewma/slope/...) is given."""
        if fn is not None and fn not in _EXPR_FNS:
            raise TelemetryError(
                f"unknown derive function {fn!r} (one of {_EXPR_FNS})"
            )
        matched = self.store.select(selector)
        now = self.clock()
        out = []
        for key in sorted(matched):
            series = matched[key]
            entry: dict = {
                "key": key,
                "kind": series.kind,
                "points": [
                    [t, v, w]
                    for t, v, w in series.window(window_s, now=now)
                ],
                "decimations": series.decimations,
                "total_samples": series.total_samples,
            }
            if fn is not None:
                entry["derived"] = {
                    "fn": fn,
                    "value": evaluate_expr(
                        self.store,
                        f"{fn}({key}, {window_s if window_s else self.interval_s})"
                        if fn in _WINDOW_REQUIRED
                        else f"{fn}({key})",
                    ),
                }
            out.append(entry)
        return {
            "selector": selector,
            "window_s": window_s,
            "at": now,
            "interval_s": self.interval_s,
            "series": out,
        }

    def alerts(self) -> dict:
        """The ``GET /alerts`` payload: every rule's full state."""
        rules = [
            self._alert_status[rule.name].to_dict(rule)
            for rule in self.alert_rules
        ]
        return {
            "at": self.clock(),
            "ticks": self.ticks,
            "rules": rules,
            "firing": sorted(
                r["name"] for r in rules if r["state"] == "firing"
            ),
        }

    def status(self) -> dict:
        """The `/stats` telemetry block."""
        counts = {state: 0 for state in ALERT_STATES}
        for status in self._alert_status.values():
            counts[status.state] += 1
        return {
            "ticks": self.ticks,
            "last_tick_at": self.last_tick_at,
            "interval_s": self.interval_s,
            "series": len(self.store),
            "alert_rules": len(self.alert_rules),
            "recording_rules": len(self.recording_rules),
            "alerts": counts,
        }

    # -- wall-clock operation --------------------------------------------------

    def start(self) -> "TelemetryPipeline":
        """Tick from a daemon thread every ``interval_s`` (wall clock).

        Only for live serving; deterministic tests call :meth:`tick`."""
        if self._thread is not None:
            raise TelemetryError("telemetry pipeline already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - telemetry must not kill serving
                    pass

        self._thread = threading.Thread(
            target=loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "TelemetryPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- the fleet's slope verdict -------------------------------------------------


class SlopeVerdictSource:
    """Escalates the SLO verdict on a sustained positive p99 slope.

    The burn-rate verdict only trips once bad requests have *already*
    spent budget; the slope of the sampled end-to-end p99 moves first.
    :meth:`verdict` returns the SLO verdict unchanged whenever it is
    already burning; on an ``ok`` verdict it checks
    ``slope(p99, window_s)`` against ``slope_threshold`` and — after
    ``sustain`` consecutive breaching evaluations (hysteresis, one
    evaluation per autoscaler step) — escalates to ``slow_burn`` so the
    autoscaler grows *before* the budget burns.  Pure function of the
    sampled series and the call sequence: replaying the same trace gives
    identical verdicts (the acceptance test pins this).
    """

    def __init__(
        self,
        pipeline: TelemetryPipeline,
        series: str = f'{QUANTILE_SERIES}{{layer="e2e",quantile="p99"}}',
        window_s: float = 60.0,
        slope_threshold: float = 0.01,
        sustain: int = 3,
    ) -> None:
        if window_s <= 0:
            raise TelemetryError(f"window must be positive: {window_s}")
        if slope_threshold <= 0:
            raise TelemetryError(
                f"slope threshold must be positive: {slope_threshold}"
            )
        if sustain < 1:
            raise TelemetryError(f"sustain must be >= 1: {sustain}")
        parse_selector(series)
        self.pipeline = pipeline
        self.series = series
        self.window_s = float(window_s)
        self.slope_threshold = float(slope_threshold)
        self.sustain = int(sustain)
        self.streak = 0
        self.escalations = 0
        self.last_slope: float | None = None

    def verdict(self, slo_evaluation: dict) -> tuple[str, str]:
        """``(verdict, signal)`` for one autoscaler step."""
        base = slo_evaluation["verdict"]
        value = evaluate_expr(
            self.pipeline.store,
            f"slope({self.series}, {self.window_s})",
        )
        self.last_slope = value
        if value is not None and value > self.slope_threshold:
            self.streak += 1
        else:
            self.streak = 0
        if base != "ok":
            return base, "slo"
        if self.streak >= self.sustain:
            self.escalations += 1
            return (
                "slow_burn",
                f"p99_slope_s_per_s={value:.6g}>"
                f"{self.slope_threshold:g}x{self.streak}",
            )
        return base, "slo"

    def status(self) -> dict:
        return {
            "series": self.series,
            "window_s": self.window_s,
            "slope_threshold": self.slope_threshold,
            "sustain": self.sustain,
            "streak": self.streak,
            "escalations": self.escalations,
            "last_slope": self.last_slope,
        }
