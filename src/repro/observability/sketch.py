"""Streaming quantile sketches for tail-latency analytics.

Fixed-bucket histograms (:mod:`repro.observability.registry`) answer
"how many requests landed between 4 and 16 ms?" — good enough for
dashboards, but tail reporting (p99, p999) degenerates into bucket
interpolation: the answer is whatever bound the bucket grid happened to
place near the tail.  :class:`QuantileSketch` replaces that guess with a
mergeable, bounded-memory summary whose quantile estimates carry a
*self-certified* rank-error bound.

The structure is a deterministic KLL-style compactor: level ``l`` holds
raw values of weight ``2**l`` in a bounded buffer; a full buffer is
sorted and every other element promoted to the next level with doubled
weight (the surviving offset alternates per compaction, so the
systematic rank bias cancels).  Each compaction of level ``l`` moves any
query's estimated rank by at most ``2**l``, and the sketch accumulates
exactly that into :meth:`rank_error`: the reported quantiles are
guaranteed within ``rank_error`` ranks of the truth, and the property
tests assert against the sketch's own certificate rather than a folklore
constant.  Until the first compaction the sketch is exact.

Merging two sketches concatenates buffers level-by-level and recompacts;
the error certificates add.  That makes per-shard sketches cheap to keep
and fold into a pool-wide tail view on demand.

:class:`LatencyAnalytics` is the serving-layer convenience: one named
sketch per pipeline layer (queue wait, service, end-to-end), thread-safe,
with a ``summary()`` rendering p50/p95/p99/p999 for ``/stats`` and the
``repro slo`` CLI.
"""

from __future__ import annotations

import math
import threading

from repro.errors import ObservabilityError

__all__ = ["LatencyAnalytics", "QuantileSketch", "TAIL_QUANTILES"]

#: The quantiles every summary reports, tail-first naming.
TAIL_QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99, "p999": 0.999}


class QuantileSketch:
    """A mergeable, bounded-memory quantile summary (see module doc).

    ``capacity`` bounds each level's buffer; total memory is
    ``O(capacity * log(n / capacity))`` values.  Estimates are exact while
    fewer than ``capacity`` values have been observed.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 8:
            raise ObservabilityError(
                f"sketch capacity must be at least 8: {capacity}"
            )
        self.capacity = int(capacity)
        self._levels: list[list[float]] = [[]]
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._alternate = 0
        self._rank_error = 0  # absolute ranks, certified upper bound
        self._lock = threading.Lock()

    # -- ingest ---------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Ingest one value (weight 1)."""
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError("cannot observe NaN")
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._levels[0].append(value)
            if len(self._levels[0]) > self.capacity:
                self._compact(0)

    def _compact(self, level: int) -> None:
        """Promote half of a full level, doubling weights (lock held).

        Sorted-alternate promotion keeps any rank estimate within
        ``2**level`` of its pre-compaction value; that bound is added to
        the error certificate.
        """
        buf = sorted(self._levels[level])
        kept: list[float] = []
        if len(buf) % 2:
            kept.append(buf.pop())  # odd one out stays at this level
        offset = self._alternate
        self._alternate ^= 1
        promoted = buf[offset::2]
        self._levels[level] = kept
        if level + 1 >= len(self._levels):
            self._levels.append([])
        self._levels[level + 1].extend(promoted)
        self._rank_error += 1 << level
        if len(self._levels[level + 1]) > self.capacity:
            self._compact(level + 1)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (returns ``self``).

        Equivalent — within the summed error certificates — to having
        ingested the concatenation of both observation streams.
        """
        if other is self:
            raise ObservabilityError("cannot merge a sketch with itself")
        with other._lock:
            other_levels = [list(buf) for buf in other._levels]
            other_stats = (
                other._count, other._sum, other._min, other._max,
                other._rank_error,
            )
        with self._lock:
            count, total, lo, hi, err = other_stats
            self._count += count
            self._sum += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)
            self._rank_error += err
            for level, buf in enumerate(other_levels):
                while level >= len(self._levels):
                    self._levels.append([])
                self._levels[level].extend(buf)
            for level in range(len(self._levels)):
                if len(self._levels[level]) > self.capacity:
                    self._compact(level)
        return self

    # -- queries --------------------------------------------------------------

    @property
    def count(self) -> int:
        """Values observed (merges included)."""
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    def rank_error(self) -> int:
        """Certified bound, in absolute ranks, on any quantile estimate.

        Zero while the sketch is still exact (no compaction has run);
        grows by ``2**level`` per level-``level`` compaction and by the
        other side's certificate on merge.
        """
        return self._rank_error

    def rank_error_fraction(self) -> float:
        """The certificate as a fraction of the observed count."""
        return self._rank_error / self._count if self._count else 0.0

    def _weighted(self) -> list[tuple[float, int]]:
        items: list[tuple[float, int]] = []
        for level, buf in enumerate(self._levels):
            weight = 1 << level
            items.extend((value, weight) for value in buf)
        items.sort(key=lambda pair: pair[0])
        return items

    def quantile(self, q: float) -> float:
        """The value whose rank is (approximately) ``q * count``.

        Returns an actually-observed value — never an interpolation — so
        quantiles are monotone in ``q`` and ``quantile(0)`` /
        ``quantile(1)`` are the exact min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            if q == 0.0:
                return self._min
            if q == 1.0:
                return self._max
            target = q * self._count
            cumulative = 0
            items = self._weighted()
            for value, weight in items:
                cumulative += weight
                if cumulative >= target:
                    return value
            return items[-1][0]

    def quantiles(
        self, named: dict[str, float] | None = None
    ) -> dict[str, float]:
        """A dict of named quantiles (defaults to :data:`TAIL_QUANTILES`)."""
        named = named or TAIL_QUANTILES
        return {name: self.quantile(q) for name, q in named.items()}

    def summary(self) -> dict:
        """JSON-able roll-up: count, mean, extremes, tail quantiles and
        the error certificate (so consumers can judge p999 credibility)."""
        out: dict = {
            "count": self._count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "rank_error": self._rank_error,
        }
        out.update(self.quantiles())
        return out


class LatencyAnalytics:
    """Named per-layer sketches: the serving stack's tail-latency ledger."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._sketches: dict[str, QuantileSketch] = {}
        self._lock = threading.Lock()

    def sketch(self, layer: str) -> QuantileSketch:
        """The sketch for one layer (created on first use)."""
        sketch = self._sketches.get(layer)
        if sketch is None:
            with self._lock:
                sketch = self._sketches.setdefault(
                    layer, QuantileSketch(self.capacity)
                )
        return sketch

    def observe(self, layer: str, seconds: float) -> None:
        """Record one latency sample against a layer."""
        self.sketch(layer).observe(seconds)

    def layers(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._sketches))

    def summary(self) -> dict:
        """``{layer: sketch summary}`` for ``/stats`` and the CLI."""
        return {layer: self.sketch(layer).summary() for layer in self.layers()}
