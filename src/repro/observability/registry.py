"""Process-wide metrics: labelled counters, gauges and histograms.

The simulator's runtime layers (executor, supervisor, campaign, resilience,
crossbar controller) emit into one :class:`MetricsRegistry` so a single
scrape answers "where did the cycles, energy, retries and wall-clock go?".
The design follows the Prometheus data model:

- a **family** is a named metric with a fixed label schema
  (``repro_executor_ops_total{workload, op}``); registration is idempotent,
  so instrumentation sites can declare their families at call time without
  coordinating module import order;
- a **child** is one labelled time series inside a family; children are
  cached by label values, so the hot-loop cost of an update is one dict
  lookup plus one float add;
- **histograms** use fixed buckets chosen at registration
  (:func:`exponential_buckets` for latency/energy, whose dynamic range
  spans many decades); observation is a bisect over the bound list.

The registry's clock is injectable (it stamps snapshots, see
:mod:`repro.observability.export`), so tests and the chaos harness run on
:class:`~repro.runtime.supervisor.ManualClock` time and stay deterministic.

A module-level default registry backs the zero-setup path: instrumentation
helpers write through :func:`active_registry`, which returns ``None`` while
observability is :func:`disable`-d — the overhead benchmark uses exactly
this switch to price the instrumentation layer.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from typing import Callable, Iterable

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "apply_counter_deltas",
    "counter_deltas",
    "default_registry",
    "disable",
    "enable",
    "enabled",
    "exponential_buckets",
    "set_default_registry",
    "snapshot_counters",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_ENERGY_BUCKETS",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def exponential_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    The standard shape for latency and energy distributions, whose
    interesting structure spans decades: ``exponential_buckets(1e-6, 4, 15)``
    covers one microsecond to about a quarter hour.
    """
    if start <= 0:
        raise ObservabilityError(f"bucket start must be positive: {start}")
    if factor <= 1:
        raise ObservabilityError(f"bucket factor must exceed 1: {factor}")
    if count < 1:
        raise ObservabilityError(f"need at least one bucket: {count}")
    return tuple(start * factor**i for i in range(count))


#: Simulated/wall latency bounds: 1 us .. ~17 min in x4 steps.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1e-6, 4.0, 15)
#: Energy bounds: 1 pJ .. ~10 J in x10 steps.
DEFAULT_ENERGY_BUCKETS = exponential_buckets(1e-12, 10.0, 14)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def _validate_labels(labelnames: Iterable[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ObservabilityError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {names}")
    return names


class _Family:
    """Shared machinery: a named metric plus its labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = _validate_labels(labelnames)
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels):
        """The child time series for these label values (created on first
        use, cached forever after — the hot path is one dict hit)."""
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"schema is {sorted(self.labelnames)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    @property
    def _default_child(self):
        """The single child of an unlabelled family."""
        if self.labelnames:
            raise ObservabilityError(
                f"{self.name} is labelled by {self.labelnames}; "
                f"use .labels(...)"
            )
        return self.labels()

    def samples(self) -> list[tuple[dict, object]]:
        """``(labels dict, child)`` pairs in insertion order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in sorted(self._children.items())
        ]

    def signature(self) -> tuple:
        """What must match for an idempotent re-registration."""
        return (self.kind, self.labelnames)


class _CounterChild:
    # Each child carries its own lock: ``value += amount`` is a
    # read-modify-write, and the serving pool's shards increment shared
    # families concurrently.  Uncontended acquisition is ~100 ns — noise
    # next to the pricing work being counted.
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters are monotonic; cannot add {amount}"
            )
        with self._lock:
            self.value += amount


class Counter(_Family):
    """A monotonically increasing sum (events, ops, cycles, joules)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series."""
        self._default_child.inc(amount)

    @property
    def value(self) -> float:
        """The unlabelled series' current total."""
        return self._default_child.value


class _GaugeChild:
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Gauge(_Family):
    """A value that goes both ways (breaker state, in-flight points)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child.dec(amount)

    @property
    def value(self) -> float:
        return self._default_child.value


class _HistogramChild:
    __slots__ = ("bounds", "counts", "sum", "exemplars", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        # bucket index -> (value, exemplar labels); latest wins.  Lazy so
        # untraced histograms pay nothing.
        self.exemplars: dict[int, tuple[float, dict]] | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError("cannot observe NaN")
        with self._lock:
            index = bisect_left(self.bounds, value)
            self.counts[index] += 1
            self.sum += value
            if exemplar:
                if self.exemplars is None:
                    self.exemplars = {}
                self.exemplars[index] = (value, dict(exemplar))

    @property
    def count(self) -> int:
        return sum(self.counts)

    def cumulative(self) -> list[int]:
        """Per-bound cumulative counts, Prometheus style (``le`` semantics),
        ending with the +Inf bucket equal to :attr:`count`."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


class Histogram(_Family):
    """A fixed-bucket distribution (``le`` upper-bound semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"{name}: need at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"{name}: bucket bounds must increase strictly: {bounds}"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise ObservabilityError(
                f"{name}: bounds must be finite (+Inf is implicit)"
            )
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        """Observe into the unlabelled series.

        ``exemplar`` — a small label dict, canonically
        ``{"trace_id": ...}`` — is attached to the bucket the value
        lands in (latest wins) and rendered in the exposition, linking
        the aggregate distribution back to a concrete traced request.
        """
        self._default_child.observe(value, exemplar)

    def signature(self) -> tuple:
        return (self.kind, self.labelnames, self.buckets)


class MetricsRegistry:
    """Owns metric families; one per process is the intended shape.

    ``clock`` stamps exported snapshots; inject a
    :class:`~repro.runtime.supervisor.ManualClock` for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is None:
                self._families[family.name] = family
                return family
        if existing.signature() != family.signature():
            raise ObservabilityError(
                f"{family.name} already registered with signature "
                f"{existing.signature()}, conflicting with "
                f"{family.signature()}"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        """Get-or-create a counter family (idempotent)."""
        return self._register(Counter(name, help, tuple(labelnames)))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        """Get-or-create a gauge family (idempotent)."""
        return self._register(Gauge(name, help, tuple(labelnames)))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get-or-create a histogram family (idempotent)."""
        return self._register(
            Histogram(name, help, tuple(labelnames), tuple(buckets))
        )

    def get(self, name: str) -> _Family | None:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def families(self) -> tuple[_Family, ...]:
        """All families, sorted by name (the exposition order)."""
        return tuple(
            self._families[name] for name in sorted(self._families)
        )

    def clear(self) -> None:
        """Drop every family and series (tests / fresh CLI runs)."""
        with self._lock:
            self._families.clear()


# --- the process-wide default -----------------------------------------------

_default = MetricsRegistry()
_enabled = True
_state_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumentation writes to by default."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _default
    with _state_lock:
        previous, _default = _default, registry
    return previous


def enable() -> None:
    """Turn instrumentation on (the default)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off: :func:`active_registry` returns ``None``
    and every helper in :mod:`repro.observability.instruments` becomes a
    no-op — this is the baseline arm of the overhead benchmark."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether instrumentation currently records anything."""
    return _enabled


def active_registry() -> MetricsRegistry | None:
    """The default registry, or ``None`` while observability is disabled."""
    return _default if _enabled else None


# --- cross-process counter forwarding ----------------------------------------
#
# Subprocess shard workers carry their own default registry; its counter
# increments would vanish with the process.  The worker snapshots its
# counters around each request, ships the per-series deltas in the result
# frame, and the supervisor folds them into the parent registry — one
# scrape still answers for the whole pool.  Only counters forward: gauges
# are point-in-time (the parent owns shard health), and histograms would
# need full bucket vectors for marginal value here.

def snapshot_counters(registry: MetricsRegistry) -> dict:
    """Counter series values keyed by ``(name, label-items tuple)``."""
    snapshot: dict = {}
    for family in registry.families():
        if family.kind != "counter":
            continue
        for labels, child in family.samples():
            snapshot[(family.name, tuple(labels.items()))] = child.value
    return snapshot


def counter_deltas(registry: MetricsRegistry, since: dict) -> list[dict]:
    """JSON-able counter increments since a :func:`snapshot_counters` call.

    Each entry is ``{"name", "help", "labels", "delta"}`` with ``labels``
    in the family's label-name order, so :func:`apply_counter_deltas` can
    re-register the family idempotently on the receiving side.
    """
    deltas: list[dict] = []
    for family in registry.families():
        if family.kind != "counter":
            continue
        for labels, child in family.samples():
            before = since.get((family.name, tuple(labels.items())), 0.0)
            delta = child.value - before
            if delta > 0:
                deltas.append(
                    {
                        "name": family.name,
                        "help": family.help,
                        "labels": labels,
                        "delta": delta,
                    }
                )
    return deltas


def apply_counter_deltas(
    registry: MetricsRegistry, deltas: list[dict]
) -> int:
    """Fold shipped counter deltas into ``registry``; returns how many
    entries were applied.  Malformed entries are skipped — the frames they
    ride in are data from another process, not trusted structure."""
    applied = 0
    for entry in deltas or ():
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        labels = entry.get("labels")
        delta = entry.get("delta")
        if (
            not isinstance(name, str)
            or not isinstance(labels, dict)
            or not isinstance(delta, (int, float))
            or delta < 0
        ):
            continue
        try:
            family = registry.counter(
                name, str(entry.get("help", "")), tuple(labels.keys())
            )
            if labels:
                family.labels(**labels).inc(delta)
            else:
                family.inc(delta)
        except ObservabilityError:
            continue  # schema clash with a local family: drop, don't crash
        applied += 1
    return applied
