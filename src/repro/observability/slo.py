"""Service-level objectives and multi-window burn-rate evaluation.

An :class:`SLOPolicy` states the objective — "requests complete OK within
``latency_target_s``, with at most ``error_budget`` of them allowed to
miss" — and :class:`BurnRateEvaluator` measures how fast the serving
stack is spending that budget.  The burn rate over a window is::

    burn = (bad fraction in window) / error_budget

so burn 1.0 exhausts the budget exactly at the SLO period's end, and
burn 14.4 (the classic fast-burn threshold) exhausts a 30-day budget in
about two days.  Verdicts use the standard two-window rule: an alert
fires only when *both* the short and the long window exceed a threshold
— the long window proves the problem is real, the short window proves it
is still happening — which keeps a recovered incident from paging for an
hour after it ended.

The evaluator runs on an injectable clock, so tests drive it with
:class:`~repro.runtime.supervisor.ManualClock` and assert the exact tick
where ``healthz`` flips to 503.  :func:`evaluate_points` applies the same
policy offline to a campaign grid, making ``repro slo`` useful against a
checkpoint file as well as a live pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import SLOError

__all__ = [
    "BurnRateEvaluator",
    "SLOPolicy",
    "evaluate_points",
]

#: Statuses that count as meeting the objective (degraded service is
#: still service; the latency gate is applied separately).
GOOD_STATUSES = frozenset({"ok", "retried", "degraded"})


@dataclass(frozen=True)
class SLOPolicy:
    """The objective: a latency target and an error budget.

    ``fast_burn`` / ``slow_burn`` are the burn-rate thresholds for the
    two alerting severities (defaults follow SRE-workbook convention:
    14.4x spends a 30-day budget in ~2 days, 3x in ~10 days).
    ``min_events`` is the traffic floor below which no verdict fires:
    with a handful of requests in the window, one unlucky outcome is a
    100% bad fraction, and an alert on that is noise, not signal.
    """

    latency_target_s: float = 2.0
    error_budget: float = 0.01
    fast_burn: float = 14.4
    slow_burn: float = 3.0
    short_window_s: float = 300.0   # 5 m
    long_window_s: float = 3600.0   # 1 h
    min_events: int = 10

    def __post_init__(self) -> None:
        if self.min_events < 1:
            raise SLOError(
                f"min_events must be at least 1: {self.min_events}"
            )
        if self.latency_target_s <= 0:
            raise SLOError(
                f"latency target must be positive: {self.latency_target_s}"
            )
        if not 0 < self.error_budget < 1:
            raise SLOError(
                f"error budget must be in (0, 1): {self.error_budget}"
            )
        if self.fast_burn <= self.slow_burn:
            raise SLOError(
                "fast-burn threshold must exceed slow-burn: "
                f"{self.fast_burn} <= {self.slow_burn}"
            )
        if self.slow_burn <= 0:
            raise SLOError(f"slow-burn must be positive: {self.slow_burn}")
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise SLOError("windows must be positive")
        if self.short_window_s >= self.long_window_s:
            raise SLOError(
                "short window must be shorter than long window: "
                f"{self.short_window_s} >= {self.long_window_s}"
            )

    def is_good(self, latency_s: float, ok: bool) -> bool:
        """Whether one request met the objective."""
        return ok and latency_s <= self.latency_target_s

    def to_dict(self) -> dict:
        return {
            "latency_target_s": self.latency_target_s,
            "error_budget": self.error_budget,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "min_events": self.min_events,
        }


class BurnRateEvaluator:
    """Sliding-window burn-rate tracker on an injectable clock.

    Events are ``(timestamp, good)`` pairs in a deque; anything older
    than the long window is pruned on record and on evaluation, so the
    memory footprint is bounded by the long window's traffic.
    """

    def __init__(
        self,
        policy: SLOPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or SLOPolicy()
        self.clock = clock
        self._events: "deque[tuple[float, bool]]" = deque()
        self._lock = threading.Lock()
        self.total = 0
        self.total_bad = 0

    def record(self, latency_s: float, ok: bool = True) -> bool:
        """Record one request; returns whether it met the objective."""
        good = self.policy.is_good(latency_s, ok)
        now = self.clock()
        with self._lock:
            self._events.append((now, good))
            self.total += 1
            if not good:
                self.total_bad += 1
            self._prune(now)
        return good

    def record_outcome(self, good: bool) -> None:
        """Record a pre-judged outcome (tests, offline replay)."""
        now = self.clock()
        with self._lock:
            self._events.append((now, bool(good)))
            self.total += 1
            if not good:
                self.total_bad += 1
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.policy.long_window_s
        events = self._events
        while events and events[0][0] < horizon:
            events.popleft()

    def _window_stats(self, now: float, window_s: float) -> tuple[int, int]:
        start = now - window_s
        count = bad = 0
        for ts, good in self._events:
            if ts >= start:
                count += 1
                if not good:
                    bad += 1
        return count, bad

    def burn_rate(self, window_s: float) -> float:
        """Bad-fraction over the window divided by the error budget.

        Zero when the window holds no events (no traffic is not an
        outage — the absence of data should not page anyone).
        """
        now = self.clock()
        with self._lock:
            self._prune(now)
            count, bad = self._window_stats(now, window_s)
        if count == 0:
            return 0.0
        return (bad / count) / self.policy.error_budget

    def evaluate(self) -> dict:
        """Burn rates over both windows plus the two-window verdict.

        ``verdict`` is ``"fast_burn"`` when both windows exceed the
        fast threshold, ``"slow_burn"`` when both exceed the slow one,
        else ``"ok"``.
        """
        now = self.clock()
        with self._lock:
            self._prune(now)
            short_n, short_bad = self._window_stats(
                now, self.policy.short_window_s
            )
            long_n, long_bad = self._window_stats(
                now, self.policy.long_window_s
            )
        budget = self.policy.error_budget
        short_burn = (short_bad / short_n) / budget if short_n else 0.0
        long_burn = (long_bad / long_n) / budget if long_n else 0.0
        if short_n < self.policy.min_events:
            verdict = "ok"  # below the traffic floor: no verdict fires
        elif (
            short_burn >= self.policy.fast_burn
            and long_burn >= self.policy.fast_burn
        ):
            verdict = "fast_burn"
        elif (
            short_burn >= self.policy.slow_burn
            and long_burn >= self.policy.slow_burn
        ):
            verdict = "slow_burn"
        else:
            verdict = "ok"
        return {
            "verdict": verdict,
            "short_window_s": self.policy.short_window_s,
            "long_window_s": self.policy.long_window_s,
            "short_burn": short_burn,
            "long_burn": long_burn,
            "short_events": short_n,
            "short_bad": short_bad,
            "long_events": long_n,
            "long_bad": long_bad,
            "total": self.total,
            "total_bad": self.total_bad,
            "policy": self.policy.to_dict(),
        }

    def healthy(self) -> bool:
        """False exactly when the verdict is fast-burn — the signal
        ``healthz`` turns into a 503."""
        return self.evaluate()["verdict"] != "fast_burn"


def evaluate_points(
    points: Iterable[dict], policy: SLOPolicy | None = None
) -> dict:
    """Apply an SLO to a campaign grid offline.

    Each point is judged good when its status is one of
    :data:`GOOD_STATUSES` *and* its simulated APIM latency
    (``apim_time_s``) meets the policy's latency target.  Returns the
    aggregate bad-fraction, the overall burn rate and a breakdown by
    failure reason — the ``repro slo`` view over a checkpoint or
    campaign output.
    """
    policy = policy or SLOPolicy()
    total = bad = 0
    by_reason: dict[str, int] = {}
    for point in points:
        total += 1
        status = str(point.get("status", "ok"))
        latency = float(point.get("apim_time_s", 0.0))
        if status not in GOOD_STATUSES:
            bad += 1
            by_reason[f"status:{status}"] = (
                by_reason.get(f"status:{status}", 0) + 1
            )
        elif latency > policy.latency_target_s:
            bad += 1
            by_reason["latency"] = by_reason.get("latency", 0) + 1
    if total == 0:
        raise SLOError("cannot evaluate an empty point set")
    bad_fraction = bad / total
    burn = bad_fraction / policy.error_budget
    if burn >= policy.fast_burn:
        verdict = "fast_burn"
    elif burn >= policy.slow_burn:
        verdict = "slow_burn"
    else:
        verdict = "ok"
    return {
        "verdict": verdict,
        "total": total,
        "bad": bad,
        "bad_fraction": bad_fraction,
        "burn_rate": burn,
        "by_reason": dict(sorted(by_reason.items())),
        "policy": policy.to_dict(),
    }
