"""Domain instrumentation: the metric families the runtime layers emit.

Every hot layer of the stack calls one small helper here instead of
touching the registry directly, which buys three things: the metric
*names* live in one place (the naming conventions are documented in
``docs/observability.md``), the per-call cost is a cached attribute lookup
plus a counter add, and disabling observability turns every helper into an
early-return — the property the overhead benchmark certifies.

Family handles are built once per registry and cached on it, so swapping
the default registry (tests, per-CLI-run isolation) transparently re-binds
all instrumentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observability.registry import (
    DEFAULT_ENERGY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    active_registry,
)

if TYPE_CHECKING:
    from repro.runtime.executor import ExecutionResult

__all__ = [
    "record_backoff",
    "record_bist_scan",
    "record_breaker_transition",
    "record_campaign_point",
    "record_checkpoint_append",
    "record_checkpoint_recovery",
    "record_controller_command",
    "record_execution",
    "record_admission",
    "record_fleet_decision",
    "record_fleet_scale_event",
    "record_fleet_shed",
    "set_fleet_shards",
    "record_batch",
    "record_idempotency",
    "record_journal_append",
    "record_journal_recovery",
    "record_result_eviction",
    "record_queue_wait",
    "record_reroute",
    "record_request_duration",
    "record_residue_mismatch",
    "record_search_recall",
    "record_search_request",
    "record_search_topk",
    "record_resilience_degraded",
    "record_resilience_repair",
    "record_resilience_retry",
    "record_served",
    "record_shard_health",
    "record_supervision_event",
    "record_telemetry_tick",
    "record_worker_death",
    "record_worker_redrive",
    "record_worker_respawn",
    "record_worker_spawn",
    "sample_process_resources",
    "set_build_info",
    "set_codebook_size",
    "set_queue_depth",
    "set_telemetry_alert_states",
]

#: Rows a command activates (read or write wordline pulses), per opcode.
#: MAJ drives three wordlines together and writes one back; CPY reads the
#: source row and writes the destination; NOR/INIT/TICK act on cells or
#: the clock, not whole rows.
_ROW_ACTIVATIONS = {
    "WR": 1, "RD": 1, "CLR": 1, "CPY": 2, "MAJ": 4, "RETIRE": 2,
}


class _Instruments:
    """All family handles, resolved once against one registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        # -- executor --------------------------------------------------------
        self.executor_runs = registry.counter(
            "repro_executor_runs_total",
            "Workload executions finished, by terminal status.",
            ("workload", "status"),
        )
        self.executor_ops = registry.counter(
            "repro_executor_ops_total",
            "Arithmetic operations executed on the APIM engine.",
            ("workload", "op"),
        )
        self.executor_cycles = registry.counter(
            "repro_executor_cycles_total",
            "Simulated lane-cycles consumed by workload executions.",
            ("workload",),
        )
        self.executor_energy = registry.counter(
            "repro_executor_energy_joules_total",
            "Simulated energy consumed by workload executions.",
            ("workload",),
        )
        self.executor_faults = registry.counter(
            "repro_executor_faults_total",
            "Fault-handling activity surfaced by executions.",
            ("workload", "kind"),
        )
        self.executor_latency = registry.histogram(
            "repro_executor_time_seconds",
            "Simulated tile latency per execution.",
            ("workload",),
            DEFAULT_LATENCY_BUCKETS,
        )
        self.executor_energy_hist = registry.histogram(
            "repro_executor_energy_joules",
            "Simulated tile energy per execution.",
            ("workload",),
            DEFAULT_ENERGY_BUCKETS,
        )
        # -- supervisor ------------------------------------------------------
        self.supervisor_events = registry.counter(
            "repro_supervisor_events_total",
            "Supervision lifecycle events (attempt/retry/success/failure).",
            ("kind",),
        )
        self.supervisor_retries = registry.counter(
            "repro_supervisor_retries_total",
            "Supervised attempts that were retried after a retryable error.",
        )
        self.supervisor_backoff = registry.histogram(
            "repro_supervisor_backoff_seconds",
            "Backoff delays slept between supervised attempts.",
            (),
            DEFAULT_LATENCY_BUCKETS,
        )
        self.breaker_transitions = registry.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions.",
            ("state",),
        )
        # -- campaign / checkpoint -------------------------------------------
        self.campaign_points = registry.counter(
            "repro_campaign_points_total",
            "Campaign grid points finished, by terminal status.",
            ("status",),
        )
        self.campaign_resumed = registry.counter(
            "repro_campaign_points_resumed_total",
            "Grid points skipped because the journal proved them complete.",
        )
        self.checkpoint_appends = registry.counter(
            "repro_checkpoint_appends_total",
            "Records appended to the write-ahead journal, by type.",
            ("type",),
        )
        self.checkpoint_fsyncs = registry.counter(
            "repro_checkpoint_fsyncs_total",
            "Journal fsync barriers paid (one per append).",
        )
        self.checkpoint_recovered = registry.counter(
            "repro_checkpoint_recovered_total",
            "Torn-tail records dropped while recovering a journal.",
        )
        # -- resilience ------------------------------------------------------
        self.bist_scans = registry.counter(
            "repro_resilience_bist_scans_total",
            "March-test BIST scans executed.",
        )
        self.stuck_cells = registry.counter(
            "repro_resilience_stuck_cells_total",
            "Stuck cells condemned by BIST scans.",
        )
        self.residue_mismatches = registry.counter(
            "repro_resilience_residue_mismatches_total",
            "Elements flagged by the online mod-3 residue check.",
        )
        self.resilience_repairs = registry.counter(
            "repro_resilience_repairs_total",
            "Rows moved off faulty cells, by mechanism.",
            ("mechanism",),
        )
        self.resilience_retries = registry.counter(
            "repro_resilience_retries_total",
            "Element re-execution rounds run by the resilience loop.",
        )
        self.resilience_degraded = registry.counter(
            "repro_resilience_degraded_total",
            "Elements kept corrupted after the repair budget ran out.",
        )
        # -- serving ---------------------------------------------------------
        self.serving_admission = registry.counter(
            "repro_serving_admission_total",
            "Admission-control outcomes (admitted / rejected_*).",
            ("outcome",),
        )
        self.serving_queue_depth = registry.gauge(
            "repro_serving_queue_depth",
            "Requests currently queued, per priority class.",
            ("priority",),
        )
        self.serving_queue_wait = registry.histogram(
            "repro_serving_queue_wait_seconds",
            "Wall-clock wait between admission and dispatch.",
            (),
            DEFAULT_LATENCY_BUCKETS,
        )
        self.serving_batch_size = registry.histogram(
            "repro_serving_batch_size",
            "Coalesced batch sizes dispatched to shards.",
            (),
            (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        self.serving_requests = registry.counter(
            "repro_serving_requests_total",
            "Requests finished by the pool, by tenant and terminal status.",
            ("tenant", "status"),
        )
        self.serving_shard_requests = registry.counter(
            "repro_serving_shard_requests_total",
            "Requests executed per shard, by terminal status.",
            ("shard", "status"),
        )
        self.serving_shard_busy = registry.counter(
            "repro_serving_shard_busy_seconds_total",
            "Wall-clock seconds each shard spent executing requests.",
            ("shard",),
        )
        self.serving_shard_health = registry.gauge(
            "repro_serving_shard_healthy",
            "1 while the shard's breaker admits traffic, 0 while open.",
            ("shard",),
        )
        self.serving_reroutes = registry.counter(
            "repro_serving_reroutes_total",
            "Requests pushed back to the queue off an unhealthy shard.",
        )
        self.worker_spawns = registry.counter(
            "repro_serving_worker_spawns_total",
            "Shard worker processes spawned (initial starts and respawns).",
            ("shard",),
        )
        self.worker_deaths = registry.counter(
            "repro_serving_worker_deaths_total",
            "Shard worker processes that died, by detected reason.",
            ("shard", "reason"),
        )
        self.worker_respawns = registry.counter(
            "repro_serving_worker_respawns_total",
            "Shard worker processes restarted after a death.",
            ("shard",),
        )
        self.worker_redrives = registry.counter(
            "repro_serving_worker_redrives_total",
            "In-flight requests re-driven after their worker died.",
            ("shard",),
        )
        self.journal_appends = registry.counter(
            "repro_serving_journal_appends_total",
            "Records appended to the serving request journal, by type.",
            ("type",),
        )
        self.journal_recovered = registry.counter(
            "repro_serving_journal_recovered_total",
            "Journal recovery outcomes at startup: completed results "
            "restored, in-flight requests replayed, torn records dropped, "
            "duplicate terminal records skipped.",
            ("kind",),
        )
        self.idempotency_outcomes = registry.counter(
            "repro_serving_idempotency_total",
            "Idempotency-key submission outcomes (hit / conflict).",
            ("outcome",),
        )
        self.result_evictions = registry.counter(
            "repro_serving_result_evictions_total",
            "Results evicted from the ResultStore, by reason.",
            ("reason",),
        )
        # -- fleet control plane ---------------------------------------------
        self.fleet_shards = registry.gauge(
            "repro_fleet_shards",
            "Shards currently serving traffic in the pool.",
        )
        self.fleet_scale_events = registry.counter(
            "repro_fleet_scale_events_total",
            "Live-resize decisions executed, by direction (grow/shrink).",
            ("direction",),
        )
        self.fleet_shed_tenants = registry.counter(
            "repro_fleet_shed_tenants_total",
            "Tenants shed under fast burn (lowest priority first).",
        )
        self.fleet_decision_seconds = registry.histogram(
            "repro_fleet_decision_seconds",
            "Wall-clock cost of one autoscaler decision (evaluate + act).",
            (),
            DEFAULT_LATENCY_BUCKETS,
        )
        # -- similarity search -----------------------------------------------
        self.search_requests = registry.counter(
            "repro_search_requests_total",
            "`/search` retrievals executed, by terminal status.",
            ("status",),
        )
        self.search_codebook_entries = registry.gauge(
            "repro_search_codebook_entries",
            "Codewords resident in the serving search index.",
        )
        self.search_topk = registry.histogram(
            "repro_search_topk_seconds",
            "Top-k evaluation latency (distance sweep + ranked reduce).",
            (),
            DEFAULT_LATENCY_BUCKETS,
        )
        self.search_recall = registry.gauge(
            "repro_search_recall",
            "Most recent recall@k measured against the exact ranking, by "
            "relax rung.",
            ("relax_bits",),
        )
        self.request_duration = registry.histogram(
            "repro_request_duration_seconds",
            "End-to-end request latency (admission to completion); buckets "
            "carry trace-id exemplars.",
            (),
            DEFAULT_LATENCY_BUCKETS,
        )
        self.build_info = registry.gauge(
            "repro_build_info",
            "Constant 1; labels identify the build serving this scrape.",
            ("version", "python", "config_hash"),
        )
        # -- process health ---------------------------------------------------
        self.process_rss = registry.gauge(
            "repro_process_rss_bytes",
            "Resident set size of this process.",
        )
        self.process_cpu_user = registry.gauge(
            "repro_process_cpu_user_seconds",
            "User-mode CPU seconds consumed by this process.",
        )
        self.process_cpu_system = registry.gauge(
            "repro_process_cpu_system_seconds",
            "Kernel-mode CPU seconds consumed by this process.",
        )
        self.process_threads = registry.gauge(
            "repro_process_threads",
            "Live Python threads in this process.",
        )
        self.process_open_fds = registry.gauge(
            "repro_process_open_fds",
            "File descriptors currently open in this process.",
        )
        # -- telemetry pipeline (self-observation) -----------------------------
        self.telemetry_samples = registry.counter(
            "repro_telemetry_samples_total",
            "Samples ingested into the telemetry time-series store.",
        )
        self.telemetry_alerts = registry.gauge(
            "repro_telemetry_alerts",
            "Alert rules currently in each state "
            "(inactive/pending/firing/resolved).",
            ("state",),
        )
        self.telemetry_eval = registry.histogram(
            "repro_telemetry_eval_seconds",
            "Wall-clock cost of one telemetry tick (sampling + rules).",
            (),
            DEFAULT_LATENCY_BUCKETS,
        )
        # -- crossbar controller ---------------------------------------------
        self.controller_commands = registry.counter(
            "repro_controller_commands_total",
            "Controller commands executed, by opcode.",
            ("opcode",),
        )
        self.controller_magic_ops = registry.counter(
            "repro_controller_magic_ops_total",
            "MAGIC NOR evaluations issued through the controller.",
        )
        self.controller_row_activations = registry.counter(
            "repro_controller_row_activations_total",
            "Wordline activations driven by controller commands.",
        )


def _instruments() -> _Instruments | None:
    registry = active_registry()
    if registry is None:
        return None
    cached = getattr(registry, "_repro_instruments", None)
    if cached is None:
        cached = _Instruments(registry)
        registry._repro_instruments = cached
    return cached


# -- executor -----------------------------------------------------------------


def record_execution(result: "ExecutionResult") -> None:
    """Roll one :class:`~repro.runtime.executor.ExecutionResult` into the
    executor families (ops, cycles, energy, faults, latency/energy
    distributions)."""
    inst = _instruments()
    if inst is None:
        return
    w = result.workload
    inst.executor_runs.labels(workload=w, status=result.status).inc()
    inst.executor_ops.labels(workload=w, op="mul").inc(result.mul_count)
    inst.executor_ops.labels(workload=w, op="add").inc(result.add_count)
    inst.executor_cycles.labels(workload=w).inc(result.cost.cycles)
    inst.executor_energy.labels(workload=w).inc(result.energy)
    inst.executor_latency.labels(workload=w).observe(result.time)
    inst.executor_energy_hist.labels(workload=w).observe(result.energy)
    for kind, count in (
        ("detected", result.faults_detected),
        ("repaired", result.repairs),
        ("retried", result.retries),
    ):
        if count:
            inst.executor_faults.labels(workload=w, kind=kind).inc(count)


# -- supervisor ---------------------------------------------------------------


def record_supervision_event(kind: str) -> None:
    """Count one supervision lifecycle event.

    ``attempt`` also materialises the retry counter at zero, so a scrape of
    a perfectly healthy run still exposes ``repro_supervisor_retries_total``
    (dashboards need the series to exist before it is interesting)."""
    inst = _instruments()
    if inst is None:
        return
    inst.supervisor_events.labels(kind=kind).inc()
    if kind == "attempt":
        inst.supervisor_retries.inc(0)
    elif kind == "retry":
        inst.supervisor_retries.inc()


def record_backoff(delay_s: float) -> None:
    """Observe one backoff sleep into the delay distribution."""
    inst = _instruments()
    if inst is not None:
        inst.supervisor_backoff.observe(delay_s)


def record_breaker_transition(state: str) -> None:
    """Count a breaker transition (``open``/``half_open``/``closed``)."""
    inst = _instruments()
    if inst is not None:
        inst.breaker_transitions.labels(state=state).inc()


# -- campaign / checkpoint ----------------------------------------------------


def record_campaign_point(status: str, resumed: bool = False) -> None:
    """Count one terminal grid point (``resumed=True`` for journal skips)."""
    inst = _instruments()
    if inst is None:
        return
    inst.campaign_points.labels(status=status).inc()
    if resumed:
        inst.campaign_resumed.inc()


def record_checkpoint_append(record_type: str) -> None:
    """Count one journal append and its fsync barrier."""
    inst = _instruments()
    if inst is None:
        return
    inst.checkpoint_appends.labels(type=record_type).inc()
    inst.checkpoint_fsyncs.inc()


def record_checkpoint_recovery(dropped: int) -> None:
    """Count torn-tail records dropped by journal recovery."""
    inst = _instruments()
    if inst is not None and dropped:
        inst.checkpoint_recovered.inc(dropped)


# -- resilience ---------------------------------------------------------------


def record_bist_scan(stuck_cells: int) -> None:
    """Count one BIST scan and the stuck cells it condemned."""
    inst = _instruments()
    if inst is None:
        return
    inst.bist_scans.inc()
    if stuck_cells:
        inst.stuck_cells.inc(stuck_cells)


def record_residue_mismatch(elements: int) -> None:
    """Count elements flagged by the online residue check."""
    inst = _instruments()
    if inst is not None and elements:
        inst.residue_mismatches.inc(elements)


def record_resilience_repair(mechanism: str) -> None:
    """Count one row replacement (``spare`` or ``relocate``)."""
    inst = _instruments()
    if inst is not None:
        inst.resilience_repairs.labels(mechanism=mechanism).inc()


def record_resilience_retry(elements: int) -> None:
    """Count one re-execution round covering ``elements`` elements."""
    inst = _instruments()
    if inst is not None:
        inst.resilience_retries.inc()


def record_resilience_degraded(elements: int) -> None:
    """Count elements surrendered to corruption by policy."""
    inst = _instruments()
    if inst is not None and elements:
        inst.resilience_degraded.inc(elements)


# -- serving ------------------------------------------------------------------


def record_admission(outcome: str) -> None:
    """Count one admission decision (``admitted`` / ``rejected_*``)."""
    inst = _instruments()
    if inst is not None:
        inst.serving_admission.labels(outcome=outcome).inc()


def set_queue_depth(priority: int, depth: int) -> None:
    """Publish one priority class's current queue depth."""
    inst = _instruments()
    if inst is not None:
        inst.serving_queue_depth.labels(priority=priority).set(depth)


def record_queue_wait(seconds: float) -> None:
    """Observe one request's admission-to-dispatch wait."""
    inst = _instruments()
    if inst is not None:
        inst.serving_queue_wait.observe(seconds)


def record_batch(size: int) -> None:
    """Observe one dispatched batch's size."""
    inst = _instruments()
    if inst is not None:
        inst.serving_batch_size.observe(size)


def record_served(
    shard: int, tenant: str, status: str, busy_s: float
) -> None:
    """Roll one finished request into the tenant and shard families."""
    inst = _instruments()
    if inst is None:
        return
    inst.serving_requests.labels(tenant=tenant, status=status).inc()
    inst.serving_shard_requests.labels(shard=shard, status=status).inc()
    inst.serving_shard_busy.labels(shard=shard).inc(max(0.0, busy_s))


def record_shard_health(shard: int, healthy: bool) -> None:
    """Publish one shard's breaker state (1 healthy, 0 open)."""
    inst = _instruments()
    if inst is not None:
        inst.serving_shard_health.labels(shard=shard).set(1 if healthy else 0)


def record_reroute(requests: int) -> None:
    """Count requests pushed back to the queue off a sick shard."""
    inst = _instruments()
    if inst is not None and requests:
        inst.serving_reroutes.inc(requests)


def record_worker_spawn(shard: int) -> None:
    """Count one shard worker process spawn."""
    inst = _instruments()
    if inst is not None:
        inst.worker_spawns.labels(shard=shard).inc()


def record_worker_death(shard: int, reason: str = "crashed") -> None:
    """Count one shard worker death (``crashed``/``hang``/``protocol``)."""
    inst = _instruments()
    if inst is not None:
        inst.worker_deaths.labels(shard=shard, reason=reason).inc()


def record_worker_respawn(shard: int) -> None:
    """Count one worker restart after a death."""
    inst = _instruments()
    if inst is not None:
        inst.worker_respawns.labels(shard=shard).inc()


def record_worker_redrive(shard: int) -> None:
    """Count one in-flight request re-driven after its worker died."""
    inst = _instruments()
    if inst is not None:
        inst.worker_redrives.labels(shard=shard).inc()


def record_journal_append(record_type: str) -> None:
    """Count one fsync'd append to the serving request journal."""
    inst = _instruments()
    if inst is not None:
        inst.journal_appends.labels(type=record_type).inc()


def record_journal_recovery(
    restored: int = 0,
    replayed: int = 0,
    truncated: int = 0,
    duplicates: int = 0,
) -> None:
    """Roll one journal recovery pass into the recovery family."""
    inst = _instruments()
    if inst is None:
        return
    for kind, count in (
        ("restored", restored),
        ("replayed", replayed),
        ("truncated", truncated),
        ("duplicate_completions", duplicates),
    ):
        if count:
            inst.journal_recovered.labels(kind=kind).inc(count)


def record_idempotency(outcome: str) -> None:
    """Count one idempotency-key outcome (``hit`` / ``conflict``)."""
    inst = _instruments()
    if inst is not None:
        inst.idempotency_outcomes.labels(outcome=outcome).inc()


def record_result_eviction(reason: str, count: int = 1) -> None:
    """Count results evicted from the store (``capacity`` / ``ttl``)."""
    inst = _instruments()
    if inst is not None and count:
        inst.result_evictions.labels(reason=reason).inc(count)


# -- fleet control plane ------------------------------------------------------


def set_fleet_shards(count: int) -> None:
    """Publish the pool's live shard count."""
    inst = _instruments()
    if inst is not None:
        inst.fleet_shards.set(float(count))


def record_fleet_scale_event(direction: str) -> None:
    """Count one executed resize (``grow`` or ``shrink``)."""
    inst = _instruments()
    if inst is not None:
        inst.fleet_scale_events.labels(direction=direction).inc()


def record_fleet_shed(tenants: int = 1) -> None:
    """Count tenants shed under fast burn."""
    inst = _instruments()
    if inst is not None and tenants:
        inst.fleet_shed_tenants.inc(tenants)


def record_fleet_decision(seconds: float) -> None:
    """Observe the wall-clock cost of one autoscaler decision."""
    inst = _instruments()
    if inst is not None:
        inst.fleet_decision_seconds.observe(seconds)


# -- similarity search --------------------------------------------------------


def record_search_request(status: str) -> None:
    """Count one `/search` retrieval by terminal status."""
    inst = _instruments()
    if inst is not None:
        inst.search_requests.labels(status=status).inc()


def set_codebook_size(entries: int) -> None:
    """Publish the resident codebook size of the serving search index."""
    inst = _instruments()
    if inst is not None:
        inst.search_codebook_entries.set(float(entries))


def record_search_topk(seconds: float) -> None:
    """Observe one top-k evaluation latency."""
    inst = _instruments()
    if inst is not None:
        inst.search_topk.observe(seconds)


def record_search_recall(relax_bits: int, recall: float) -> None:
    """Publish a measured recall@k for one relax rung."""
    inst = _instruments()
    if inst is not None:
        inst.search_recall.labels(relax_bits=relax_bits).set(float(recall))


def record_request_duration(seconds: float, trace_id: str | None = None) -> None:
    """Observe one end-to-end request latency; ``trace_id`` becomes the
    bucket's exemplar, linking the aggregate histogram back to a concrete
    ``GET /trace/<id>`` timeline."""
    inst = _instruments()
    if inst is None:
        return
    exemplar = {"trace_id": trace_id} if trace_id else None
    inst.request_duration.observe(seconds, exemplar)


# -- process health / telemetry ------------------------------------------------


def process_resource_values() -> dict[str, float]:
    """Current process resource readings, psutil-free.

    RSS comes from ``/proc/self/statm`` (falling back to the *peak* RSS
    ``getrusage`` reports where /proc is absent), CPU seconds from
    ``getrusage``, open fds from ``/proc/self/fd`` when available.
    """
    import os
    import resource
    import threading

    usage = resource.getrusage(resource.RUSAGE_SELF)
    values = {
        "repro_process_cpu_user_seconds": float(usage.ru_utime),
        "repro_process_cpu_system_seconds": float(usage.ru_stime),
        "repro_process_threads": float(threading.active_count()),
    }
    try:
        with open("/proc/self/statm", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        values["repro_process_rss_bytes"] = float(
            pages * os.sysconf("SC_PAGESIZE")
        )
    except (OSError, ValueError, IndexError):
        # ru_maxrss is kilobytes on Linux: the high-water mark, not the
        # current level — still the right order of magnitude for health.
        values["repro_process_rss_bytes"] = float(usage.ru_maxrss * 1024)
    try:
        values["repro_process_open_fds"] = float(
            len(os.listdir("/proc/self/fd"))
        )
    except OSError:  # pragma: no cover - /proc-less platforms
        pass
    return values


def sample_process_resources() -> dict[str, float]:
    """Read the process resources, publish the ``repro_process_*`` gauges,
    and return the readings (the telemetry pipeline stores them)."""
    values = process_resource_values()
    inst = _instruments()
    if inst is not None:
        inst.process_cpu_user.set(values["repro_process_cpu_user_seconds"])
        inst.process_cpu_system.set(
            values["repro_process_cpu_system_seconds"]
        )
        inst.process_threads.set(values["repro_process_threads"])
        inst.process_rss.set(values["repro_process_rss_bytes"])
        if "repro_process_open_fds" in values:
            inst.process_open_fds.set(values["repro_process_open_fds"])
    return values


def record_telemetry_tick(samples: int, eval_s: float) -> None:
    """Roll one telemetry tick into the self-observation families."""
    inst = _instruments()
    if inst is None:
        return
    inst.telemetry_samples.inc(max(0, samples))
    inst.telemetry_eval.observe(eval_s)


def set_telemetry_alert_states(counts: dict) -> None:
    """Publish how many alert rules sit in each state."""
    inst = _instruments()
    if inst is None:
        return
    for state, count in counts.items():
        inst.telemetry_alerts.labels(state=state).set(float(count))


# -- build info ---------------------------------------------------------------


def set_build_info(
    version: str | None = None,
    python: str | None = None,
    config_hash: str | None = None,
) -> None:
    """Publish the constant ``repro_build_info 1`` gauge.

    Defaults are resolved lazily (package version, interpreter version,
    a short hash of the default APIM config) so a scrape is attributable
    to the exact build that produced it.  Imports happen inside the
    function: ``repro/__init__`` imports the runtime which imports this
    module, so importing ``repro`` at module level would cycle.
    """
    inst = _instruments()
    if inst is None:
        return
    if version is None:
        from repro import __version__

        version = __version__
    if python is None:
        import platform

        python = platform.python_version()
    if config_hash is None:
        import hashlib

        from repro.core.config import default_config

        digest = hashlib.sha256(
            repr(default_config()).encode("utf-8")
        ).hexdigest()
        config_hash = digest[:12]
    inst.build_info.labels(
        version=version, python=python, config_hash=config_hash
    ).set(1)


# -- crossbar controller ------------------------------------------------------


def record_controller_command(opcode: str, cells: int = 0) -> None:
    """Count one controller command.

    ``cells`` is the cell count of NOR/INIT commands; a NOR command is one
    MAGIC evaluation regardless of fan-in, INITs pre-stage cells for free.
    """
    inst = _instruments()
    if inst is None:
        return
    inst.controller_commands.labels(opcode=opcode).inc()
    if opcode == "NOR":
        inst.controller_magic_ops.inc()
    rows = _ROW_ACTIVATIONS.get(opcode, 0)
    if rows:
        inst.controller_row_activations.inc(rows)
