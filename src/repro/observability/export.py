"""Metric exporters: Prometheus text exposition and JSONL snapshots.

Two consumers, two formats:

- :func:`to_prometheus` renders the registry in the Prometheus text
  exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one
  sample per line, histograms as cumulative ``_bucket{le=...}`` series
  plus ``_sum`` / ``_count``.  The output is byte-deterministic for a
  given registry state (families sorted by name, children by label
  values), which is what makes the golden-file test possible.
- :func:`snapshot` flattens the registry into plain JSON-able dicts, and
  :class:`JsonlSnapshotSink` appends one snapshot per line to a file — the
  fleet-telemetry shape: a long-running campaign drops periodic snapshots
  and a later analysis pass diffs adjacent lines for rates.

Timestamps come from the registry's injectable clock, so deterministic
tests produce deterministic snapshots.
"""

from __future__ import annotations

import json
import os

from repro.errors import ObservabilityError
from repro.observability.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["JsonlSnapshotSink", "snapshot", "to_prometheus"]


def _fmt(value: float) -> str:
    """Render a sample value: integral floats without the trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in merged.items()
    )
    return "{" + body + "}"


def _bound_text(bound: float) -> str:
    return _fmt(bound) if bound == int(bound) else f"{bound:g}"


def _exemplar_text(exemplar: tuple[float, dict] | None) -> str:
    """OpenMetrics-style exemplar suffix (``# {labels} value``); empty
    when the bucket holds none, so untraced output stays byte-identical
    to the pre-exemplar exposition."""
    if exemplar is None:
        return ""
    value, labels = exemplar
    return f" # {_labels_text(labels)} {_fmt(value)}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text exposition (0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for labels, child in family.samples():
                cumulative = child.cumulative()
                exemplars = child.exemplars or {}
                for index, (bound, count) in enumerate(
                    zip(family.buckets, cumulative)
                ):
                    le = _labels_text(labels, {"le": _bound_text(bound)})
                    lines.append(
                        f"{family.name}_bucket{le} {count}"
                        + _exemplar_text(exemplars.get(index))
                    )
                inf = _labels_text(labels, {"le": "+Inf"})
                lines.append(
                    f"{family.name}_bucket{inf} {cumulative[-1]}"
                    + _exemplar_text(exemplars.get(len(family.buckets)))
                )
                plain = _labels_text(labels)
                lines.append(f"{family.name}_sum{plain} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{plain} {child.count}")
        elif isinstance(family, (Counter, Gauge)):
            for labels, child in family.samples():
                lines.append(
                    f"{family.name}{_labels_text(labels)} "
                    f"{_fmt(child.value)}"
                )
        else:  # pragma: no cover - no other kinds exist
            raise ObservabilityError(f"unknown family kind {family.kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry) -> dict:
    """The registry as one JSON-able dict (see module docstring)."""
    metrics: dict[str, dict] = {}
    for family in registry.families():
        samples = []
        for labels, child in family.samples():
            if isinstance(family, Histogram):
                samples.append(
                    {
                        "labels": labels,
                        "buckets": list(family.buckets),
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "samples": samples,
        }
    return {"ts": registry.clock(), "metrics": metrics}


class JsonlSnapshotSink:
    """Appends registry snapshots to a JSONL file, one per :meth:`write`.

    The append-only shape mirrors the campaign checkpoint journal: crash
    mid-write and the worst case is one torn final line, which any tolerant
    JSONL reader skips.

    ``max_bytes`` bounds the file: once a write pushes it past the limit
    the file is rotated (``path`` → ``path.1`` → ... → ``path.<keep>``,
    oldest discarded) and a fresh ``path`` is opened — a long campaign's
    telemetry occupies at most ``(keep + 1) * max_bytes`` plus one
    snapshot of slack, because rotation happens *after* the write that
    crosses the boundary (a snapshot is never split across files).
    """

    def __init__(
        self,
        path: str,
        max_bytes: int | None = None,
        keep: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ObservabilityError(
                f"max_bytes must be positive: {max_bytes}"
            )
        if keep < 0:
            raise ObservabilityError(f"keep must be non-negative: {keep}")
        self.path = path
        self.max_bytes = max_bytes
        self.keep = keep
        self.rotations = 0
        self._handle = self._open()

    def _open(self):
        try:
            return open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot open snapshot sink {self.path!r}: {exc}"
            ) from exc

    def _rotate(self) -> None:
        self._handle.close()
        try:
            if self.keep == 0:
                os.remove(self.path)
            else:
                oldest = f"{self.path}.{self.keep}"
                if os.path.exists(oldest):
                    os.remove(oldest)
                for index in range(self.keep - 1, 0, -1):
                    src = f"{self.path}.{index}"
                    if os.path.exists(src):
                        os.replace(src, f"{self.path}.{index + 1}")
                os.replace(self.path, f"{self.path}.1")
        except OSError as exc:
            self._handle = None
            raise ObservabilityError(
                f"cannot rotate snapshot sink {self.path!r}: {exc}"
            ) from exc
        self.rotations += 1
        self._handle = self._open()

    def write(self, registry: MetricsRegistry, **extra) -> dict:
        """Append one snapshot (plus caller context fields); returns it."""
        record = snapshot(registry)
        record.update(extra)
        return self.write_record(record)

    def write_record(self, record: dict) -> dict:
        """Append one caller-built record through the same rotation.

        The telemetry pipeline exports its per-tick series tails this
        way: same file format (one JSON object per line), same bounded
        on-disk footprint, no second rotation implementation."""
        if self._handle is None:
            raise ObservabilityError(f"sink {self.path!r} is closed")
        self._handle.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._handle.flush()
        if (
            self.max_bytes is not None
            and self._handle.tell() >= self.max_bytes
        ):
            self._rotate()
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSnapshotSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
