"""End-to-end request tracing across the serving stack.

A request admitted through :meth:`repro.serving.pool.CrossbarPool.submit`
(or the HTTP frontend) gets a :class:`TraceContext` — a trace id, a span
id, and a baggage dict — and every layer it crosses appends structured
:class:`TraceEvent` records: queue enter/exit, batch coalescing links,
supervision attempts and retries, degradation rungs, executor runs,
controller command batches.  The result answers the question aggregate
metrics cannot: "why was *this* request slow / degraded / rerouted?"

Propagation is explicit at layer boundaries — the context rides on the
:class:`~repro.serving.scheduler.ServeRequest` and is handed to
:func:`~repro.runtime.campaign.run_point` — and ambient below them: deep
layers (supervisor, executor, controller) emit through
:func:`trace_event`, which resolves the thread's current context
installed by :func:`use_trace`.  A layer with no active trace pays one
thread-local attribute read and nothing else, which is what keeps the
tracing-enabled arm of ``bench_observability_overhead`` under its 5%
ceiling.

Storage is a bounded in-memory :class:`TraceStore` (LRU by admission
order) with optional JSONL spill: evicted traces are appended to a spill
file instead of vanishing, so long campaigns keep a durable record while
the process keeps a flat memory profile.  Each trace also bounds its own
event list — a pathological request cannot grow one trace without limit;
overflow is counted, not silently dropped.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import TracingError

__all__ = [
    "BufferedTraceContext",
    "TraceContext",
    "TraceEvent",
    "TraceRecord",
    "TraceStore",
    "current_trace",
    "default_trace_store",
    "format_timeline",
    "replay_events",
    "set_default_trace_store",
    "trace_event",
    "use_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured hop in a request's journey."""

    ts: float     #: store-clock timestamp (seconds)
    layer: str    #: frontend / scheduler / pool / supervisor / executor / ...
    kind: str     #: queue_enter, batch_join, attempt, retry, degrade, ...
    span_id: str  #: the span the event belongs to
    detail: str = ""
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "ts": self.ts,
            "layer": self.layer,
            "kind": self.kind,
            "span_id": self.span_id,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass
class TraceRecord:
    """Everything the store holds for one trace."""

    trace_id: str
    created_ts: float
    baggage: dict = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    dropped_events: int = 0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "created_ts": self.created_ts,
            "baggage": dict(self.baggage),
            "events": [event.to_dict() for event in self.events],
            "dropped_events": self.dropped_events,
        }


class TraceStore:
    """Bounded trace storage with LRU eviction and JSONL spill.

    ``capacity`` bounds resident traces; the oldest is evicted first and,
    when ``spill_path`` is set, appended to that file as one JSON line
    (the same tolerant-reader shape as the checkpoint journal and the
    metrics snapshot sink).  ``max_events`` bounds each trace's event
    list.  The clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 256,
        max_events: int = 512,
        spill_path: str | None = None,
        clock: Callable[[], float] = time.monotonic,
        id_prefix: str | None = None,
    ) -> None:
        if capacity < 1:
            raise TracingError(f"store capacity must be positive: {capacity}")
        if max_events < 1:
            raise TracingError(f"max_events must be positive: {max_events}")
        self.capacity = capacity
        self.max_events = max_events
        self.spill_path = spill_path
        self.clock = clock
        if id_prefix is None:
            # Random prefix so ids from distinct stores (processes) do not
            # collide in shared spill files; pass id_prefix for determinism.
            import uuid

            id_prefix = uuid.uuid4().hex[:8]
        self._id_prefix = id_prefix
        self._seq = itertools.count()
        self._records: "OrderedDict[str, TraceRecord]" = OrderedDict()
        self._aliases: dict[str, str] = {}  # request id -> trace id
        self._lock = threading.Lock()
        # Spill I/O gets its own lock so readers of the in-memory store
        # are never blocked behind an fsync; acquisition order is always
        # store lock (if held at all) before spill lock.
        self._spill_lock = threading.Lock()
        self.evicted = 0
        self.spilled = 0

    # -- creation -------------------------------------------------------------

    def _next_span_id(self) -> str:
        return f"s{next(self._seq):06x}"

    def new_trace(self, **baggage) -> "TraceContext":
        """Open a trace; returns its root :class:`TraceContext`."""
        with self._lock:
            trace_id = f"{self._id_prefix}-{next(self._seq):08x}"
            record = TraceRecord(
                trace_id=trace_id,
                created_ts=self.clock(),
                baggage=dict(baggage),
            )
            self._records[trace_id] = record
            while len(self._records) > self.capacity:
                evicted_id, evicted = self._records.popitem(last=False)
                self.evicted += 1
                self._aliases = {
                    alias: tid
                    for alias, tid in self._aliases.items()
                    if tid != evicted_id
                }
                self._spill(evicted)
        return TraceContext(
            trace_id=trace_id,
            span_id=self._next_span_id(),
            parent_id=None,
            baggage=dict(baggage),
            store=self,
        )

    def _spill(self, record: TraceRecord) -> None:
        self._spill_batch([record])

    def _spill_batch(self, records: list[TraceRecord]) -> None:
        """Append ``records`` to the spill file crash-safely.

        The new content is staged in a temp file alongside the target
        (prior content + new lines), fsync'd, then moved into place with
        :func:`os.replace` — atomic on POSIX.  A crash at any byte leaves
        either the old complete file or the new complete file, never a
        torn line, so :func:`load_spilled` readers can't observe half a
        record even if the process dies mid-spill.
        """
        if self.spill_path is None or not records:
            return
        payload = "".join(
            json.dumps(
                record.to_dict(), separators=(",", ":"), sort_keys=True
            )
            + "\n"
            for record in records
        )
        tmp_path = f"{self.spill_path}.tmp.{os.getpid()}"
        with self._spill_lock:
            try:
                try:
                    with open(self.spill_path, "rb") as existing:
                        prior = existing.read()
                except FileNotFoundError:
                    prior = b""
                with open(tmp_path, "wb") as handle:
                    handle.write(prior)
                    handle.write(payload.encode("utf-8"))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.spill_path)
                self.spilled += len(records)
            except OSError as exc:
                raise TracingError(
                    f"cannot spill trace to {self.spill_path!r}: {exc}"
                ) from exc

    def spill_all(self) -> int:
        """Spill every resident trace (end-of-run flush); returns count."""
        with self._lock:
            records = list(self._records.values())
        self._spill_batch(records)
        return len(records)

    # -- writes ---------------------------------------------------------------

    def append(
        self,
        trace_id: str,
        layer: str,
        kind: str,
        span_id: str,
        detail: str = "",
        **attrs,
    ) -> None:
        """Append one event (no-op for evicted/unknown traces)."""
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                return
            if len(record.events) >= self.max_events:
                record.dropped_events += 1
                return
            record.events.append(
                TraceEvent(
                    ts=self.clock(),
                    layer=layer,
                    kind=kind,
                    span_id=span_id,
                    detail=detail,
                    attrs=attrs,
                )
            )

    def bind(self, alias: str, trace_id: str) -> None:
        """Also make the trace findable by ``alias`` (the request id)."""
        with self._lock:
            self._aliases[alias] = trace_id

    # -- reads ----------------------------------------------------------------

    def get(self, trace_or_request_id: str) -> TraceRecord | None:
        """Look a trace up by trace id or bound request id."""
        with self._lock:
            trace_id = self._aliases.get(
                trace_or_request_id, trace_or_request_id
            )
            return self._records.get(trace_id)

    def trace_id_for(self, request_id: str) -> str | None:
        with self._lock:
            return self._aliases.get(request_id)

    def timeline(self, trace_or_request_id: str) -> dict | None:
        """The JSON-able timeline served by ``GET /trace/<id>``."""
        record = self.get(trace_or_request_id)
        return None if record is None else record.to_dict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


@dataclass
class TraceContext:
    """The propagated identity of one traced request.

    Carries the trace id, the current span id, the parent span (None at
    the root) and a baggage dict (tenant, workload, ...).  The context is
    what crosses layer boundaries; events go to the owning store.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    baggage: dict
    store: TraceStore

    def event(self, layer: str, kind: str, detail: str = "", **attrs) -> None:
        """Append one event under this context's span."""
        self.store.append(
            self.trace_id, layer, kind, self.span_id, detail, **attrs
        )

    def child(self, layer: str) -> "TraceContext":
        """A sub-span context (new span id, this span as parent); records
        a ``span_start`` event so the timeline shows the handoff."""
        ctx = TraceContext(
            trace_id=self.trace_id,
            span_id=self.store._next_span_id(),
            parent_id=self.span_id,
            baggage=self.baggage,
            store=self.store,
        )
        self.store.append(
            ctx.trace_id, layer, "span_start", ctx.span_id,
            parent=self.span_id,
        )
        return ctx


class BufferedTraceContext:
    """A store-less trace context that buffers events for later shipping.

    Subprocess shard workers have no access to the parent's
    :class:`TraceStore`, but the layers below them (supervisor, executor,
    campaign) emit through the ambient :func:`trace_event` API, which only
    needs an object with ``.event(layer, kind, detail, **attrs)``.  A
    worker installs one of these via :func:`use_trace`, runs the request,
    then :meth:`drain`-s the buffer into JSON-able dicts that ride the
    result frame back to the supervisor, where :func:`replay_events`
    lands them on the request's real trace.  ``max_events`` bounds the
    buffer the same way :class:`TraceStore` bounds a record's event list.
    """

    def __init__(self, trace_id: str = "", max_events: int = 512) -> None:
        if max_events < 1:
            raise TracingError(f"max_events must be positive: {max_events}")
        self.trace_id = trace_id
        self.max_events = max_events
        self.dropped_events = 0
        self._events: list[dict] = []

    def event(self, layer: str, kind: str, detail: str = "", **attrs) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        entry: dict = {"layer": layer, "kind": kind}
        if detail:
            entry["detail"] = detail
        if attrs:
            entry["attrs"] = attrs
        self._events.append(entry)

    def child(self, layer: str) -> "BufferedTraceContext":
        """Buffered contexts are flat: sub-spans share the one buffer."""
        self.event(layer, "span_start")
        return self

    def drain(self) -> list[dict]:
        """Take the buffered events (the buffer resets to empty)."""
        events, self._events = self._events, []
        return events

    def __len__(self) -> int:
        return len(self._events)


def replay_events(trace, events: list[dict]) -> int:
    """Land drained worker events on a real :class:`TraceContext`.

    Returns the number of events replayed; a ``None`` trace or malformed
    entries are skipped (worker frames are data, not trusted structure).
    """
    if trace is None or not events:
        return 0
    replayed = 0
    for entry in events:
        if not isinstance(entry, dict):
            continue
        layer = entry.get("layer")
        kind = entry.get("kind")
        if not isinstance(layer, str) or not isinstance(kind, str):
            continue
        attrs = entry.get("attrs")
        if not isinstance(attrs, dict):
            attrs = {}
        # Attribute keys shadowing positional parameter names would raise
        # a duplicate-kwarg TypeError; drop them rather than lose the event.
        attrs = {
            key: value
            for key, value in attrs.items()
            if isinstance(key, str) and key not in ("layer", "kind", "detail")
        }
        trace.event(layer, kind, str(entry.get("detail", "")), **attrs)
        replayed += 1
    return replayed


# -- ambient propagation ------------------------------------------------------

_local = threading.local()
_default_store: TraceStore | None = None
_default_lock = threading.Lock()


def default_trace_store() -> TraceStore:
    """The process-wide store (created on first use)."""
    global _default_store
    with _default_lock:
        if _default_store is None:
            _default_store = TraceStore()
        return _default_store


def set_default_trace_store(store: TraceStore) -> TraceStore | None:
    """Swap the process-wide store (returns the previous one)."""
    global _default_store
    with _default_lock:
        previous, _default_store = _default_store, store
    return previous


def current_trace() -> TraceContext | None:
    """The context installed on this thread, if any."""
    return getattr(_local, "trace", None)


class _TraceScope:
    """Re-entrant installer for the thread's current context."""

    __slots__ = ("ctx", "_previous")

    def __init__(self, ctx: TraceContext | None) -> None:
        self.ctx = ctx
        self._previous: TraceContext | None = None

    def __enter__(self) -> TraceContext | None:
        self._previous = getattr(_local, "trace", None)
        _local.trace = self.ctx
        return self.ctx

    def __exit__(self, *exc_info) -> None:
        _local.trace = self._previous


def use_trace(ctx: TraceContext | None) -> _TraceScope:
    """Install ``ctx`` as the thread's current trace for a ``with`` block.

    ``None`` is accepted (and installs nothing-traced), so call sites can
    pass an optional context without branching.
    """
    return _TraceScope(ctx)


def trace_event(layer: str, kind: str, detail: str = "", **attrs) -> None:
    """Append an event to the thread's current trace; no-op without one.

    The deep layers' single instrumentation call: cost is one
    thread-local read when no trace is active.
    """
    ctx = getattr(_local, "trace", None)
    if ctx is not None:
        ctx.event(layer, kind, detail, **attrs)


# -- rendering ----------------------------------------------------------------

def _iter_rows(record: TraceRecord) -> Iterator[tuple[float, str, str, str]]:
    start = record.events[0].ts if record.events else record.created_ts
    for event in record.events:
        extras = " ".join(
            f"{key}={value}" for key, value in sorted(event.attrs.items())
        )
        detail = " ".join(part for part in (event.detail, extras) if part)
        yield (event.ts - start, event.layer, event.kind, detail)


def format_timeline(record: TraceRecord | dict) -> str:
    """A human-readable timeline (the ``repro trace`` rendering)."""
    if isinstance(record, dict):
        record = TraceRecord(
            trace_id=record["trace_id"],
            created_ts=record.get("created_ts", 0.0),
            baggage=record.get("baggage", {}),
            events=[
                TraceEvent(
                    ts=e["ts"],
                    layer=e["layer"],
                    kind=e["kind"],
                    span_id=e.get("span_id", ""),
                    detail=e.get("detail", ""),
                    attrs=e.get("attrs", {}),
                )
                for e in record.get("events", [])
            ],
            dropped_events=record.get("dropped_events", 0),
        )
    baggage = " ".join(
        f"{key}={value}" for key, value in sorted(record.baggage.items())
    )
    lines = [f"trace {record.trace_id}" + (f"  [{baggage}]" if baggage else "")]
    lines.append(f"{'+ms':>10}  {'layer':<10} {'event':<18} detail")
    for offset, layer, kind, detail in _iter_rows(record):
        lines.append(
            f"{offset * 1e3:>10.3f}  {layer:<10} {kind:<18} {detail}"
        )
    if record.dropped_events:
        lines.append(
            f"... {record.dropped_events} event(s) dropped (trace at "
            "max_events)"
        )
    return "\n".join(lines)


def load_spilled(path: str) -> list[TraceRecord]:
    """Read a spill file back (tolerant of a torn final line)."""
    records: list[TraceRecord] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        raise TracingError(f"cannot read spill file {path!r}: {exc}") from exc
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # torn tail
            records.append(
                TraceRecord(
                    trace_id=payload["trace_id"],
                    created_ts=payload.get("created_ts", 0.0),
                    baggage=payload.get("baggage", {}),
                    events=[
                        TraceEvent(
                            ts=e["ts"],
                            layer=e["layer"],
                            kind=e["kind"],
                            span_id=e.get("span_id", ""),
                            detail=e.get("detail", ""),
                            attrs=e.get("attrs", {}),
                        )
                        for e in payload.get("events", [])
                    ],
                    dropped_events=payload.get("dropped_events", 0),
                )
            )
    return records
