"""Resilience policy: the knobs of the detect/repair/degrade loop."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["ResiliencePolicy"]

#: Degradation behaviours once a block's spare pool is exhausted.
EXHAUSTION_POLICIES = ("relocate", "fail")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Configuration of the self-healing loop.

    Attributes
    ----------
    enabled:
        Master switch.  Disabled, the fault model still corrupts outputs
        but nothing detects or repairs — the baseline the end-to-end tests
        compare against.
    spare_fraction:
        Fraction of each block's rows reserved as spares (the CONTRA-style
        area budget; the area model charges for it via
        ``APIMConfig.spare_row_fraction``).
    max_retries:
        Bound on detect -> retire -> re-execute rounds per operation.
        Retries beyond the bound degrade per ``on_unrecoverable``.
    on_exhausted:
        ``"relocate"`` moves a condemned logical row onto a healthy data
        row elsewhere once spares run out; ``"fail"`` raises
        :class:`~repro.errors.RecoveryError` immediately.
    on_unrecoverable:
        ``"fail"`` raises :class:`~repro.errors.FaultError` when corruption
        survives the retry bound; ``"degrade"`` lets the corrupted value
        through and records it (QoS scoring then sees the damage).
    residue_checks:
        Whether the online mod-3 checker runs (and is billed) per
        operation.
    scan_on_start:
        Run a full BIST sweep and retire condemned rows before the first
        operation (power-on repair, the cheapest point to heal).
    """

    enabled: bool = True
    spare_fraction: float = 0.05
    max_retries: int = 3
    on_exhausted: str = "relocate"
    on_unrecoverable: str = "fail"
    residue_checks: bool = True
    scan_on_start: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.spare_fraction < 0.5:
            raise ConfigurationError(
                f"spare_fraction {self.spare_fraction} outside [0, 0.5)"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.on_exhausted not in EXHAUSTION_POLICIES:
            raise ConfigurationError(
                f"on_exhausted must be one of {EXHAUSTION_POLICIES}"
            )
        if self.on_unrecoverable not in ("fail", "degrade"):
            raise ConfigurationError(
                "on_unrecoverable must be 'fail' or 'degrade'"
            )

    def with_overrides(self, **overrides: object) -> "ResiliencePolicy":
        """Copy with some knobs replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]
