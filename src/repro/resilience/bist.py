"""March-test built-in self test (BIST) for crossbar blocks.

A march test walks the array through write/read pattern elements; any cell
that cannot hold both logic levels is condemned.  The scanner here runs the
stuck-at-complete MATS+ core — ``{w0; r0,w1; r1}`` — using APIM's row-wide
drivers (one write pulse per row per element) and sense amplifiers (one
row-parallel read per row per element):

- after the ``w0`` sweep, any cell reading '1' is **stuck-on**;
- after the ``w1`` sweep, any cell reading '0' is **stuck-off**.

Address-decoder and coupling faults need the longer march C- sequence and
are out of scope: APIM's arithmetic corruption comes from stuck cells
(forming failures and wear-out), which this test detects exactly.

The scan is destructive on the scanned rows, so the tester snapshots and
restores the array around it — on hardware the controller schedules BIST
before data lands (power-on) or after relocating live rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.cost import Cost
from repro.device.cell import LOGIC_THRESHOLD
from repro.errors import CrossbarError

if TYPE_CHECKING:
    from repro.crossbar.array import CrossbarArray
    from repro.crossbar.block import BlockedCrossbar

__all__ = ["BISTResult", "MarchTester"]

#: Pattern elements of the stuck-at march (MATS+ core).
MARCH_ELEMENTS = ("w0", "r0", "w1", "r1")


@dataclass(frozen=True)
class BISTResult:
    """Outcome of one scan.

    ``faults`` lists ``(row, col, kind)`` per scanned array (block scans)
    or ``(block, row, col, kind)`` for fabric scans; ``cost`` is the scan's
    cycle/write/read bill, chargeable to the fabric that was tested.
    """

    faults: tuple[tuple, ...]
    cost: Cost

    @property
    def faulty_rows(self) -> frozenset[int]:
        """Rows containing at least one stuck cell (block-scan results)."""
        return frozenset(site[-3] for site in self.faults)

    def faulty_rows_by_block(self) -> dict[int, set[int]]:
        """Block -> faulty-row sets (fabric-scan results)."""
        grouped: dict[int, set[int]] = {}
        for site in self.faults:
            if len(site) != 4:
                raise CrossbarError(
                    "faulty_rows_by_block needs a fabric scan result"
                )
            grouped.setdefault(site[0], set()).add(site[1])
        return grouped


class MarchTester:
    """Runs march scans over crossbar arrays, blocks or whole fabrics."""

    def scan_array(
        self, array: "CrossbarArray", rows: Sequence[int] | None = None
    ) -> BISTResult:
        """March the given rows (default: all) of one block.

        Returns the exact set of stuck cells in the scanned region: a cell
        is reported stuck-on iff it reads '1' after the w0 element and
        stuck-off iff it reads '0' after the w1 element; healthy cells obey
        both writes and are never reported.
        """
        row_list = list(range(array.rows)) if rows is None else list(rows)
        for row in row_list:
            if not 0 <= row < array.rows:
                raise CrossbarError(f"BIST row {row} outside block")
        if not row_list:
            raise CrossbarError("BIST scan needs at least one row")
        keep = array.snapshot()
        try:
            for row in row_list:
                array.fill_row(row, 0)  # w0
            read0 = array.snapshot() > LOGIC_THRESHOLD  # r0 (SA row reads)
            for row in row_list:
                array.fill_row(row, 1)  # w1
            read1 = array.snapshot() > LOGIC_THRESHOLD  # r1
        finally:
            array.restore(keep)
        faults: list[tuple[int, int, str]] = []
        for row in row_list:
            for col in range(array.cols):
                if read0[row, col]:
                    faults.append((row, col, "stuck_on"))
                elif not read1[row, col]:
                    faults.append((row, col, "stuck_off"))
        cells = len(row_list) * array.cols
        cost = Cost(
            cycles=len(MARCH_ELEMENTS) * len(row_list),
            cell_writes=2 * cells,
            sa_reads=2 * cells,
        )
        return BISTResult(faults=tuple(faults), cost=cost)

    def scan_block(
        self,
        fabric: "BlockedCrossbar",
        block: int,
        rows: Sequence[int] | None = None,
        charge: bool = True,
    ) -> BISTResult:
        """Scan one block of a fabric, charging the scan to its ledger."""
        result = self.scan_array(fabric.block(block), rows)
        if charge:
            fabric.charge(result.cost)
        return result

    def scan_fabric(
        self,
        fabric: "BlockedCrossbar",
        blocks: Sequence[int] | None = None,
        rows: Sequence[int] | None = None,
        charge: bool = True,
    ) -> BISTResult:
        """Scan several blocks; fault sites carry the block index."""
        indices = (
            list(range(len(fabric.blocks))) if blocks is None else list(blocks)
        )
        faults: list[tuple[int, int, int, str]] = []
        total = Cost()
        for index in indices:
            partial = self.scan_block(fabric, index, rows, charge=False)
            faults.extend((index, r, c, kind) for r, c, kind in partial.faults)
            total += partial.cost
        if charge:
            fabric.charge(total)
        return BISTResult(faults=tuple(faults), cost=total)
