"""The recovery loop over structural fabrics: detect, retire, re-execute.

:class:`ResilienceManager` drives self-healing for bit-accurate structural
execution (:class:`~repro.crossbar.structural_multiplier.StructuralMultiplier`):

1. **detect** — the mod-3 residue of the produced product is checked
   against the operands (no golden reference); structural protocol
   violations caused by stuck cells (e.g. a carry operand frozen at '1')
   surface as :class:`~repro.errors.CrossbarError` and count as detections
   too;
2. **repair** — a BIST march scan locates every stuck cell and condemns
   its row; rows within the spare budget are *repaired*, rows beyond it
   are *relocated* (or the run fails, per policy);
3. **re-execute** — the multiply runs again on healthy rows, up to
   ``max_retries`` rounds.

Every step appends a :class:`ReliabilityEvent`, so traces and QoS
accounting see reliability activity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.approximation import EXACT, ApproxSpec
from repro.core.cost import Cost
from repro.crossbar.structural_multiplier import StructuralMultiplier
from repro.errors import CrossbarError, FaultError, RecoveryError
from repro.resilience.bist import MarchTester
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.residue import product_residue_ok, residue_cost

__all__ = ["ReliabilityEvent", "GuardedProduct", "ResilienceManager"]


@dataclass(frozen=True)
class ReliabilityEvent:
    """One reliability incident on the fabric timeline.

    ``kind`` is one of ``bist_scan``, ``fault_detected``, ``row_retired``,
    ``row_relocated``, ``retry``, ``degraded``; ``cycle`` is the global
    fabric clock when it happened.
    """

    kind: str
    cycle: float
    detail: str


@dataclass(frozen=True)
class GuardedProduct:
    """Outcome of one self-healed structural multiplication."""

    product: int
    cost: Cost
    faults_detected: int
    repairs: int
    retries: int


class ResilienceManager:
    """Self-healing driver for structural execution on a blocked crossbar."""

    def __init__(
        self,
        policy: ResiliencePolicy | None = None,
        tester: MarchTester | None = None,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.tester = tester or MarchTester()
        self.events: list[ReliabilityEvent] = []
        self.faults_detected = 0
        self.repairs = 0
        self.retries = 0

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, kind: str, cycle: float, detail: str) -> None:
        self.events.append(ReliabilityEvent(kind, cycle, detail))

    def spare_budget(self, rows: int) -> int:
        """Rows per block the spare budget allows to be retired."""
        return math.ceil(rows * self.policy.spare_fraction)

    # -- repair --------------------------------------------------------------

    def heal_multiplier(self, mult: StructuralMultiplier) -> int:
        """BIST-scan the multiplier's fabric and retire condemned rows.

        Rows within the per-block spare budget count as repairs; beyond the
        budget the policy decides between relocation onto remaining healthy
        rows and failure.  Returns the number of rows newly retired.
        """
        fabric = mult.fabric
        scan = self.tester.scan_fabric(fabric)
        self._record(
            "bist_scan", fabric.cycles,
            f"{len(scan.faults)} stuck cells in {len(fabric.blocks)} blocks",
        )
        budget = self.spare_budget(mult.rows)
        newly_retired = 0
        for block, rows in sorted(scan.faulty_rows_by_block().items()):
            fresh = sorted(rows - mult.retired_rows(block))
            if not fresh:
                continue
            already = len(mult.retired_rows(block))
            for row in fresh:
                within_budget = already + 1 <= budget
                if not within_budget and self.policy.on_exhausted == "fail":
                    raise RecoveryError(
                        f"block {block}: spare budget of {budget} rows "
                        f"exhausted and policy forbids relocation"
                    )
                mult.retire_rows(block, [row])
                already += 1
                newly_retired += 1
                self.repairs += 1
                kind = "row_retired" if within_budget else "row_relocated"
                self._record(
                    kind, fabric.cycles, f"block {block} row {row}"
                )
        return newly_retired

    # -- guarded execution ---------------------------------------------------

    def guarded_multiply(
        self,
        mult: StructuralMultiplier,
        a: int,
        b: int,
        spec: ApproxSpec = EXACT,
    ) -> GuardedProduct:
        """Multiply with the full detect/retire/re-execute loop.

        The residue check only guards exact products (an approximate final
        stage legitimately changes the residue); approximate runs still
        benefit from detection of structural violations and from rows
        retired by earlier scans.
        """
        fabric = mult.fabric
        start = fabric.total_cost
        check_residue = (
            self.policy.residue_checks
            and spec.relax_bits == 0
            and spec.masked_bits == 0
        )
        retries = 0
        detected = 0
        repairs_before = self.repairs
        while True:
            failure: str | None = None
            product = None
            try:
                product, _ = mult.multiply(a, b, spec)
            except CrossbarError as exc:
                failure = f"structural violation: {exc}"
            if failure is None and check_residue:
                fabric.charge(residue_cost())
                if not product_residue_ok(a, b, product):
                    failure = (
                        f"residue mismatch on {a}*{b} -> {product}"
                    )
            if failure is None:
                delta = self._delta(fabric.total_cost, start)
                return GuardedProduct(
                    product=int(product),
                    cost=delta,
                    faults_detected=detected,
                    repairs=self.repairs - repairs_before,
                    retries=retries,
                )
            detected += 1
            self.faults_detected += 1
            self._record("fault_detected", fabric.cycles, failure)
            if not self.policy.enabled:
                raise FaultError(
                    f"fault detected with recovery disabled: {failure}"
                )
            if retries >= self.policy.max_retries:
                raise FaultError(
                    f"corruption survived {retries} repair rounds: {failure}"
                )
            if self.heal_multiplier(mult) == 0:
                raise FaultError(
                    f"BIST found no repairable rows for: {failure}"
                )
            retries += 1
            self.retries += 1
            self._record("retry", fabric.cycles, f"attempt {retries + 1}")

    @staticmethod
    def _delta(now: Cost, start: Cost) -> Cost:
        return Cost(
            cycles=now.cycles - start.cycles,
            nor_ops=now.nor_ops - start.nor_ops,
            cell_writes=now.cell_writes - start.cell_writes,
            sa_reads=now.sa_reads - start.sa_reads,
            maj_ops=now.maj_ops - start.maj_ops,
            interconnect_bits=now.interconnect_bits - start.interconnect_bits,
        )
