"""Online mod-3 residue checking of in-memory arithmetic.

A residue code checks ``op(a, b) mod m`` against the residue of the
produced result, using only the operands — no golden reference.  Modulus 3
is the classic low-cost choice for binary datapaths because

    2^k mod 3  is 1 for even k and 2 for odd k  (never 0),

so **any single-bit corruption of the result changes its residue** and is
caught.  Multi-bit corruptions can alias (e.g. flipping adjacent bits 0
and 1 adds 3); the BIST sweep (:mod:`repro.resilience.bist`) covers those
by condemning rows wholesale.

On APIM the checker is a small peripheral unit folding result bitlines
mod 3 while the sense amplifier streams them out; :func:`residue_cost`
prices one check (default 2 cycles, a few SA reads) so the executor can
bill the overhead — a few percent of a multiply's hundreds of cycles.

Checks operate on magnitudes for the sign-magnitude multiply datapath and
directly on signed values for two's-complement addition (Python's ``%``
is already non-negative).  They are NumPy-vectorised: array inputs give a
boolean mask of elements that pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import Cost

__all__ = [
    "residue3",
    "product_residue_ok",
    "sum_residue_ok",
    "residue_cost",
]

#: Cycles one mod-3 fold of a result word takes in the checker unit.
RESIDUE_CHECK_CYCLES = 2

#: SA reads consumed streaming the result word through the checker.
RESIDUE_CHECK_SA_READS = 4


def residue3(values: np.ndarray | int) -> np.ndarray | int:
    """Mod-3 residue of magnitudes (scalar in -> int, array in -> array)."""
    array = np.abs(np.asarray(values, dtype=np.int64)) % 3
    if np.ndim(values) == 0:
        return int(array)
    return array


def product_residue_ok(
    a: np.ndarray | int, b: np.ndarray | int, product: np.ndarray | int
) -> np.ndarray | bool:
    """Does ``product`` carry the residue of ``a * b``?

    Element-wise for arrays.  Signs cancel out of the magnitude check
    because ``|a * b| = |a| * |b|``.
    """
    expected = (residue3(a) * residue3(b)) % 3
    ok = np.equal(expected, residue3(product))
    if np.ndim(ok) == 0:
        return bool(ok)
    return ok


def sum_residue_ok(
    a: np.ndarray | int, b: np.ndarray | int, total: np.ndarray | int
) -> np.ndarray | bool:
    """Does ``total`` carry the residue of ``a + b``?

    Works on signed values directly; valid while the addition does not
    wrap the accumulator (the engine validates widths for exactly that).
    """
    av = np.asarray(a, dtype=np.int64) % 3
    bv = np.asarray(b, dtype=np.int64) % 3
    tv = np.asarray(total, dtype=np.int64) % 3
    ok = np.equal((av + bv) % 3, tv)
    if np.ndim(ok) == 0:
        return bool(ok)
    return ok


def residue_cost(checks: int = 1) -> Cost:
    """Cost of running the residue checker over ``checks`` result words."""
    return Cost(
        cycles=RESIDUE_CHECK_CYCLES,
        sa_reads=RESIDUE_CHECK_SA_READS,
    ).scaled(checks)
