"""Fault-aware workload execution: a self-healing :class:`APIMEngine`.

The functional engine computes on NumPy arrays, but on hardware every
element lives in a row of a real (faulty) fabric.  :class:`FabricHealth`
binds the two: it maps element indices onto ``(block, logical row)`` slots
of a :class:`~repro.crossbar.block.BlockedCrossbar` and answers which bits
of a slot are held by stuck cells.  :class:`ResilientEngine` then

- **corrupts** every operation's outputs exactly as the pinned cells of
  the backing physical rows dictate (magnitude bits for the
  sign-magnitude multiply datapath, low ``width`` bits of the
  two's-complement encoding for additions);
- **detects** corruption with the mod-3 residue checker — the residue of
  the produced word is compared against the residue carried through the
  operation (equivalent to checking against the operand residues for
  exact arithmetic, with no false alarms on accumulator wrap);
- **repairs** by a targeted march scan of the flagged row followed by
  retirement onto a spare (or relocation onto wear-levelled headroom once
  spares run out, per policy);
- **re-executes** the flagged elements, up to ``max_retries`` rounds,
  then degrades or raises :class:`~repro.errors.FaultError` per policy.

Approximate specs skip the residue check (a relaxed final stage
legitimately changes the residue); the power-on BIST sweep still protects
them by retiring faulty rows before data lands.
"""

from __future__ import annotations

import numpy as np

from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig
from repro.core.cost import Cost
from repro.core.engine import APIMEngine
from repro.crossbar.block import BlockedCrossbar
from repro.device.endurance import RotatingAllocator
from repro.errors import DeviceError, FaultError, RecoveryError
from repro.observability.instruments import (
    record_bist_scan,
    record_residue_mismatch,
    record_resilience_degraded,
    record_resilience_repair,
    record_resilience_retry,
)
from repro.resilience.bist import MarchTester
from repro.resilience.manager import ReliabilityEvent
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.residue import residue3, residue_cost

__all__ = ["FabricHealth", "ResilientEngine", "ResilienceContext"]

#: Fraction of each block's data rows kept free as relocation headroom.
RELOCATION_HEADROOM = 0.25


class FabricHealth:
    """Element-to-row placement and repair state for one faulty fabric.

    Reserves the policy's spare fraction on the fabric, spreads element
    slots round-robin over the blocks through wear-levelling
    :class:`~repro.device.endurance.RotatingAllocator` instances (leaving
    :data:`RELOCATION_HEADROOM` of the data rows unallocated so relocation
    has somewhere to go), and tracks which physical rows the last BIST
    sweep condemned.
    """

    def __init__(
        self,
        fabric: BlockedCrossbar,
        policy: ResiliencePolicy | None = None,
        tester: MarchTester | None = None,
    ) -> None:
        self.fabric = fabric
        self.policy = policy or ResiliencePolicy()
        self.tester = tester or MarchTester()
        fabric.reserve_spares(self.policy.spare_fraction)
        data = fabric.data_rows
        per_block = max(1, int(data * (1.0 - RELOCATION_HEADROOM)))
        self.allocators = [
            RotatingAllocator(data) for _ in fabric.blocks
        ]
        columns = [
            alloc.alloc(per_block) for alloc in self.allocators
        ]
        # Interleave across blocks so consecutive elements land on
        # different blocks (the lane-parallel layout).
        self.slots: list[tuple[int, int]] = [
            (block, rows[i])
            for i in range(per_block)
            for block, rows in enumerate(columns)
        ]
        self.faulty: list[set[int]] = [set() for _ in fabric.blocks]
        self.repairs = 0
        self.relocations = 0

    # -- placement -----------------------------------------------------------

    def slot_for(self, index: int) -> tuple[int, int]:
        """The ``(block, logical row)`` slot backing element ``index``."""
        return self.slots[index % len(self.slots)]

    def stuck_bits(self, index: int) -> list[tuple[int, float]]:
        """``(bit position, stuck level)`` pairs afflicting a slot's word."""
        block, row = self.slot_for(index)
        physical = self.fabric.resolve_row(block, row)
        array = self.fabric.block(block)
        return [
            (col, level)
            for (r, col), level in array.pinned_cells().items()
            if r == physical
        ]

    # -- scanning ------------------------------------------------------------

    def scan_and_retire(self) -> tuple[int, int, Cost]:
        """Power-on repair: full BIST sweep, retire every condemned slot.

        Returns ``(stuck cells found, rows retired, scan cost)``.
        """
        scan = self.tester.scan_fabric(self.fabric)
        by_block = scan.faulty_rows_by_block()
        self.faulty = [
            set(by_block.get(i, set())) for i in range(len(self.fabric.blocks))
        ]
        retired = 0
        for block, row in self.slots:
            if self.fabric.resolve_row(block, row) in self.faulty[block]:
                self.retire_row(block, row)
                retired += 1
        return len(scan.faults), retired, scan.cost

    # -- repair --------------------------------------------------------------

    def retire_row(self, block: int, row: int) -> str:
        """Move a logical row off its condemned physical row.

        Prefers the block's spare pool; once it is exhausted the policy
        either relocates onto wear-levelled headroom rows or lets the
        :class:`~repro.errors.RecoveryError` propagate.  Every replacement
        row is march-verified before it is accepted (spares and headroom
        rows can be stuck too); condemned replacements are burned and the
        search continues.  Returns the mechanism used (``"repair"`` or
        ``"relocate"``).
        """
        mechanism = "repair"
        while True:
            old_physical = self.fabric.resolve_row(block, row)
            try:
                replacement = self.fabric.retire_row(block, row)
                self.repairs += 1
            except RecoveryError:
                if self.policy.on_exhausted == "fail":
                    raise
                replacement = self._relocate(block, row, old_physical)
                self.relocations += 1
                mechanism = "relocate"
            self._drop_from_rotation(block, old_physical)
            if self._row_healthy(block, replacement):
                return mechanism

    def _row_healthy(self, block: int, physical: int) -> bool:
        """Verify-after-repair: march one row, remember what it found."""
        scan = self.tester.scan_block(self.fabric, block, rows=[physical])
        if scan.faults:
            self.faulty[block].update(site[0] for site in scan.faults)
            return False
        return True

    def _relocate(self, block: int, row: int, old_physical: int) -> int:
        """Point a logical row at a fresh healthy headroom row."""
        alloc = self.allocators[block]
        faulty = self.faulty[block]
        while True:
            try:
                candidate = alloc.alloc(1)[0]
            except DeviceError as exc:
                raise RecoveryError(
                    f"block {block}: spares and relocation headroom both "
                    f"exhausted"
                ) from exc
            if candidate not in faulty:
                break
            self._drop_from_rotation(block, candidate)
        array = self.fabric.block(block)
        for col in range(self.fabric.cols):
            array.set_value(candidate, col, array.value(old_physical, col))
        self.fabric.remap.retire(block, row, candidate)
        self.fabric.charge_writes(self.fabric.cols)
        self.fabric.advance_clock(2)  # row read-out + driver rewrite
        return candidate

    def _drop_from_rotation(self, block: int, physical: int) -> None:
        """Stop wear levelling from cycling through a dead row."""
        if not 0 <= physical < self.fabric.data_rows:
            return  # spare region: never in the rotation
        try:
            self.allocators[block].retire(physical)
        except DeviceError:
            pass  # rotation empty or row never allocatable: nothing to level

    @property
    def rows_replaced(self) -> int:
        """Rows moved off faulty cells, by either mechanism."""
        return self.repairs + self.relocations


class ResilientEngine(APIMEngine):
    """An :class:`APIMEngine` whose outputs suffer, and survive, the fabric.

    Every operation's results are corrupted bit-accurately by the stuck
    cells of the rows backing each element, then guarded by the
    detect/repair/re-execute loop described in the module docstring.
    Reliability activity is billed to the ledger under ``residue`` and
    ``repair`` and surfaced through ``faults_detected`` / ``repairs`` /
    ``retries`` / ``degraded`` and the event log.
    """

    def __init__(
        self,
        health: FabricHealth,
        config: APIMConfig | None = None,
        spec: ApproxSpec = EXACT,
    ) -> None:
        super().__init__(config, spec)
        self.health = health
        self.policy = health.policy
        self.faults_detected = 0
        self.retries = 0
        self.degraded = 0
        self.events: list[ReliabilityEvent] = []
        if self.policy.enabled and self.policy.scan_on_start:
            found, retired, scan_cost = health.scan_and_retire()
            record_bist_scan(found)
            self.ledger.charge("repair", scan_cost)
            if retired:
                self.ledger.charge(
                    "repair",
                    Cost(cycles=2, cell_writes=self.health.fabric.cols)
                    .scaled(retired),
                )
            self.faults_detected += found
            self._record(
                "bist_scan",
                f"power-on sweep: {found} stuck cells, {retired} rows retired",
            )

    @property
    def repairs(self) -> int:
        """Rows moved off faulty cells (spares used + relocations)."""
        return self.health.rows_replaced

    def _record(self, kind: str, detail: str) -> None:
        self.events.append(
            ReliabilityEvent(kind, self.health.fabric.cycles, detail)
        )

    # -- guarded operations --------------------------------------------------

    def mul(
        self,
        a: np.ndarray | int,
        b: np.ndarray | int,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        spec_eff = self.spec if spec is None else spec
        clean = super().mul(a, b, spec)
        return self._guard(
            clean,
            spec_eff,
            kind="magnitude",
            width=self._product_width(a, b),
            redo=lambda idx: super(ResilientEngine, self).mul(
                self._take(a, clean, idx), self._take(b, clean, idx), spec
            ),
        )

    def add(
        self,
        a: np.ndarray | int,
        b: np.ndarray | int,
        width: int | None = None,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        spec_eff = self.spec if spec is None else spec
        width_eff = width or self.config.word_bits
        clean = super().add(a, b, width=width, spec=spec)
        return self._guard(
            clean,
            spec_eff,
            kind="twos",
            width=width_eff,
            redo=lambda idx: super(ResilientEngine, self).add(
                self._take(a, clean, idx),
                self._take(b, clean, idx),
                width=width,
                spec=spec,
            ),
        )

    def sum_many(
        self,
        operands,
        width: int | None = None,
        spec: ApproxSpec | None = None,
    ) -> np.ndarray:
        spec_eff = self.spec if spec is None else spec
        width_eff = width or self.config.word_bits
        clean = super().sum_many(operands, width=width, spec=spec)
        return self._guard(
            clean,
            spec_eff,
            kind="twos",
            width=width_eff,
            redo=lambda idx: super(ResilientEngine, self).sum_many(
                [self._take(op, clean, idx) for op in operands],
                width=width,
                spec=spec,
            ),
        )

    # -- the detect/repair/re-execute loop ----------------------------------

    def _guard(self, clean, spec_eff, kind, width, redo):
        shape = np.shape(clean)
        flat_clean = np.atleast_1d(np.asarray(clean, dtype=np.int64)).ravel()
        observed = np.array(
            [
                self._corrupt(int(value), i, kind, width)
                for i, value in enumerate(flat_clean)
            ],
            dtype=np.int64,
        )
        checking = (
            self.policy.enabled
            and self.policy.residue_checks
            and spec_eff.relax_bits == 0
            and spec_eff.masked_bits == 0
        )
        if checking:
            attempts = 0
            while True:
                self.ledger.charge("residue", residue_cost(observed.size))
                bad = np.flatnonzero(
                    residue3(self._encode(observed, kind, width))
                    != residue3(self._encode(flat_clean, kind, width))
                )
                if bad.size == 0:
                    break
                self.faults_detected += int(bad.size)
                record_residue_mismatch(int(bad.size))
                self._record(
                    "fault_detected",
                    f"residue flagged {bad.size} element(s)",
                )
                if attempts >= self.policy.max_retries:
                    if self.policy.on_unrecoverable == "degrade":
                        self.degraded += int(bad.size)
                        record_resilience_degraded(int(bad.size))
                        self._record(
                            "degraded",
                            f"{bad.size} element(s) kept corrupted after "
                            f"{attempts} repair rounds",
                        )
                        break
                    raise FaultError(
                        f"corruption in {bad.size} element(s) survived "
                        f"{attempts} repair rounds"
                    )
                healed = [self._heal_slot(int(i)) for i in bad]
                if not any(healed):
                    if self.policy.on_unrecoverable == "degrade":
                        self.degraded += int(bad.size)
                        record_resilience_degraded(int(bad.size))
                        self._record(
                            "degraded",
                            f"no stuck cells found under {bad.size} "
                            f"flagged element(s)",
                        )
                        break
                    raise FaultError(
                        f"residue flagged {bad.size} element(s) but BIST "
                        f"found no stuck cells under them"
                    )
                attempts += 1
                self.retries += 1
                record_resilience_retry(int(bad.size))
                self._record("retry", f"re-executing {bad.size} element(s)")
                redone = np.atleast_1d(
                    np.asarray(redo(bad), dtype=np.int64)
                ).ravel()
                for slot, value in zip(bad, redone):
                    observed[slot] = self._corrupt(
                        int(value), int(slot), kind, width
                    )
        if shape == ():
            return observed.reshape(()).astype(np.int64)
        return observed.reshape(shape)

    def _heal_slot(self, index: int) -> bool:
        """Targeted scan + retirement of the row under a flagged element."""
        health = self.health
        block, row = health.slot_for(index)
        physical = health.fabric.resolve_row(block, row)
        scan = health.tester.scan_block(health.fabric, block, rows=[physical])
        record_bist_scan(len(scan.faults))
        self.ledger.charge("repair", scan.cost)
        if not scan.faults:
            return False
        health.faulty[block].update(site[0] for site in scan.faults)
        mechanism = health.retire_row(block, row)
        record_resilience_repair(
            "spare" if mechanism == "repair" else "relocate"
        )
        self.ledger.charge(
            "repair", Cost(cycles=2, cell_writes=health.fabric.cols)
        )
        self._record(
            "row_retired" if mechanism == "repair" else "row_relocated",
            f"block {block} row {physical} ({len(scan.faults)} stuck cells)",
        )
        return True

    # -- fault application ---------------------------------------------------

    def _corrupt(self, value: int, index: int, kind: str, width) -> int:
        """Apply a slot's stuck bits to one result word."""
        stuck = self.health.stuck_bits(index)
        if not stuck:
            return value
        if kind == "magnitude":
            sign = -1 if value < 0 else 1
            word = abs(value)
            limit = width
        else:
            limit = width
            word = value % (1 << width)
        for bit, level in stuck:
            if bit >= limit:
                continue
            if level > 0.5:
                word |= 1 << bit
            else:
                word &= ~(1 << bit)
        if kind == "magnitude":
            return sign * word
        half = 1 << (width - 1)
        return word - (1 << width) if word >= half else word

    @staticmethod
    def _product_width(a, b) -> int:
        """Columns a sign-magnitude product of these operands occupies.

        Stuck cells past the stored word's last column cannot touch it, so
        corruption is bounded by the physical product width.
        """
        widths = []
        for operand in (a, b):
            peak = int(np.max(np.abs(np.asarray(operand, dtype=np.int64))))
            widths.append(max(1, peak.bit_length()))
        return min(62, widths[0] + widths[1])

    @staticmethod
    def _encode(values: np.ndarray, kind: str, width) -> np.ndarray:
        """The unsigned datapath encoding the residue checker folds over."""
        if kind == "magnitude":
            return np.abs(values)
        return values % np.int64(1 << width)

    @staticmethod
    def _take(operand, clean, idx: np.ndarray) -> np.ndarray:
        """Slice an (possibly scalar) operand down to flagged elements."""
        arr = np.broadcast_to(
            np.asarray(operand, dtype=np.int64), np.shape(clean)
        )
        return np.atleast_1d(arr).ravel()[idx]


class ResilienceContext:
    """Everything the runtime needs to execute on one faulty fabric.

    Bundles the fabric, the policy, the tester and the placement/repair
    state; :meth:`make_engine` hands the executor a fault-aware engine
    bound to them.  Build it *after* attaching fault injectors so the
    power-on sweep sees the faults.
    """

    def __init__(
        self,
        fabric: BlockedCrossbar,
        policy: ResiliencePolicy | None = None,
        tester: MarchTester | None = None,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.tester = tester or MarchTester()
        self.health = FabricHealth(fabric, self.policy, self.tester)

    @property
    def fabric(self) -> BlockedCrossbar:
        return self.health.fabric

    def make_engine(
        self,
        config: APIMConfig | None = None,
        spec: ApproxSpec = EXACT,
    ) -> ResilientEngine:
        """A fault-aware engine executing on this context's fabric."""
        return ResilientEngine(self.health, config, spec)
