"""Self-healing execution: fault detection, spare-row repair, degradation.

APIM's fast adder deliberately trades extra writes for latency, so on real
RRAM stuck cells are the steady state, not a corner case.  This package
closes the loop the device/variation module only opens (it *injects*
faults):

- :mod:`repro.resilience.bist` — march-test built-in self test that
  locates stuck-on/stuck-off cells in a crossbar block or fabric;
- :mod:`repro.resilience.residue` — cheap online mod-3 residue checking
  that flags corrupted arithmetic outputs without golden references;
- :mod:`repro.resilience.policy` — the knobs: spare budget, retry bound,
  degradation behaviour, checker overhead;
- :mod:`repro.resilience.manager` — the recovery loop over structural
  fabrics (detect -> retire -> re-execute), with an event log;
- :mod:`repro.resilience.engine` — the workload-scale counterpart: a
  fault-aware :class:`~repro.core.engine.APIMEngine` whose outputs are
  corrupted by the fabric's stuck cells and healed by the same loop;
- :mod:`repro.resilience.campaign` — the fault-rate x spare-budget yield
  campaign behind ``repro faults`` and ``bench_resilience.py``.

See ``docs/reliability.md`` for the full fault model and policy story.
"""

from repro.resilience.bist import BISTResult, MarchTester
from repro.resilience.campaign import (
    ResilienceCampaignPoint,
    campaign_table,
    run_fault_campaign,
)
from repro.resilience.engine import FabricHealth, ResilienceContext, ResilientEngine
from repro.resilience.manager import (
    GuardedProduct,
    ReliabilityEvent,
    ResilienceManager,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.residue import (
    product_residue_ok,
    residue3,
    residue_cost,
    sum_residue_ok,
)

__all__ = [
    "BISTResult",
    "MarchTester",
    "ResilienceCampaignPoint",
    "campaign_table",
    "run_fault_campaign",
    "FabricHealth",
    "ResilienceContext",
    "ResilientEngine",
    "GuardedProduct",
    "ReliabilityEvent",
    "ResilienceManager",
    "ResiliencePolicy",
    "product_residue_ok",
    "residue3",
    "residue_cost",
    "sum_residue_ok",
]
