"""Fault-injection campaigns: yield and overhead versus spare budget.

Sweeps stuck-cell rate x spare-row budget over structurally-executed
multiplications with the full self-healing loop engaged, and reports per
grid point:

- **yield** — fraction of trials that end bit-correct (recovery may have
  been needed);
- **recovered fraction** — trials that survived *because* rows were
  retired (repairs > 0), i.e. dies the spare budget saved;
- **repair effort** — average rows retired and re-execution rounds;
- **EDP overhead** — energy-delay of the guarded faulty operations over a
  clean unguarded baseline of the same operations.  Residue checks,
  in-operation scans, retirements and retries are included; the one-time
  power-on BIST sweep is not (it amortises over the die's lifetime, so
  folding it into a handful of operations would drown the per-op trend).

Backs the ``repro faults`` CLI subcommand and
``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost
from repro.crossbar.structural_multiplier import StructuralMultiplier
from repro.device.variation import FaultInjector, VariationModel
from repro.errors import FaultError, RecoveryError
from repro.resilience.manager import ResilienceManager
from repro.resilience.policy import ResiliencePolicy

__all__ = ["ResilienceCampaignPoint", "run_fault_campaign", "campaign_table"]


@dataclass(frozen=True)
class ResilienceCampaignPoint:
    """Aggregate outcome of all trials at one (rate, spare budget) point."""

    fault_rate: float
    spare_fraction: float
    trials: int
    survived: int
    recovered: int
    avg_repairs: float
    avg_retries: float
    edp_overhead: float

    @property
    def yield_fraction(self) -> float:
        """Fraction of dies delivering bit-correct results."""
        return self.survived / self.trials if self.trials else 0.0

    @property
    def recovered_fraction(self) -> float:
        """Fraction of dies that needed (and survived on) repair."""
        return self.recovered / self.trials if self.trials else 0.0


def _trial_multiplier(word_bits: int) -> StructuralMultiplier:
    return StructuralMultiplier(word_bits)


def _clean_edp(
    mult: StructuralMultiplier,
    pairs: Sequence[tuple[int, int]],
    config: APIMConfig,
) -> float:
    """EDP of the same operand pairs, unguarded, on a fault-free fabric."""
    total = Cost()
    for a, b in pairs:
        product, cost = mult.multiply(a, b)
        assert product == a * b
        total += cost
    return total.edp(config)


def run_fault_campaign(
    rates: Sequence[float],
    spare_fractions: Sequence[float],
    trials: int = 8,
    word_bits: int = 8,
    ops_per_trial: int = 3,
    seed: int = 2017,
    config: APIMConfig | None = None,
    policy: ResiliencePolicy | None = None,
) -> list[ResilienceCampaignPoint]:
    """Run the grid; one fresh die (fabric + fault draw) per trial.

    Trials count as *survived* when every product comes out bit-correct
    (silent corruption — residue aliasing that escapes detection — counts
    as a loss, exactly as a customer would score it) and as *recovered*
    when survival involved retiring at least one row.
    """
    config = config or default_config()
    base_policy = policy or ResiliencePolicy()
    points: list[ResilienceCampaignPoint] = []
    clean_mult = _trial_multiplier(word_bits)
    limit = 1 << word_bits
    for rate in rates:
        for spare_fraction in spare_fractions:
            point_policy = base_policy.with_overrides(
                spare_fraction=spare_fraction
            )
            survived = recovered = 0
            repairs = retries = 0
            overhead_sum = 0.0
            overhead_count = 0
            for trial in range(trials):
                rng = np.random.default_rng(
                    [seed, trial, int(rate * 1e6), int(spare_fraction * 1e6)]
                )
                mult = _trial_multiplier(word_bits)
                if rate > 0.0:
                    model = VariationModel(
                        stuck_on_rate=rate / 2, stuck_off_rate=rate / 2
                    )
                    for block in range(len(mult.fabric.blocks)):
                        injector = FaultInjector(
                            model, seed=int(rng.integers(1 << 31))
                        )
                        mult.fabric.attach_fault_injector(block, injector)
                manager = ResilienceManager(point_policy)
                pairs = [
                    tuple(int(v) for v in rng.integers(0, limit, size=2))
                    for _ in range(ops_per_trial)
                ]
                guarded_cost = Cost()
                try:
                    if point_policy.scan_on_start:
                        manager.heal_multiplier(mult)
                    ok = True
                    for a, b in pairs:
                        guarded = manager.guarded_multiply(mult, a, b)
                        guarded_cost += guarded.cost
                        if guarded.product != a * b:
                            ok = False  # silent corruption escaped the net
                            break
                except (FaultError, RecoveryError):
                    ok = False
                if ok:
                    survived += 1
                    if manager.repairs > 0:
                        recovered += 1
                    baseline = _clean_edp(clean_mult, pairs, config)
                    if baseline > 0:
                        overhead_sum += guarded_cost.edp(config) / baseline
                        overhead_count += 1
                repairs += manager.repairs
                retries += manager.retries
            points.append(
                ResilienceCampaignPoint(
                    fault_rate=float(rate),
                    spare_fraction=float(spare_fraction),
                    trials=trials,
                    survived=survived,
                    recovered=recovered,
                    avg_repairs=repairs / trials if trials else 0.0,
                    avg_retries=retries / trials if trials else 0.0,
                    edp_overhead=(
                        overhead_sum / overhead_count
                        if overhead_count
                        else float("nan")
                    ),
                )
            )
    return points


def campaign_table(points: Sequence[ResilienceCampaignPoint]) -> str:
    """Render campaign points as the fixed-width table the CLI prints."""
    header = (
        f"{'rate':>8} {'spares':>7} {'yield':>6} {'recov':>6} "
        f"{'repairs':>8} {'retries':>8} {'EDP x':>7}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        edp = "nan" if p.edp_overhead != p.edp_overhead else f"{p.edp_overhead:.2f}"
        lines.append(
            f"{p.fault_rate:>8.4f} {p.spare_fraction:>7.3f} "
            f"{p.yield_fraction:>6.2f} {p.recovered_fraction:>6.2f} "
            f"{p.avg_repairs:>8.2f} {p.avg_retries:>8.2f} {edp:>7}"
        )
    return "\n".join(lines)
