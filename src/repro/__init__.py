"""APIM: Ultra-Efficient Processing In-Memory for Data Intensive Applications.

A full-system Python reproduction of Imani, Gupta and Rosing's DAC 2017
paper: an RRAM crossbar architecture computing addition and multiplication
in memory with MAGIC NOR, a configurable blocked-memory interconnect, a
majority-function sense amplifier, and two runtime-tunable approximation
mechanisms.

Quick start::

    import numpy as np
    from repro import APIMEngine, ApproxSpec

    engine = APIMEngine(spec=ApproxSpec.last_stage(16))
    products = engine.mul(np.arange(1000), np.arange(1000))
    print(engine.total_cost.cycles, "lane-cycles")

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — functional models, cost accounting, configuration.
- :mod:`repro.device` / :mod:`repro.crossbar` — VTEAM devices and the
  structural (micro-op level) crossbar simulator.
- :mod:`repro.baselines` — the GPU model (with cache/TLB/DRAM simulators)
  and the two prior in-memory adders.
- :mod:`repro.workloads` — the paper's six OpenCL applications.
- :mod:`repro.quality` / :mod:`repro.runtime` — QoS metrics, executor,
  APIM-vs-GPU comparison, adaptive tuner.
- :mod:`repro.analysis` — one driver per paper table/figure.
"""

from repro.core import (
    APIMAdder,
    APIMConfig,
    APIMEngine,
    APIMMultiplier,
    ApproxSpec,
    Cost,
    EXACT,
    default_config,
)
from repro.quality import QoSPolicy
from repro.runtime import AdaptiveTuner, APIMExecutor, ComparisonHarness

__version__ = "1.0.0"

__all__ = [
    "APIMConfig",
    "default_config",
    "APIMEngine",
    "APIMMultiplier",
    "APIMAdder",
    "ApproxSpec",
    "EXACT",
    "Cost",
    "QoSPolicy",
    "APIMExecutor",
    "ComparisonHarness",
    "AdaptiveTuner",
    "__version__",
]
