"""Write-ahead checkpoint journal for campaigns.

A campaign that runs for hours must survive being killed at any byte.
The journal is an append-only JSONL file:

- ``{"v": 1, "type": "campaign", "meta": {...}}`` — grid descriptor,
  written once per run for inspectability;
- ``{"v": 1, "type": "begin", "key": K}`` — written *before* a point
  executes (the write-ahead part: an orphaned ``begin`` marks exactly
  which point was in flight when the process died);
- ``{"v": 1, "type": "end", "key": K, "point": {...}}`` — the point's
  full payload, written after it reaches a terminal status.

Appends are a single buffered-off write of one ``\\n``-terminated line
followed by an fsync, so a crash can only ever produce a *torn tail*: a
final partial line.  :func:`load_journal` tolerates that by treating the
first unparseable record and everything after it as tail garbage, and
:func:`recover` (run automatically when a journal is opened for resume)
truncates the file back to the clean prefix so new appends never splice
into torn bytes.

The journal stores plain dicts — :mod:`repro.runtime.campaign` owns the
conversion to/from :class:`~repro.runtime.campaign.CampaignPoint`, which
keeps this module dependency-free below the campaign layer.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import CheckpointError
from repro.observability.instruments import (
    record_checkpoint_append,
    record_checkpoint_recovery,
)

__all__ = [
    "CheckpointJournal",
    "JournalState",
    "load_journal",
    "recover",
]

FORMAT_VERSION = 1


@dataclass(frozen=True)
class JournalState:
    """Everything a resuming campaign needs from a prior journal."""

    #: key -> the terminal point payload (the ``end`` record's ``point``).
    completed: dict[str, dict]
    #: keys begun but never finished (in flight at the kill).
    in_flight: tuple[str, ...]
    #: grid descriptors seen (one per prior run against this journal).
    meta: tuple[dict, ...]
    #: records parsed successfully.
    records: int
    #: torn/corrupt tail records dropped during the tolerant load.
    truncated: int


def _scan(raw: bytes) -> tuple[list[dict], int, int]:
    """(valid records, clean-prefix byte length, dropped record count)."""
    records: list[dict] = []
    offset = 0
    dropped = 0
    lines = raw.split(b"\n")
    body, tail = lines[:-1], lines[-1]
    for i, line in enumerate(body):
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError("not a journal record")
        except ValueError:
            # Append-only writes mean corruption is a tail phenomenon:
            # this record and everything after it is torn garbage.
            dropped += len(body) - i
            if tail:
                dropped += 1
            return records, offset, dropped
        records.append(record)
        offset += len(line) + 1
    if tail:  # final line never got its newline: torn mid-append
        dropped += 1
    return records, offset, dropped


def load_journal(path: str) -> JournalState:
    """Tolerantly load a journal; a missing file is an empty journal."""
    if not os.path.exists(path):
        return JournalState(
            completed={}, in_flight=(), meta=(), records=0, truncated=0
        )
    with open(path, "rb") as handle:
        raw = handle.read()
    records, _, dropped = _scan(raw)
    completed: dict[str, dict] = {}
    begun: dict[str, None] = {}  # insertion-ordered set
    meta: list[dict] = []
    for record in records:
        kind = record["type"]
        if kind == "campaign":
            meta.append(record.get("meta", {}))
        elif kind == "begin":
            begun[record["key"]] = None
        elif kind == "end":
            key = record["key"]
            completed[key] = record.get("point", {})
            begun.pop(key, None)
        # Unknown record types are skipped: forward compatibility.
    return JournalState(
        completed=completed,
        in_flight=tuple(begun),
        meta=tuple(meta),
        records=len(records),
        truncated=dropped,
    )


def recover(path: str) -> int:
    """Truncate torn tail records in place; returns records dropped.

    Idempotent and safe on a clean journal (drops nothing).  Must run
    before appending to a journal that may have died mid-write, so the
    next record starts on a clean line.
    """
    if not os.path.exists(path):
        return 0
    with open(path, "rb") as handle:
        raw = handle.read()
    _, clean_len, dropped = _scan(raw)
    if clean_len < len(raw):
        with open(path, "r+b") as handle:
            handle.truncate(clean_len)
    record_checkpoint_recovery(dropped)
    return dropped


class CheckpointJournal:
    """Append-side handle on a campaign journal.

    ``resume=False`` starts a fresh journal (truncating any existing
    file); ``resume=True`` recovers the torn tail and appends.  Usable as
    a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        if resume:
            recover(path)
        try:
            # Unbuffered binary: each append is one OS-level write.
            self._handle = open(path, "ab" if resume else "wb", buffering=0)
        except OSError as exc:
            raise CheckpointError(
                f"cannot open checkpoint journal {path!r}: {exc}"
            ) from exc

    def append(self, record: dict) -> None:
        """Atomically append one record (single write + fsync)."""
        if self._handle is None:
            raise CheckpointError(f"journal {self.path!r} is closed")
        payload = dict(record)
        payload.setdefault("v", FORMAT_VERSION)
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        self._handle.write(line.encode("utf-8") + b"\n")
        os.fsync(self._handle.fileno())
        record_checkpoint_append(payload.get("type", "unknown"))

    def describe(self, meta: dict) -> None:
        """Record the grid descriptor for this run."""
        self.append({"type": "campaign", "meta": meta})

    def begin(self, key: str) -> None:
        """Write-ahead marker: ``key`` is about to execute."""
        self.append({"type": "begin", "key": key})

    def complete(self, key: str, point: dict) -> None:
        """Terminal marker: ``key`` finished with this payload."""
        self.append({"type": "end", "key": key, "point": point})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
