"""Write-ahead checkpoint journal for campaigns.

A campaign that runs for hours must survive being killed at any byte.
The journal is an append-only JSONL file:

- ``{"v": 1, "type": "campaign", "meta": {...}}`` — grid descriptor,
  written once per run for inspectability;
- ``{"v": 1, "type": "begin", "key": K}`` — written *before* a point
  executes (the write-ahead part: an orphaned ``begin`` marks exactly
  which point was in flight when the process died);
- ``{"v": 1, "type": "end", "key": K, "point": {...}}`` — the point's
  full payload, written after it reaches a terminal status.

The append/fsync discipline and torn-tail recovery live in the shared
record-log primitive (:mod:`repro.runtime.recordlog`), which the serving
request journal builds on too; this module keeps the campaign-specific
record schema and the resume bookkeeping.  A crash can only ever produce
a *torn tail* — a final partial line — which :func:`load_journal`
tolerates and :func:`recover` (run automatically when a journal is
opened for resume) truncates back to the clean prefix.

The journal stores plain dicts — :mod:`repro.runtime.campaign` owns the
conversion to/from :class:`~repro.runtime.campaign.CampaignPoint`, which
keeps this module dependency-free below the campaign layer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import CheckpointError
from repro.observability.instruments import (
    record_checkpoint_append,
    record_checkpoint_recovery,
)
from repro.runtime.recordlog import (
    FORMAT_VERSION,
    RecordLog,
    load_records,
    recover_log,
)

__all__ = [
    "CheckpointJournal",
    "FORMAT_VERSION",
    "JournalState",
    "load_journal",
    "recover",
]

@dataclass(frozen=True)
class JournalState:
    """Everything a resuming campaign needs from a prior journal."""

    #: key -> the terminal point payload (the ``end`` record's ``point``).
    completed: dict[str, dict]
    #: keys begun but never finished (in flight at the kill).
    in_flight: tuple[str, ...]
    #: grid descriptors seen (one per prior run against this journal).
    meta: tuple[dict, ...]
    #: records parsed successfully.
    records: int
    #: torn/corrupt tail records dropped during the tolerant load.
    truncated: int


def load_journal(path: str) -> JournalState:
    """Tolerantly load a journal; a missing file is an empty journal."""
    records, dropped = load_records(path)
    completed: dict[str, dict] = {}
    begun: dict[str, None] = {}  # insertion-ordered set
    meta: list[dict] = []
    for record in records:
        kind = record["type"]
        if kind == "campaign":
            meta.append(record.get("meta", {}))
        elif kind == "begin":
            begun[record["key"]] = None
        elif kind == "end":
            key = record["key"]
            completed[key] = record.get("point", {})
            begun.pop(key, None)
        # Unknown record types are skipped: forward compatibility.
    return JournalState(
        completed=completed,
        in_flight=tuple(begun),
        meta=tuple(meta),
        records=len(records),
        truncated=dropped,
    )


def recover(path: str) -> int:
    """Truncate torn tail records in place; returns records dropped.

    Idempotent and safe on a clean journal (drops nothing).  Must run
    before appending to a journal that may have died mid-write, so the
    next record starts on a clean line.
    """
    if not os.path.exists(path):
        return 0
    dropped = recover_log(path, CheckpointError)
    record_checkpoint_recovery(dropped)
    return dropped


class CheckpointJournal:
    """Append-side handle on a campaign journal.

    ``resume=False`` starts a fresh journal (truncating any existing
    file); ``resume=True`` recovers the torn tail and appends.  Usable as
    a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        if resume:
            # Run the checkpoint-flavoured recovery (records the recovery
            # metric); RecordLog's own resume pass then finds a clean log.
            recover(path)
        self._log = RecordLog(path, resume=resume, error_cls=CheckpointError)

    def append(self, record: dict) -> None:
        """Atomically append one record (single write + fsync)."""
        payload = self._log.append(record)
        record_checkpoint_append(payload.get("type", "unknown"))

    def describe(self, meta: dict) -> None:
        """Record the grid descriptor for this run."""
        self.append({"type": "campaign", "meta": meta})

    def begin(self, key: str) -> None:
        """Write-ahead marker: ``key`` is about to execute."""
        self.append({"type": "begin", "key": key})

    def complete(self, key: str, point: dict) -> None:
        """Terminal marker: ``key`` finished with this payload."""
        self.append({"type": "end", "key": key, "point": point})

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
