"""Runtime layer (S17-S19): running workloads on APIM and comparing to GPU.

- :mod:`repro.runtime.executor` — run one workload on one engine
  configuration, score quality, roll up latency/energy/EDP.
- :mod:`repro.runtime.comparison` — APIM-vs-GPU at a dataset size
  (tile-measured APIM cost extrapolated; analytic GPU baseline).
- :mod:`repro.runtime.tuner` — the paper's adaptive accuracy controller
  (start at 32 relax bits, back off in 4-bit steps until QoS holds).
"""

from repro.runtime.campaign import CampaignPoint, CampaignResult, run_campaign
from repro.runtime.executor import APIMExecutor, ExecutionResult
from repro.runtime.comparison import ComparisonHarness, ComparisonResult
from repro.runtime.power import PowerAnalysis, PowerReport
from repro.runtime.tuner import AdaptiveTuner, TuningResult, TuningTrial

__all__ = [
    "APIMExecutor",
    "ExecutionResult",
    "ComparisonHarness",
    "ComparisonResult",
    "AdaptiveTuner",
    "TuningResult",
    "TuningTrial",
    "PowerAnalysis",
    "PowerReport",
    "run_campaign",
    "CampaignResult",
    "CampaignPoint",
]
