"""Runtime layer (S17-S19): running workloads on APIM and comparing to GPU.

- :mod:`repro.runtime.executor` — run one workload on one engine
  configuration, score quality, roll up latency/energy/EDP.
- :mod:`repro.runtime.comparison` — APIM-vs-GPU at a dataset size
  (tile-measured APIM cost extrapolated; analytic GPU baseline).
- :mod:`repro.runtime.tuner` — the paper's adaptive accuracy controller
  (start at 32 relax bits, back off in 4-bit steps until QoS holds).
- :mod:`repro.runtime.supervisor` — retries with deterministic-jitter
  backoff, per-run deadlines, per-key circuit breakers.
- :mod:`repro.runtime.checkpoint` — write-ahead JSONL campaign journal
  with torn-tail recovery and resume.
- :mod:`repro.runtime.chaos` — deterministic runtime fault injection and
  the recovery-yield campaign around it.
"""

from repro.runtime.campaign import (
    TERMINAL_STATUSES,
    CampaignPoint,
    CampaignResult,
    point_key,
    run_campaign,
)
from repro.runtime.chaos import (
    ChaosInjector,
    ChaosOutcome,
    ChaosPolicy,
    chaos_table,
    run_chaos_campaign,
)
from repro.runtime.checkpoint import CheckpointJournal, load_journal, recover
from repro.runtime.comparison import ComparisonHarness, ComparisonResult
from repro.runtime.executor import APIMExecutor, ExecutionResult
from repro.runtime.power import PowerAnalysis, PowerReport
from repro.runtime.supervisor import (
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
    RunReport,
    Supervisor,
)
from repro.runtime.trace import ChromeTraceWriter
from repro.runtime.tuner import AdaptiveTuner, TuningResult, TuningTrial

__all__ = [
    "APIMExecutor",
    "ExecutionResult",
    "ComparisonHarness",
    "ComparisonResult",
    "AdaptiveTuner",
    "TuningResult",
    "TuningTrial",
    "PowerAnalysis",
    "PowerReport",
    "run_campaign",
    "CampaignResult",
    "CampaignPoint",
    "TERMINAL_STATUSES",
    "point_key",
    "Supervisor",
    "RetryPolicy",
    "RunReport",
    "CircuitBreaker",
    "ManualClock",
    "CheckpointJournal",
    "load_journal",
    "recover",
    "ChaosPolicy",
    "ChaosInjector",
    "ChaosOutcome",
    "run_chaos_campaign",
    "chaos_table",
    "ChromeTraceWriter",
]
