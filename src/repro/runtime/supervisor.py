"""Supervised execution: retries, backoff, deadlines and circuit breakers.

`run_campaign` and the executor were written fail-fast: one transient
fault, latency spike or bad grid point killed an entire sweep.  This
module is the layer that makes long campaigns survivable:

- :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (a pure function of seed, key and attempt, so a
  rerun reproduces the exact same delays);
- :class:`CircuitBreaker` — a per-key consecutive-failure counter that
  trips into :class:`~repro.errors.CircuitOpenError` instead of hammering
  a (workload, config) combination that keeps dying, with a cooldown
  half-open probe;
- :class:`Supervisor` — wraps one callable with all of the above plus a
  per-run wall-clock deadline.  In-process kernels cannot be preempted,
  so deadline overruns are detected between attempts and after
  completion, and surfaced as :class:`~repro.errors.DeadlineExceededError`.

Clocks and sleeps are injectable (:class:`ManualClock`) so tests and the
chaos harness run simulated time: a "latency spike" is a clock advance,
not a real stall.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    FaultError,
    TransientError,
)
from repro.observability.instruments import (
    record_backoff,
    record_breaker_transition,
    record_supervision_event,
)
from repro.observability.tracing import trace_event
from repro.workloads.datagen import seeded_stream

__all__ = [
    "CircuitBreaker",
    "ManualClock",
    "RetryPolicy",
    "RunReport",
    "Supervisor",
]

T = TypeVar("T")


class ManualClock:
    """A deterministic clock that advances only when told.

    Drop-in for ``time.monotonic`` wherever the supervisor or breaker
    takes a ``clock``; chaos latency spikes and backoff sleeps advance it
    explicitly, so supervised runs are instant and reproducible.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move time forward (never backward)."""
        if seconds < 0:
            raise ConfigurationError(f"cannot advance by {seconds}s")
        self.now += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    The delay before retry ``n`` (1-based) is jittered uniformly within
    ``[base_delay, base_delay * multiplier**n]`` (capped at ``max_delay``),
    the classic exponential-backoff envelope.  The jitter fraction is
    drawn from :func:`~repro.workloads.datagen.seeded_stream` keyed by
    ``(jitter_seed, key, n)``: deterministic per run *and* decorrelated
    across keys, so a retry storm fans out instead of thundering in step.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter_seed: int = 2017
    retryable: tuple[type[BaseException], ...] = (TransientError, FaultError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                "need 0 <= base_delay <= max_delay for a backoff envelope"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.jitter_seed < 0:
            raise ConfigurationError("jitter_seed must be non-negative")

    def delay(self, attempt: int, key: str = "") -> float:
        """The backoff before retry ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1: {attempt}")
        ceiling = min(
            self.base_delay * self.multiplier**attempt, self.max_delay
        )
        rng = seeded_stream(self.jitter_seed, "backoff", key, attempt)
        return self.base_delay + float(rng.random()) * (
            ceiling - self.base_delay
        )


class CircuitBreaker:
    """Trips a key after too many consecutive failures.

    While open, :meth:`check` raises :class:`CircuitOpenError` without
    running anything.  After ``cooldown_s`` of simulated/real time the
    breaker goes half-open: one probe attempt is admitted, and its outcome
    immediately re-trips or closes the circuit.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if cooldown_s < 0:
            raise ConfigurationError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}

    def failures(self, key: str) -> int:
        """Consecutive failures recorded against a key."""
        return self._failures.get(key, 0)

    def is_open(self, key: str) -> bool:
        """True when the key is tripped and still cooling down."""
        opened = self._opened_at.get(key)
        return opened is not None and self.clock() - opened < self.cooldown_s

    def check(self, key: str) -> None:
        """Admit or reject an attempt on ``key``."""
        opened = self._opened_at.get(key)
        if opened is None:
            return
        if self.clock() - opened < self.cooldown_s:
            raise CircuitOpenError(
                f"{key}: circuit open after "
                f"{self._failures.get(key, 0)} consecutive failures"
            )
        # Half-open: admit one probe; leave the count one below threshold
        # so a failing probe re-trips instantly.
        del self._opened_at[key]
        self._failures[key] = self.failure_threshold - 1
        record_breaker_transition("half_open")

    def record_success(self, key: str) -> None:
        if key in self._failures or key in self._opened_at:
            record_breaker_transition("closed")
        self._failures.pop(key, None)
        self._opened_at.pop(key, None)

    def record_failure(self, key: str) -> None:
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count >= self.failure_threshold:
            if key not in self._opened_at:
                record_breaker_transition("open")
            self._opened_at[key] = self.clock()


@dataclass(frozen=True)
class RunReport:
    """What supervision did to get one result out."""

    key: str
    attempts: int
    status: str  # "ok" (first try) or "retried"
    elapsed_s: float
    delays: tuple[float, ...] = ()
    errors: tuple[str, ...] = ()


class Supervisor:
    """Runs callables under retry, deadline and circuit-breaker policy.

    ``observer(kind, key, t, detail)`` — if given — is called on every
    supervision event (``attempt``/``retry``/``success``/``failure``)
    with the clock reading, so callers can stream a timeline (e.g. into a
    :class:`~repro.runtime.trace.ChromeTraceWriter`).
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        deadline_s: float | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] | None = None,
        observer: Callable[[str, str, float, str], None] | None = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        self.retry = retry or RetryPolicy()
        self.deadline_s = deadline_s
        self.breaker = breaker
        self.clock = clock
        if sleep is None:
            sleep = clock.advance if isinstance(clock, ManualClock) else time.sleep
        self.sleep = sleep
        self.observer = observer

    def _emit(self, kind: str, key: str, detail: str) -> None:
        record_supervision_event(kind)
        trace_event("supervisor", kind, detail, key=key)
        if self.observer is not None:
            self.observer(kind, key, self.clock(), detail)

    def _expired(self, start: float, headroom: float = 0.0) -> bool:
        if self.deadline_s is None:
            return False
        return self.clock() - start + headroom >= self.deadline_s

    def _fail(self, key: str, detail: str) -> None:
        if self.breaker is not None:
            self.breaker.record_failure(key)
        self._emit("failure", key, detail)

    def supervise(self, key: str, fn: Callable[[], T]) -> tuple[T, RunReport]:
        """Run ``fn`` under policy; return its result and a report.

        Raises the last retryable error once attempts are exhausted,
        :class:`DeadlineExceededError` on wall-clock overrun, and
        :class:`CircuitOpenError` without calling ``fn`` when the key's
        breaker is open.  Non-retryable exceptions propagate unchanged
        (after feeding the breaker).
        """
        if self.breaker is not None:
            self.breaker.check(key)
        start = self.clock()
        delays: list[float] = []
        errors: list[str] = []
        attempt = 0
        while True:
            attempt += 1
            self._emit("attempt", key, f"attempt {attempt}")
            try:
                result = fn()
            except self.retry.retryable as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
                if attempt >= self.retry.max_attempts:
                    self._fail(key, f"retries exhausted: {errors[-1]}")
                    raise
                delay = self.retry.delay(attempt, key)
                if self._expired(start, headroom=delay):
                    self._fail(key, "deadline blown during backoff")
                    raise DeadlineExceededError(
                        f"{key}: {self.clock() - start:.3f}s elapsed + "
                        f"{delay:.3f}s backoff exceeds deadline "
                        f"{self.deadline_s}s"
                    ) from exc
                delays.append(delay)
                self._emit("retry", key, errors[-1])
                record_backoff(delay)
                self.sleep(delay)
                continue
            except CircuitOpenError:
                raise
            except Exception as exc:
                self._fail(key, f"{type(exc).__name__}: {exc}")
                raise
            elapsed = self.clock() - start
            if self._expired(start):
                self._fail(key, f"deadline exceeded after {elapsed:.3f}s")
                raise DeadlineExceededError(
                    f"{key}: completed after {elapsed:.3f}s, over the "
                    f"{self.deadline_s}s deadline"
                )
            if self.breaker is not None:
                self.breaker.record_success(key)
            status = "ok" if attempt == 1 else "retried"
            self._emit("success", key, f"{status} after {attempt} attempt(s)")
            return result, RunReport(
                key=key,
                attempts=attempt,
                status=status,
                elapsed_s=elapsed,
                delays=tuple(delays),
                errors=tuple(errors),
            )
