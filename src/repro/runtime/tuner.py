"""The adaptive accuracy controller (paper Sections 4.1 and 4.3).

"To find a proper level of accuracy, our framework computes APIM at the
maximum level of approximation (32 relax bits).  In case of large
inaccuracy, it increases the level of accuracy in 4-bit steps until
ensuring the acceptable quality of service. [...] our design detects the
application at runtime and then sets the pre-calculated value of m."

:class:`AdaptiveTuner` implements exactly that ladder: evaluate
``m = 32, 28, 24, ...`` on a calibration input until the QoS policy
accepts, then report the selected ``m`` together with every trial (the
per-``m`` QoL/EDP grid is Table 1's raw material).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approximation import ApproxSpec
from repro.errors import QoSError
from repro.quality.qos import QoSPolicy, relax_ladder
from repro.runtime.executor import APIMExecutor, ExecutionResult
from repro.workloads.base import Workload

__all__ = ["AdaptiveTuner", "TuningResult", "TuningTrial"]


@dataclass(frozen=True)
class TuningTrial:
    """One rung of the relax-bit ladder."""

    relax_bits: int
    qol_percent: float
    qos_ok: bool
    edp: float
    time: float
    energy: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of adaptive tuning for one application."""

    workload: str
    selected_relax_bits: int
    trials: tuple[TuningTrial, ...]

    @property
    def selected_trial(self) -> TuningTrial:
        """The accepted rung."""
        for trial in self.trials:
            if trial.relax_bits == self.selected_relax_bits:
                return trial
        raise QoSError(f"selected rung {self.selected_relax_bits} not in trials")

    def edp_gain_vs_exact(self, exact_edp: float) -> float:
        """EDP improvement of the selected setting over exact mode."""
        return exact_edp / self.selected_trial.edp


class AdaptiveTuner:
    """Walks the relax-bit ladder against a QoS policy."""

    def __init__(
        self,
        executor: APIMExecutor | None = None,
        max_relax_bits: int = 32,
        step: int = 4,
    ) -> None:
        if max_relax_bits <= 0 or step <= 0:
            raise QoSError("max_relax_bits and step must be positive")
        self.executor = executor or APIMExecutor()
        self.max_relax_bits = max_relax_bits
        self.step = step

    @property
    def qos(self) -> QoSPolicy:
        """The executor's acceptance policy."""
        return self.executor.qos

    def tune(
        self,
        workload: Workload,
        elements: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> TuningResult:
        """Find the largest acceptable ``m`` for a workload.

        All rungs are evaluated on the *same* calibration input.  Raises
        :class:`QoSError` if even exact mode (m = 0) fails — impossible by
        construction, but guarded because a workload whose reference
        differs from its exact run is a bug worth surfacing loudly.
        """
        rng = rng or np.random.default_rng(2017)
        data = workload.generate(
            elements or workload.default_elements, rng
        )
        trials: list[TuningTrial] = []
        # The shared ladder (qos.relax_ladder) always terminates at m = 0,
        # so exact mode is evaluated even when max is not a step multiple.
        for m in relax_ladder(self.max_relax_bits, self.step):
            result: ExecutionResult = self.executor.run(
                workload, spec=ApproxSpec.last_stage(m), data=data
            )
            trials.append(
                TuningTrial(
                    relax_bits=m,
                    qol_percent=result.qol_percent,
                    qos_ok=result.qos_ok,
                    edp=result.edp,
                    time=result.time,
                    energy=result.energy,
                )
            )
            if result.qos_ok:
                return TuningResult(
                    workload=workload.name,
                    selected_relax_bits=m,
                    trials=tuple(trials),
                )
        raise QoSError(
            f"{workload.name}: QoS unmet even in exact mode — the kernel's "
            "exact path diverges from its reference"
        )
