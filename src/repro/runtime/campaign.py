"""Experiment campaigns: grids of (workload x approximation) runs.

The benches regenerate the paper's fixed artifacts; a *campaign* is the
general tool — sweep any workload set against any relax-bit ladder at any
dataset size, collect quality/cost/comparison metrics per point, and
export the grid for plotting.  Used by the CLI's ``campaign`` command and
by downstream studies that outgrow Table 1's exact shape.

Campaigns are *supervised* on request: pass a
:class:`~repro.runtime.supervisor.Supervisor` and each point runs under
retry/backoff/deadline/circuit-breaker policy, and a point that still
cannot complete is **degraded instead of lost** —

1. walk the relax-bit rungs above the requested level
   (:meth:`~repro.quality.qos.QoSPolicy.degradation_rungs`): cheaper,
   faster, lower quality → status ``degraded``;
2. failing that, price the point on the host-CPU baseline
   (:meth:`~repro.runtime.comparison.ComparisonHarness.cpu_fallback`)
   → status ``fallback``;
3. only if even that raises does the point record ``failed`` (with NaN
   metrics) — it is never silently missing from the grid.

With ``checkpoint=`` the grid journals progress through a write-ahead
JSONL log (:mod:`repro.runtime.checkpoint`); ``resume=True`` skips points
the journal proves complete, so a SIGKILL'd campaign re-executes only
unfinished work.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig
from repro.errors import CircuitOpenError, ConfigurationError, ReproError
from repro.observability import span
from repro.observability.instruments import record_campaign_point
from repro.observability.tracing import use_trace
from repro.quality.qos import QoSPolicy
from repro.runtime.checkpoint import CheckpointJournal, load_journal
from repro.runtime.comparison import ComparisonHarness
from repro.units import GIB
from repro.workloads import workload_by_name
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.runtime.chaos import ChaosInjector
    from repro.runtime.supervisor import Supervisor
    from repro.serving.pool import CrossbarPool

__all__ = [
    "CampaignPoint",
    "CampaignResult",
    "TERMINAL_STATUSES",
    "point_key",
    "run_campaign",
    "run_point",
]

#: Every grid point ends in exactly one of these.
TERMINAL_STATUSES = ("ok", "retried", "degraded", "fallback", "failed")


def point_key(workload: str, relax_bits: int, dataset_bytes: int) -> str:
    """The stable journal/breaker identity of one grid point."""
    return f"{workload}/m{relax_bits}/{int(dataset_bytes)}B"


@dataclass(frozen=True)
class CampaignPoint:
    """One (workload, relax-bits, dataset-size) measurement."""

    workload: str
    relax_bits: int
    dataset_bytes: int
    qol_percent: float
    qos_ok: bool
    speedup: float
    energy_improvement: float
    edp_improvement: float
    apim_time_s: float
    apim_energy_j: float
    #: Terminal supervision outcome (one of :data:`TERMINAL_STATUSES`).
    status: str = "ok"
    #: Executor/harness invocations this point consumed (retries and
    #: degradation rungs included).
    attempts: int = 1
    #: Relax bits actually executed (differs from ``relax_bits`` when the
    #: point was degraded up the ladder; NaN-like -1 when ``fallback`` /
    #: ``failed`` skipped the accelerator entirely).
    effective_relax_bits: int = -1

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATUSES:
            raise ConfigurationError(
                f"status {self.status!r} not in {TERMINAL_STATUSES}"
            )

    @property
    def key(self) -> str:
        return point_key(self.workload, self.relax_bits, self.dataset_bytes)


@dataclass(frozen=True)
class CampaignResult:
    """A complete campaign grid."""

    points: tuple[CampaignPoint, ...]

    def best_within_qos(self, workload: str) -> CampaignPoint:
        """The highest-EDP-improvement point of a workload that meets QoS."""
        eligible = [
            p for p in self.points if p.workload == workload and p.qos_ok
        ]
        if not eligible:
            raise ConfigurationError(
                f"no QoS-meeting campaign point for {workload!r}"
            )
        return max(eligible, key=lambda p: p.edp_improvement)

    def status_counts(self) -> dict[str, int]:
        """How many points ended in each terminal status."""
        counts = {status: 0 for status in TERMINAL_STATUSES}
        for point in self.points:
            counts[point.status] += 1
        return counts

    @property
    def completion_yield(self) -> float:
        """Fraction of points that produced a usable measurement."""
        if not self.points:
            return 0.0
        lost = sum(1 for p in self.points if p.status == "failed")
        return 1.0 - lost / len(self.points)

    def to_rows(self) -> tuple[list[str], list[list]]:
        """Flat table for :func:`repro.analysis.export.to_csv`/``to_json``."""
        header = [
            "workload", "relax_bits", "dataset_bytes", "qol_percent",
            "qos_ok", "speedup", "energy_improvement", "edp_improvement",
            "apim_time_s", "apim_energy_J", "status", "attempts",
            "effective_relax_bits",
        ]
        rows = [
            [p.workload, p.relax_bits, p.dataset_bytes, p.qol_percent,
             p.qos_ok, p.speedup, p.energy_improvement, p.edp_improvement,
             p.apim_time_s, p.apim_energy_j, p.status, p.attempts,
             p.effective_relax_bits]
            for p in self.points
        ]
        return header, rows

    def to_csv(self) -> str:
        """The grid as CSV text."""
        from repro.analysis.export import to_csv  # deferred: avoids a cycle

        return to_csv(self.to_rows())


def _point_from_comparison(
    comparison,
    relax_bits: int,
    status: str,
    attempts: int,
    effective_relax_bits: int,
) -> CampaignPoint:
    return CampaignPoint(
        workload=comparison.workload,
        relax_bits=relax_bits,
        dataset_bytes=comparison.dataset_bytes,
        qol_percent=comparison.qol_percent,
        qos_ok=comparison.qos_ok,
        speedup=comparison.speedup,
        energy_improvement=comparison.energy_improvement,
        edp_improvement=comparison.edp_improvement,
        apim_time_s=comparison.apim_time,
        apim_energy_j=comparison.apim_energy,
        status=status,
        attempts=attempts,
        effective_relax_bits=effective_relax_bits,
    )


def _failed_point(
    workload: str, relax_bits: int, dataset_bytes: int, attempts: int
) -> CampaignPoint:
    nan = math.nan
    return CampaignPoint(
        workload=workload,
        relax_bits=relax_bits,
        dataset_bytes=dataset_bytes,
        qol_percent=nan,
        qos_ok=False,
        speedup=nan,
        energy_improvement=nan,
        edp_improvement=nan,
        apim_time_s=nan,
        apim_energy_j=nan,
        status="failed",
        attempts=attempts,
    )


def run_point(
    workload: Workload,
    level: int,
    dataset_bytes: float,
    harness,
    supervisor: "Supervisor | None" = None,
    chaos: "ChaosInjector | None" = None,
    qos: QoSPolicy | None = None,
    max_relax_bits: int = 32,
    degradation_step: int = 4,
    key_prefix: str = "",
    trace=None,
) -> CampaignPoint:
    """One grid point, end to end: supervise, degrade, fall back.

    The campaign's unit of work, exposed so other executors — notably the
    serving layer's :class:`~repro.serving.pool.CrossbarPool` shards — run
    points under the identical terminal-status contract: every call
    returns a :class:`CampaignPoint` in one of :data:`TERMINAL_STATUSES`,
    never raises a lost point.  ``key_prefix`` namespaces the supervision
    key (retry jitter, breaker state) per caller, e.g. per shard.

    ``trace`` (a :class:`~repro.observability.tracing.TraceContext`) is
    installed as the thread's ambient context for the whole rescue
    ladder, so supervisor attempts, executor runs and controller commands
    land on the owning request's timeline; degradation rungs and fallback
    transitions are recorded explicitly.
    """
    with use_trace(trace):
        return _run_point_traced(
            workload, level, dataset_bytes, harness, supervisor, chaos,
            qos, max_relax_bits, degradation_step, key_prefix, trace,
        )


def _run_point_traced(
    workload: Workload,
    level: int,
    dataset_bytes: float,
    harness,
    supervisor: "Supervisor | None",
    chaos: "ChaosInjector | None",
    qos: QoSPolicy | None,
    max_relax_bits: int,
    degradation_step: int,
    key_prefix: str,
    trace,
) -> CampaignPoint:
    qos = qos or QoSPolicy()
    key = key_prefix + point_key(workload.name, level, int(dataset_bytes))
    calls = 0

    def tevent(kind: str, detail: str = "", **attrs) -> None:
        if trace is not None:
            trace.event("campaign", kind, detail, **attrs)

    def priced(relax: int):
        def call():
            spec = ApproxSpec.last_stage(relax) if relax else EXACT
            return harness.compare(workload, dataset_bytes, spec)

        inner = chaos.wrap(key, call) if chaos is not None else call

        def counted():  # count every attempt, chaos-faulted ones included
            nonlocal calls
            calls += 1
            return inner()

        return counted

    if supervisor is None:
        # Classic fail-fast path: no supervision requested, exceptions
        # propagate to the caller unchanged.
        comparison = priced(level)()
        return _point_from_comparison(
            comparison, level, "ok", calls, effective_relax_bits=level
        )

    try:
        comparison, report = supervisor.supervise(key, priced(level))
        return _point_from_comparison(
            comparison, level, report.status, calls,
            effective_relax_bits=level,
        )
    except CircuitOpenError:
        # The breaker says this (workload, config) is sick: skip the
        # ladder (more of the same engine) and go straight to fallback.
        tevent("breaker_open", "skipping degradation ladder", key=key)
    except ReproError as exc:
        # Retries/deadline exhausted: degrade up the relax ladder.  Each
        # rung gets its own supervised budget under a distinct key so the
        # original point's breaker state does not doom the rescue.
        tevent(
            "rescue", f"{type(exc).__name__}: {exc}", requested_m=level,
        )
        for rung in qos.degradation_rungs(level, max_relax_bits,
                                          degradation_step):
            try:
                tevent("degrade_rung", rung_m=rung)
                comparison, _ = supervisor.supervise(
                    f"{key}/degrade-m{rung}", priced(rung)
                )
                return _point_from_comparison(
                    comparison, level, "degraded", calls,
                    effective_relax_bits=rung,
                )
            except ReproError:
                continue

    # Last resort: complete the point exactly on the host CPU baseline.
    # Chaos does not apply here — the fallback is the real host, not the
    # simulated accelerator.
    try:
        calls += 1
        tevent("cpu_fallback")
        comparison = harness.cpu_fallback(workload, dataset_bytes)
        return _point_from_comparison(
            comparison, level, "fallback", calls, effective_relax_bits=-1
        )
    except ReproError:
        tevent("failed", "cpu fallback raised; point recorded as failed")
        return _failed_point(
            workload.name, level, int(dataset_bytes), calls
        )


def _run_campaign_pooled(
    pool: "CrossbarPool",
    resolved: list[Workload],
    relax_levels: list[int],
    dataset_bytes: float,
    checkpoint: str | None,
    resume: bool,
    seed: int,
) -> CampaignResult:
    """The grid through the serving pool: submit all, collect in order.

    The journal protocol matches the sequential path — ``begin`` before a
    point is dispatched, ``complete`` once its terminal record exists — so
    a killed pooled campaign resumes exactly like a sequential one.
    """
    completed: dict[str, CampaignPoint] = {}
    journal: CheckpointJournal | None = None
    if checkpoint is not None:
        if resume:
            state = load_journal(checkpoint)
            for key, payload in state.completed.items():
                try:
                    completed[key] = CampaignPoint(**payload)
                except (TypeError, ReproError):
                    continue
        journal = CheckpointJournal(checkpoint, resume=resume)
        journal.describe(
            {
                "workloads": [w.name for w in resolved],
                "relax_levels": list(relax_levels),
                "dataset_bytes": int(dataset_bytes),
                "seed": seed,
                "pool_shards": pool.shard_count,
            }
        )

    pool.ensure_started()
    grid: list[tuple[str, str | None]] = []  # (point key, request id | None)
    points: list[CampaignPoint] = []
    try:
        for workload in resolved:
            for level in relax_levels:
                key = point_key(workload.name, level, int(dataset_bytes))
                if key in completed:
                    grid.append((key, None))
                    continue
                if journal is not None:
                    journal.begin(key)
                request_id = pool.submit(
                    workload=workload.name,
                    relax_bits=level,
                    dataset_bytes=int(dataset_bytes),
                    tenant="campaign",
                    priority=0,
                    block=True,
                )
                grid.append((key, request_id))
        for key, request_id in grid:
            if request_id is None:
                point = completed[key]
                record_campaign_point(point.status, resumed=True)
                points.append(point)
                continue
            result = pool.result(request_id)
            point = result.point
            if point is None:  # expired/error: keep the grid complete
                name, rest = key.split("/m", 1)
                level, size = rest.split("/", 1)
                point = _failed_point(
                    name, int(level), int(size[:-1]), result.attempts
                )
            record_campaign_point(point.status)
            if journal is not None:
                journal.complete(key, dataclasses.asdict(point))
            points.append(point)
    finally:
        if journal is not None:
            journal.close()
    return CampaignResult(points=tuple(points))


def run_campaign(
    workloads: list[Workload | str],
    relax_levels: list[int],
    dataset_bytes: float = GIB,
    config: APIMConfig | None = None,
    tile_elements: int = 1 << 12,
    supervisor: "Supervisor | None" = None,
    checkpoint: str | None = None,
    resume: bool = False,
    chaos: "ChaosInjector | None" = None,
    seed: int = 2017,
    qos: QoSPolicy | None = None,
    max_relax_bits: int = 32,
    degradation_step: int = 4,
    harness: ComparisonHarness | None = None,
    pool: "CrossbarPool | None" = None,
) -> CampaignResult:
    """Run the full (workload x relax-bits) grid at one dataset size.

    Without ``supervisor`` this is the classic fail-fast sweep.  With one,
    every point is retried/deadlined/breakered and ends in a terminal
    status (see the module docstring) — never silently missing.

    ``checkpoint`` names a JSONL journal; ``resume=True`` loads it first
    (recovering any torn tail) and re-executes only points without a
    terminal record.  ``seed`` feeds the harness's input generation so a
    resumed or replayed campaign prices identical data.

    With ``pool`` (a started-or-startable
    :class:`~repro.serving.pool.CrossbarPool`) the grid executes through
    the serving layer's sharded workers instead of this thread: points are
    submitted as internal blocking requests (backpressure, never
    admission-rejected) and collected in grid order, so campaigns gain
    multi-shard parallelism with identical semantics.  Supervision, chaos
    and QoS degradation then belong to the pool's shards — passing
    ``supervisor``/``chaos``/``harness`` alongside ``pool`` is a
    configuration error.
    """
    if not workloads:
        raise ConfigurationError("campaign needs at least one workload")
    if not relax_levels:
        raise ConfigurationError("campaign needs at least one relax level")
    if any(level < 0 for level in relax_levels):
        raise ConfigurationError("relax levels must be non-negative")
    if resume and checkpoint is None:
        raise ConfigurationError("resume=True needs a checkpoint path")
    if pool is not None and (
        supervisor is not None or chaos is not None or harness is not None
    ):
        raise ConfigurationError(
            "pool mode owns supervision/chaos/pricing per shard; do not "
            "also pass supervisor=, chaos= or harness="
        )
    resolved = [
        workload_by_name(w) if isinstance(w, str) else w for w in workloads
    ]
    if pool is not None:
        return _run_campaign_pooled(
            pool, resolved, relax_levels, dataset_bytes,
            checkpoint=checkpoint, resume=resume, seed=seed,
        )
    harness = harness or ComparisonHarness(
        config=config, tile_elements=tile_elements, rng_seed=seed
    )
    qos = qos or QoSPolicy()

    completed: dict[str, CampaignPoint] = {}
    journal: CheckpointJournal | None = None
    if checkpoint is not None:
        if resume:
            state = load_journal(checkpoint)
            for key, payload in state.completed.items():
                try:
                    completed[key] = CampaignPoint(**payload)
                except (TypeError, ReproError):
                    # Foreign/older payload shape: re-run the point rather
                    # than trust a record we cannot reconstruct.
                    continue
        journal = CheckpointJournal(checkpoint, resume=resume)
        journal.describe(
            {
                "workloads": [w.name for w in resolved],
                "relax_levels": list(relax_levels),
                "dataset_bytes": int(dataset_bytes),
                "seed": seed,
            }
        )

    points: list[CampaignPoint] = []
    try:
        for workload in resolved:
            for level in relax_levels:
                key = point_key(workload.name, level, int(dataset_bytes))
                if key in completed:
                    point = completed[key]
                    record_campaign_point(point.status, resumed=True)
                    points.append(point)
                    continue
                if journal is not None:
                    journal.begin(key)
                with span("campaign.point", key=key):
                    point = run_point(
                        workload, level, dataset_bytes, harness, supervisor,
                        chaos, qos, max_relax_bits, degradation_step,
                    )
                record_campaign_point(point.status)
                if journal is not None:
                    journal.complete(key, dataclasses.asdict(point))
                points.append(point)
    finally:
        if journal is not None:
            journal.close()
    return CampaignResult(points=tuple(points))
