"""Experiment campaigns: grids of (workload x approximation) runs.

The benches regenerate the paper's fixed artifacts; a *campaign* is the
general tool — sweep any workload set against any relax-bit ladder at any
dataset size, collect quality/cost/comparison metrics per point, and
export the grid for plotting.  Used by the CLI's ``campaign`` command and
by downstream studies that outgrow Table 1's exact shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig
from repro.errors import ConfigurationError
from repro.runtime.comparison import ComparisonHarness
from repro.units import GIB
from repro.workloads import workload_by_name
from repro.workloads.base import Workload

__all__ = ["CampaignPoint", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignPoint:
    """One (workload, relax-bits, dataset-size) measurement."""

    workload: str
    relax_bits: int
    dataset_bytes: int
    qol_percent: float
    qos_ok: bool
    speedup: float
    energy_improvement: float
    edp_improvement: float
    apim_time_s: float
    apim_energy_j: float


@dataclass(frozen=True)
class CampaignResult:
    """A complete campaign grid."""

    points: tuple[CampaignPoint, ...]

    def best_within_qos(self, workload: str) -> CampaignPoint:
        """The highest-EDP-improvement point of a workload that meets QoS."""
        eligible = [
            p for p in self.points if p.workload == workload and p.qos_ok
        ]
        if not eligible:
            raise ConfigurationError(
                f"no QoS-meeting campaign point for {workload!r}"
            )
        return max(eligible, key=lambda p: p.edp_improvement)

    def to_rows(self) -> tuple[list[str], list[list]]:
        """Flat table for :func:`repro.analysis.export.to_csv`/``to_json``."""
        header = [
            "workload", "relax_bits", "dataset_bytes", "qol_percent",
            "qos_ok", "speedup", "energy_improvement", "edp_improvement",
            "apim_time_s", "apim_energy_J",
        ]
        rows = [
            [p.workload, p.relax_bits, p.dataset_bytes, p.qol_percent,
             p.qos_ok, p.speedup, p.energy_improvement, p.edp_improvement,
             p.apim_time_s, p.apim_energy_j]
            for p in self.points
        ]
        return header, rows

    def to_csv(self) -> str:
        """The grid as CSV text."""
        from repro.analysis.export import to_csv  # deferred: avoids a cycle

        return to_csv(self.to_rows())


def run_campaign(
    workloads: list[Workload | str],
    relax_levels: list[int],
    dataset_bytes: float = GIB,
    config: APIMConfig | None = None,
    tile_elements: int = 1 << 12,
) -> CampaignResult:
    """Run the full (workload x relax-bits) grid at one dataset size."""
    if not workloads:
        raise ConfigurationError("campaign needs at least one workload")
    if not relax_levels:
        raise ConfigurationError("campaign needs at least one relax level")
    if any(level < 0 for level in relax_levels):
        raise ConfigurationError("relax levels must be non-negative")
    resolved = [
        workload_by_name(w) if isinstance(w, str) else w for w in workloads
    ]
    harness = ComparisonHarness(config=config, tile_elements=tile_elements)
    points = []
    for workload in resolved:
        for level in relax_levels:
            spec = ApproxSpec.last_stage(level) if level else EXACT
            comparison = harness.compare(workload, dataset_bytes, spec)
            points.append(
                CampaignPoint(
                    workload=workload.name,
                    relax_bits=level,
                    dataset_bytes=int(dataset_bytes),
                    qol_percent=comparison.qol_percent,
                    qos_ok=comparison.qos_ok,
                    speedup=comparison.speedup,
                    energy_improvement=comparison.energy_improvement,
                    edp_improvement=comparison.edp_improvement,
                    apim_time_s=comparison.apim_time,
                    apim_energy_j=comparison.apim_energy,
                )
            )
    return CampaignResult(points=tuple(points))
