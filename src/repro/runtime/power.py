"""Power analysis of APIM executions.

Energy totals answer "how much"; deployments also ask "how fast does it
drain" — peak draw sizes the power delivery network and thermal envelope
of a DIMM-form-factor accelerator.  This module turns an engine's cost
ledger into:

- per-phase average power (multiply / add / interconnect phases);
- the machine's peak concurrent power (all lanes active);
- a power-envelope check against a configurable budget (DIMM sockets are
  specified around 15 W).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost, CostLedger
from repro.errors import ConfigurationError

__all__ = ["PowerAnalysis", "PhasePower", "PowerReport"]

#: DIMM-socket power budget in watts (JEDEC-ish envelope).
DEFAULT_BUDGET_W = 15.0


@dataclass(frozen=True)
class PhasePower:
    """Average power of one ledger phase."""

    phase: str
    energy: float
    time: float

    @property
    def watts(self) -> float:
        """Average power over the phase (0 for zero-duration phases)."""
        return self.energy / self.time if self.time > 0 else 0.0


@dataclass(frozen=True)
class PowerReport:
    """Machine-level power summary of one execution."""

    phases: tuple[PhasePower, ...]
    average_watts: float
    peak_watts: float
    budget_watts: float

    @property
    def within_budget(self) -> bool:
        """True when the peak stays under the socket budget."""
        return self.peak_watts <= self.budget_watts

    def phase(self, name: str) -> PhasePower:
        """Fetch one phase by ledger label."""
        for item in self.phases:
            if item.phase == name:
                return item
        raise ConfigurationError(f"phase {name!r} not in the report")


class PowerAnalysis:
    """Derives power figures from cost ledgers.

    Parameters
    ----------
    config:
        Machine constants.
    budget_watts:
        Socket power envelope for :attr:`PowerReport.within_budget`.
    """

    def __init__(
        self,
        config: APIMConfig | None = None,
        budget_watts: float = DEFAULT_BUDGET_W,
    ) -> None:
        if budget_watts <= 0:
            raise ConfigurationError("budget must be positive")
        self.config = config or default_config()
        self.budget_watts = budget_watts

    def lane_power(self) -> float:
        """Sustained power of ONE active lane.

        One lane executes one MAGIC cycle per cycle time; the energy of a
        lane-cycle is the peripheral constant plus the lane's average
        dynamic (NOR) activity — conservatively one full row of NOR
        firings per cycle.
        """
        cfg = self.config
        per_cycle = cfg.e_peripheral + cfg.e_nor * cfg.word_bits * 2
        return per_cycle / cfg.cycle_time

    def peak_power(self, dataset_bytes: float) -> float:
        """All-lanes-active power for a resident dataset."""
        lanes = self.config.parallel_lanes(dataset_bytes)
        blocks = self.config.blocks_for(dataset_bytes)
        static = blocks * self.config.p_static_per_block
        return lanes * self.lane_power() + static

    def report(
        self,
        ledger: CostLedger,
        dataset_bytes: float,
        lanes: int | None = None,
    ) -> PowerReport:
        """Power summary of an executed workload's ledger."""
        if dataset_bytes <= 0:
            raise ConfigurationError("dataset size must be positive")
        cfg = self.config
        lanes = lanes or cfg.parallel_lanes(dataset_bytes)
        blocks = cfg.blocks_for(dataset_bytes)
        phases = []
        for label in ledger.labels():
            cost: Cost = ledger.entry(label)
            time = cost.time(cfg, lanes)
            energy = cost.energy(cfg, lanes, active_blocks=blocks)
            phases.append(PhasePower(phase=label, energy=energy, time=time))
        total = ledger.total
        total_time = total.time(cfg, lanes)
        total_energy = total.energy(cfg, lanes, active_blocks=blocks)
        return PowerReport(
            phases=tuple(phases),
            average_watts=total_energy / total_time if total_time else 0.0,
            peak_watts=self.peak_power(dataset_bytes),
            budget_watts=self.budget_watts,
        )

    def max_lanes_within_budget(self, dataset_bytes: float) -> int:
        """Largest lane count whose peak stays in the socket envelope.

        The knob a power-capped deployment turns: throttle lanes (spend
        latency) to fit the budget.
        """
        blocks = self.config.blocks_for(dataset_bytes)
        static = blocks * self.config.p_static_per_block
        headroom = self.budget_watts - static
        if headroom <= 0:
            return 0
        return max(0, int(headroom / self.lane_power()))
