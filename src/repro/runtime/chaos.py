"""Deterministic runtime fault injection for the supervised campaign.

The resilience subsystem (PR 1) hardened the *array*; this module attacks
the layer above it so the supervisor/checkpoint/degradation machinery can
be exercised end to end.  A :class:`ChaosInjector` wraps each grid
point's pricing callable and, per call, injects one of

- a **transient engine fault** — :class:`~repro.errors.TransientError`,
  the retry-with-backoff path;
- a **latency spike** — the shared :class:`ManualClock` jumps forward
  before the call runs, the deadline path;
- **unmaskable output corruption** — :class:`~repro.errors.FaultError`,
  exactly the type the PR-1 residue checker escalates when corruption
  survives its bounded repair loop, so supervision treats simulated
  fabric corruption and injected corruption identically.  For
  fabric-level corruption through the real PR-1 hooks, see
  :func:`faulty_resilience_context`.

Every decision is a pure function of ``(seed, point key, call index)``
via :func:`~repro.workloads.datagen.seeded_stream`: rerunning a chaos
campaign with the same seed injects the identical fault sequence, so
recovery behaviour is reproducible bit for bit.

:func:`run_chaos_campaign` assembles the whole rig — injector, manual
clock, supervisor, breaker, optional checkpoint and Chrome trace — and
reports completion yield, retry counts and the degradation mix.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import ConfigurationError, FaultError, TransientError
from repro.runtime.campaign import CampaignResult, run_campaign
from repro.runtime.supervisor import (
    CircuitBreaker,
    ManualClock,
    RetryPolicy,
    Supervisor,
)
from repro.units import MIB
from repro.workloads.datagen import seeded_stream

__all__ = [
    "ChaosInjector",
    "ChaosOutcome",
    "ChaosPolicy",
    "chaos_table",
    "faulty_resilience_context",
    "run_chaos_campaign",
]

T = TypeVar("T")


@dataclass(frozen=True)
class ChaosPolicy:
    """Per-call injection probabilities and the seed deriving them."""

    transient_rate: float = 0.0
    latency_rate: float = 0.0
    latency_spike_s: float = 30.0
    corrupt_rate: float = 0.0
    #: Probability that a subprocess shard worker is SIGKILL'd mid-request.
    #: Drawn from its own stream ("worker-kill") with its own call counter,
    #: so enabling it never perturbs the transient/latency/corrupt sequence
    #: of an existing seed — and it is excluded from the one-fault-per-call
    #: sum constraint for the same reason (it is a process-level fault, not
    #: a call-level one).
    worker_kill_rate: float = 0.0
    seed: int = 2017

    def __post_init__(self) -> None:
        rates = (self.transient_rate, self.latency_rate, self.corrupt_rate)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ConfigurationError("chaos rates must be in [0, 1]")
        if sum(rates) > 1.0:
            raise ConfigurationError(
                "chaos rates must sum to at most 1 (one fault per call)"
            )
        if not 0.0 <= self.worker_kill_rate <= 1.0:
            raise ConfigurationError("worker_kill_rate must be in [0, 1]")
        if self.latency_spike_s < 0:
            raise ConfigurationError("latency_spike_s must be non-negative")
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")


class ChaosInjector:
    """Wraps callables with deterministic fault injection.

    ``clock`` (a :class:`ManualClock`) absorbs latency spikes as
    simulated time; without one the spike degenerates to a no-op rather
    than a real stall — chaos runs must stay fast.
    """

    def __init__(
        self, policy: ChaosPolicy, clock: ManualClock | None = None
    ) -> None:
        self.policy = policy
        self.clock = clock
        self._calls: dict[str, int] = {}
        self._kill_calls: dict[str, int] = {}
        self.injected = {
            "transient": 0, "latency": 0, "corrupt": 0, "worker_kill": 0,
        }
        # The serving pool gives every shard a private injector, but the
        # call/injection counters are still lock-guarded so a single
        # injector shared across threads keeps exact counts and each
        # (key, call-index) pair is claimed by exactly one caller.
        self._lock = threading.Lock()

    def _decide(self, key: str, call: int) -> str:
        """The fault kind for one (key, call): pure in (seed, key, call)."""
        draw = float(seeded_stream(self.policy.seed, "chaos", key, call).random())
        p = self.policy
        if draw < p.transient_rate:
            return "transient"
        if draw < p.transient_rate + p.latency_rate:
            return "latency"
        if draw < p.transient_rate + p.latency_rate + p.corrupt_rate:
            return "corrupt"
        return "clean"

    def wrap(self, key: str, fn: Callable[[], T]) -> Callable[[], T]:
        """A chaotic version of ``fn``, keyed for deterministic draws."""

        def chaotic() -> T:
            with self._lock:
                index = self._calls.get(key, 0)
                self._calls[key] = index + 1
            kind = self._decide(key, index)
            if kind == "transient":
                with self._lock:
                    self.injected["transient"] += 1
                raise TransientError(
                    f"chaos: transient engine fault ({key}, call {index})"
                )
            if kind == "corrupt":
                with self._lock:
                    self.injected["corrupt"] += 1
                raise FaultError(
                    f"chaos: unmaskable output corruption "
                    f"({key}, call {index})"
                )
            if kind == "latency":
                with self._lock:
                    self.injected["latency"] += 1
                if self.clock is not None:
                    self.clock.advance(self.policy.latency_spike_s)
            return fn()

        return chaotic

    def should_kill_worker(self, key: str) -> bool:
        """Deterministic draw for the ``worker_kill`` fault: should the
        subprocess worker executing this dispatch be SIGKILL'd mid-request?

        Uses its own stream namespace (``worker-kill``) and per-key call
        counter, fully decoupled from :meth:`wrap`'s draws, so turning the
        rate on (or off) never changes which transient/latency/corrupt
        faults an existing seed injects.
        """
        if self.policy.worker_kill_rate <= 0.0:
            return False
        with self._lock:
            index = self._kill_calls.get(key, 0)
            self._kill_calls[key] = index + 1
        draw = float(
            seeded_stream(self.policy.seed, "worker-kill", key, index).random()
        )
        if draw < self.policy.worker_kill_rate:
            with self._lock:
                self.injected["worker_kill"] += 1
            return True
        return False

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


def faulty_resilience_context(
    policy: ChaosPolicy,
    blocks: int = 2,
    rows: int = 64,
    cols: int = 64,
    stuck_rate: float = 0.002,
    spare_fraction: float = 0.15,
):
    """A :class:`~repro.resilience.engine.ResilienceContext` whose fabric
    carries chaos-seeded stuck cells — corruption injected through the
    PR-1 hooks (:meth:`BlockedCrossbar.attach_fault_injector`) rather than
    as an exception, for tests that want the full detect/repair loop to
    chew on chaos-controlled faults."""
    from repro.crossbar.block import BlockedCrossbar
    from repro.device.variation import FaultInjector, VariationModel
    from repro.resilience.engine import ResilienceContext
    from repro.resilience.policy import ResiliencePolicy

    fabric = BlockedCrossbar(blocks, rows, cols)
    model = VariationModel(
        stuck_on_rate=stuck_rate / 2, stuck_off_rate=stuck_rate / 2
    )
    for block in range(blocks):
        block_seed = int(
            seeded_stream(policy.seed, "fabric", block).integers(0, 2**31)
        )
        fabric.attach_fault_injector(
            block, FaultInjector(model, seed=block_seed)
        )
    return ResilienceContext(
        fabric, ResiliencePolicy(spare_fraction=spare_fraction)
    )


@dataclass(frozen=True)
class ChaosOutcome:
    """One chaos campaign: the policy it ran under and what survived."""

    policy: ChaosPolicy
    result: CampaignResult
    injected: dict[str, int] = field(default_factory=dict)

    @property
    def status_counts(self) -> dict[str, int]:
        return self.result.status_counts()

    @property
    def completion_yield(self) -> float:
        return self.result.completion_yield

    @property
    def total_attempts(self) -> int:
        return sum(p.attempts for p in self.result.points)

    @property
    def total_retries(self) -> int:
        """Extra pricing calls beyond the first, summed over the grid."""
        return sum(max(0, p.attempts - 1) for p in self.result.points)

    @property
    def total_injected(self) -> int:
        """Faults the injector actually fired, over all kinds."""
        return sum(self.injected.values())


def run_chaos_campaign(
    workloads: list | None = None,
    relax_levels: list[int] | None = None,
    policy: ChaosPolicy | None = None,
    dataset_bytes: float = 64 * MIB,
    tile_elements: int = 1 << 10,
    max_attempts: int = 4,
    deadline_s: float | None = 120.0,
    checkpoint: str | None = None,
    resume: bool = False,
    trace_path: str | None = None,
) -> ChaosOutcome:
    """A supervised campaign under deterministic injected chaos.

    Wires the manual clock through the supervisor, breaker and injector
    so latency spikes, backoff sleeps and breaker cooldowns all tick the
    same simulated time.  With ``trace_path`` the supervision timeline is
    streamed to a crash-safe Chrome trace
    (:class:`~repro.runtime.trace.ChromeTraceWriter`).
    """
    from repro.runtime.trace import ChromeTraceWriter

    workloads = workloads or ["Sobel", "Robert"]
    relax_levels = relax_levels if relax_levels is not None else [0, 16, 32]
    policy = policy or ChaosPolicy(transient_rate=0.1)
    clock = ManualClock()
    chaos = ChaosInjector(policy, clock=clock)
    writer = (
        ChromeTraceWriter(trace_path) if trace_path is not None else None
    )

    def observer(kind: str, key: str, t: float, detail: str) -> None:
        if writer is not None:
            writer.instant(f"{kind}:{key}", t * 1e6, detail=detail)

    supervisor = Supervisor(
        retry=RetryPolicy(
            max_attempts=max_attempts,
            base_delay=0.01,
            jitter_seed=policy.seed,
        ),
        deadline_s=deadline_s,
        breaker=CircuitBreaker(clock=clock),
        clock=clock,
        observer=observer,
    )
    try:
        result = run_campaign(
            workloads,
            relax_levels,
            dataset_bytes=dataset_bytes,
            tile_elements=tile_elements,
            supervisor=supervisor,
            chaos=chaos,
            seed=policy.seed,
            checkpoint=checkpoint,
            resume=resume,
        )
    finally:
        if writer is not None:
            writer.close()
    return ChaosOutcome(
        policy=policy, result=result, injected=dict(chaos.injected)
    )


def chaos_table(outcomes: list[ChaosOutcome]) -> str:
    """Yield/retry/degradation mix per chaos rate, paper-table style."""
    header = (
        f"{'transient':>9} {'points':>6} {'ok':>4} {'retried':>7} "
        f"{'degraded':>8} {'fallback':>8} {'failed':>6} {'retries':>7} "
        f"{'injected':>8} {'yield':>7}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        counts = outcome.status_counts
        lines.append(
            f"{outcome.policy.transient_rate:>9.2f} "
            f"{len(outcome.result.points):>6} "
            f"{counts['ok']:>4} {counts['retried']:>7} "
            f"{counts['degraded']:>8} {counts['fallback']:>8} "
            f"{counts['failed']:>6} {outcome.total_retries:>7} "
            f"{sum(outcome.injected.values()):>8} "
            f"{100 * outcome.completion_yield:>6.1f}%"
        )
    return "\n".join(lines)
