"""Execution-trace export: schedules and ledgers as Chrome trace events.

``chrome://tracing`` / Perfetto's JSON event format is the lingua franca
of timeline visualisation; this module serialises

- a compiler :class:`~repro.compiler.scheduler.Schedule` (one track per
  lane, one slice per scheduled node),
- an engine :class:`~repro.core.cost.CostLedger` (one slice per phase),
- a resilience event log (one instant event per detection/repair), so
  reliability incidents can be lined up against the execution timeline,
- and a live supervision timeline through :class:`ChromeTraceWriter`,
  whose every flush leaves a complete, loadable document on disk — a
  campaign killed or crashed mid-grid still produces an inspectable
  trace,

so simulator runs can be inspected in any trace viewer.  Timestamps are
in microseconds of simulated time (cycles x cycle time), as the format
expects.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import TYPE_CHECKING, Sequence

from repro.compiler.ir import Kernel
from repro.compiler.scheduler import Schedule
from repro.core.config import APIMConfig, default_config
from repro.core.cost import CostLedger
from repro.errors import ConfigurationError
from repro.units import cycles_to_us

if TYPE_CHECKING:
    from repro.resilience.manager import ReliabilityEvent

__all__ = [
    "ChromeTraceWriter",
    "schedule_to_chrome_trace",
    "ledger_to_chrome_trace",
    "reliability_events_to_chrome_trace",
]


def _cycles_to_us(cycles: float, config: APIMConfig) -> float:
    return cycles_to_us(cycles, config.cycle_time)


class ChromeTraceWriter:
    """An incrementally-flushed Chrome trace file that survives crashes.

    The one-shot exporters below serialise after the run succeeds, which
    loses the trace exactly when it is most wanted — on a failure.  This
    writer buffers events and, on every flush, atomically replaces the
    target file with a *complete* JSON document (write to a temp file in
    the same directory, then ``os.replace``), so the file on disk is
    loadable at every instant.  Used as a context manager it flushes on
    the failure path too: ``__exit__`` writes whatever was buffered even
    while an exception is propagating, and never swallows it.
    """

    def __init__(self, path: str, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ConfigurationError("flush_every must be at least 1")
        self.path = path
        self.flush_every = flush_every
        self._events: list[dict] = []
        self._pending = 0
        self._closed = False
        # Concurrent executors share one writer; buffer mutation, the
        # pending counter and the flush swap all happen under this lock.
        self._lock = threading.RLock()

    def add(self, event: dict) -> None:
        """Buffer one raw trace event, flushing per policy.

        Thread-safe: spans emitted from several executor threads interleave
        without tearing the buffer or racing a flush.  Events missing
        ``pid``/``tid`` are stamped with the real process and thread ids so
        concurrent tracks render separately in the viewer.
        """
        event.setdefault("pid", os.getpid())
        event.setdefault("tid", threading.get_ident())
        with self._lock:
            if self._closed:
                raise ConfigurationError(
                    f"trace writer {self.path!r} is closed"
                )
            self._events.append(event)
            self._pending += 1
            if self._pending >= self.flush_every:
                self.flush()

    def instant(
        self, name: str, ts_us: float, tid: int | None = None, **args
    ) -> None:
        """An instant event (``ph: "i"``) at a timestamp in microseconds.

        ``tid`` defaults to the calling thread's id (stamped by
        :meth:`add`), so concurrent emitters separate into tracks.
        """
        event: dict = {
            "name": name, "ph": "i", "ts": ts_us, "s": "t", "args": args,
        }
        if tid is not None:
            event["tid"] = tid
        self.add(event)

    def slice(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        tid: int | None = None,
        **args,
    ) -> None:
        """A complete-duration event (``ph: "X"``); ``tid`` as in
        :meth:`instant`."""
        event: dict = {
            "name": name, "ph": "X", "ts": ts_us, "dur": dur_us,
            "args": args,
        }
        if tid is not None:
            event["tid"] = tid
        self.add(event)

    def flush(self) -> None:
        """Atomically rewrite the target as a complete, loadable trace."""
        with self._lock:
            payload = json.dumps(
                {"traceEvents": list(self._events), "displayTimeUnit": "ns"}
            )
            directory = os.path.dirname(os.path.abspath(self.path))
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".trace.tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp, self.path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._pending = 0

    @property
    def events(self) -> tuple[dict, ...]:
        """Everything buffered so far (flushed or not)."""
        with self._lock:
            return tuple(self._events)

    def close(self) -> None:
        """Final flush; idempotent."""
        with self._lock:
            if not self._closed:
                self.flush()
                self._closed = True

    def __enter__(self) -> "ChromeTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        # Flush on success *and* failure; never swallow the exception.
        self.close()


def schedule_to_chrome_trace(
    schedule: Schedule,
    kernel: Kernel,
    config: APIMConfig | None = None,
) -> str:
    """Serialise a lane schedule as a Chrome trace JSON string.

    Lanes become threads of one process; free (zero-duration) nodes are
    emitted as instant events so data movement stays visible.
    """
    config = config or default_config()
    if schedule.kernel != kernel.name:
        raise ConfigurationError(
            f"schedule is for {schedule.kernel!r}, kernel is {kernel.name!r}"
        )
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": f"APIM kernel {kernel.name!r}"},
        }
    ]
    for lane in range(schedule.lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": lane,
                "args": {"name": f"lane {lane}"},
            }
        )
    for placement in schedule.placements:
        node = kernel.node(placement.node_id)
        label = f"{node.kind.value}#{node.id}"
        if placement.end > placement.start:
            events.append(
                {
                    "name": label,
                    "ph": "X",
                    "pid": 1,
                    "tid": placement.lane,
                    "ts": _cycles_to_us(placement.start, config),
                    "dur": _cycles_to_us(
                        placement.end - placement.start, config
                    ),
                    "args": {"operands": list(node.operands)},
                }
            )
        else:
            events.append(
                {
                    "name": label,
                    "ph": "i",
                    "pid": 1,
                    "tid": max(placement.lane, 0),
                    "ts": _cycles_to_us(placement.start, config),
                    "s": "t",
                }
            )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ns"})


def ledger_to_chrome_trace(
    ledger: CostLedger,
    config: APIMConfig | None = None,
    lanes: int = 1,
) -> str:
    """Serialise a cost ledger as sequential phase slices.

    Ledger entries carry no start times (they are aggregates), so phases
    are laid end to end in insertion order — the right picture for the
    engine's sequential charge pattern.
    """
    config = config or default_config()
    if lanes <= 0:
        raise ConfigurationError(f"lanes must be positive: {lanes}")
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "APIM execution phases"},
        }
    ]
    cursor = 0.0
    for label in ledger.labels():
        cost = ledger.entry(label)
        duration = _cycles_to_us(cost.cycles / lanes, config)
        events.append(
            {
                "name": label,
                "ph": "X",
                "pid": 1,
                "tid": 0,
                "ts": cursor,
                "dur": duration,
                "args": {
                    "cycles": cost.cycles,
                    "nor_ops": cost.nor_ops,
                    "energy_J": cost.energy(config, lanes),
                },
            }
        )
        cursor += duration
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ns"})


def reliability_events_to_chrome_trace(
    events: "Sequence[ReliabilityEvent]",
    config: APIMConfig | None = None,
) -> str:
    """Serialise a resilience event log as instant events on one track.

    Each :class:`~repro.resilience.manager.ReliabilityEvent` carries the
    fabric cycle it happened at, so scans, detections, retirements and
    retries land at their true positions on the simulated timeline.
    """
    config = config or default_config()
    trace: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "APIM reliability events"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "resilience"},
        },
    ]
    for event in events:
        trace.append(
            {
                "name": event.kind,
                "ph": "i",
                "pid": 1,
                "tid": 0,
                "ts": _cycles_to_us(event.cycle, config),
                "s": "t",
                "args": {"detail": event.detail},
            }
        )
    return json.dumps({"traceEvents": trace, "displayTimeUnit": "ns"})
