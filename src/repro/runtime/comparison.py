"""APIM-vs-GPU comparison at arbitrary dataset sizes (paper Section 4.2).

The paper sweeps dataset sizes up to 1 GB.  APIM's per-element cost is
constant (the dataset is resident; computation is local to each block
pair), so the harness measures APIM on a tile and extrapolates the cost
counters linearly — with a pass correction for workloads whose sweep count
depends on the dataset size (FFT's ``log2 n``).  The GPU side comes from
the analytic model fed by the trace-driven cache simulator.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.baselines.gpu import GPUEstimate, GPUModel
from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig, default_config
from repro.errors import ConfigurationError
from repro.runtime.executor import APIMExecutor, ExecutionResult

__all__ = ["ComparisonHarness", "ComparisonResult"]


@dataclass(frozen=True)
class ComparisonResult:
    """APIM vs GPU at one (workload, dataset size, approximation) point."""

    workload: str
    dataset_bytes: int
    spec: ApproxSpec
    apim_time: float
    apim_energy: float
    gpu_time: float
    gpu_energy: float
    qol_percent: float
    qos_ok: bool

    @property
    def speedup(self) -> float:
        """GPU time / APIM time (>1 means APIM is faster)."""
        return self.gpu_time / self.apim_time

    @property
    def energy_improvement(self) -> float:
        """GPU energy / APIM energy."""
        return self.gpu_energy / self.apim_energy

    @property
    def edp_improvement(self) -> float:
        """GPU EDP / APIM EDP — the paper's headline metric."""
        return (self.gpu_energy * self.gpu_time) / (
            self.apim_energy * self.apim_time
        )


class ComparisonHarness:
    """Prices workloads on APIM and the GPU baseline at any dataset size."""

    def __init__(
        self,
        config: APIMConfig | None = None,
        gpu: GPUModel | None = None,
        tile_elements: int = 1 << 14,
        rng_seed: int = 2017,
    ) -> None:
        if tile_elements <= 0:
            raise ConfigurationError("tile_elements must be positive")
        self.config = config or default_config()
        self.gpu = gpu or GPUModel()
        self.executor = APIMExecutor(self.config)
        self.tile_elements = tile_elements
        self.rng_seed = rng_seed
        self._tile_cache: dict[tuple[str, ApproxSpec], ExecutionResult] = {}
        self._cpu = None  # lazy CPUModel, built on first cpu_fallback
        # The serving pool gives every shard a private harness, but the
        # cache and lazy CPU model are still guarded so one harness shared
        # across threads (a misconfiguration, or deliberate reuse) stays
        # correct rather than racing dict mutations.
        self._lock = threading.Lock()

    # -- APIM side ----------------------------------------------------------

    def _tile_result(self, workload, spec: ApproxSpec) -> ExecutionResult:
        key = (workload.name, spec)
        with self._lock:
            cached = self._tile_cache.get(key)
        if cached is not None:
            return cached
        result = self.executor.run(
            workload,
            spec=spec,
            elements=self.tile_elements,
            rng=np.random.default_rng(self.rng_seed),
        )
        with self._lock:
            # Two threads may race to compute the same tile; both results
            # are identical (seeded RNG), so first-write-wins is safe.
            return self._tile_cache.setdefault(key, result)

    def apim_estimate(
        self, workload, dataset_bytes: float, spec: ApproxSpec = EXACT
    ) -> tuple[float, float, ExecutionResult]:
        """(time, energy, tile result) of APIM at a dataset size.

        Cost counters measured on the tile scale by element count and by
        the pass-count ratio (FFT does more sweeps over bigger datasets);
        time additionally divides by the larger lane allocation of the
        resident dataset.
        """
        tile = self._tile_result(workload, spec)
        profile = workload.profile()
        elements = profile.elements(dataset_bytes)
        pass_ratio = profile.passes(elements) / profile.passes(tile.elements)
        scale = (elements / tile.elements) * pass_ratio
        cost = tile.cost.scaled(scale)
        lanes = self.config.parallel_lanes(dataset_bytes)
        blocks = self.config.blocks_for(dataset_bytes)
        time = cost.time(self.config, lanes)
        energy = cost.energy(self.config, lanes, active_blocks=blocks)
        return time, energy, tile

    # -- comparison ---------------------------------------------------------

    def cpu_fallback(self, workload, dataset_bytes: float) -> ComparisonResult:
        """Price the point on the host-CPU baseline instead of APIM.

        The supervised campaign's last resort: when a point cannot be
        completed on the simulated accelerator at *any* relax level, the
        work still completes — exactly, on a conventional core.  The
        ``apim_*`` fields carry the CPU's cost, so the exported speedup /
        energy / EDP columns honestly read "what this point achieved
        relative to the GPU baseline" (usually < 1).  Quality is exact by
        construction (QoL 0, QoS met).
        """
        from repro.baselines.cpu import CPUModel  # deferred: keeps the
        # CPU baseline out of every non-degraded campaign's import path.

        with self._lock:
            if self._cpu is None:
                self._cpu = CPUModel()
        profile = workload.profile()
        cpu = self._cpu.estimate(profile, dataset_bytes)
        gpu: GPUEstimate = self.gpu.estimate(profile, dataset_bytes)
        return ComparisonResult(
            workload=workload.name,
            dataset_bytes=int(dataset_bytes),
            spec=EXACT,
            apim_time=cpu.time,
            apim_energy=cpu.energy,
            gpu_time=gpu.time,
            gpu_energy=gpu.energy,
            qol_percent=0.0,
            qos_ok=True,
        )

    def compare(
        self, workload, dataset_bytes: float, spec: ApproxSpec = EXACT
    ) -> ComparisonResult:
        """Full APIM-vs-GPU comparison at one point."""
        apim_time, apim_energy, tile = self.apim_estimate(
            workload, dataset_bytes, spec
        )
        gpu: GPUEstimate = self.gpu.estimate(workload.profile(), dataset_bytes)
        return ComparisonResult(
            workload=workload.name,
            dataset_bytes=int(dataset_bytes),
            spec=spec,
            apim_time=apim_time,
            apim_energy=apim_energy,
            gpu_time=gpu.time,
            gpu_energy=gpu.energy,
            qol_percent=tile.qol_percent,
            qos_ok=tile.qos_ok,
        )

    def sweep_sizes(
        self, workload, sizes: list[float], spec: ApproxSpec = EXACT
    ) -> list[ComparisonResult]:
        """The Figure 5 sweep: one comparison per dataset size."""
        return [self.compare(workload, size, spec) for size in sizes]
