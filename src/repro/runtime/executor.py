"""Workload execution on APIM with quality scoring and cost roll-up.

The executor owns the common experiment loop: generate an input, run the
kernel through an engine at some approximation setting, score the result
against the golden reference, and convert the engine's accumulated
:class:`~repro.core.cost.Cost` into wall-clock time, energy and EDP under
the machine's SIMD lane model (see
:meth:`~repro.core.config.APIMConfig.parallel_lanes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost
from repro.core.engine import APIMEngine
from repro.errors import KernelExecutionError, ReproError, WorkloadError
from repro.observability import span
from repro.observability.instruments import record_execution
from repro.observability.tracing import trace_event
from repro.quality.metrics import quality_loss_percent
from repro.quality.qos import QoSPolicy
from repro.workloads.base import Workload, WorkloadData

if TYPE_CHECKING:
    from repro.resilience.engine import ResilienceContext

__all__ = ["APIMExecutor", "ExecutionResult"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one workload execution on APIM.

    Time/energy/EDP are for the *executed tile* (``elements`` elements
    resident, all lanes of that allocation active); the comparison harness
    extrapolates to full dataset sizes.
    """

    workload: str
    spec: ApproxSpec
    elements: int
    dataset_bytes: int
    output: np.ndarray
    reference: np.ndarray
    qol_percent: float
    qos_ok: bool
    qos_score: float
    cost: Cost
    mul_count: int
    add_count: int
    time: float
    energy: float
    faults_detected: int = 0
    repairs: int = 0
    retries: int = 0
    #: Terminal outcome: ``ok`` (clean first pass), ``retried`` (elements
    #: re-executed by the resilience loop), ``degraded`` (corruption kept
    #: per policy), ``fallback`` / ``failed`` (set by the supervisor for
    #: runs it rescued or lost — the executor itself raises instead).
    status: str = "ok"
    #: Execution passes consumed (resilience re-execution rounds + 1).
    attempts: int = 1

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy * self.time


class APIMExecutor:
    """Runs workloads on APIM engines and scores them."""

    def __init__(
        self,
        config: APIMConfig | None = None,
        qos: QoSPolicy | None = None,
    ) -> None:
        self.config = config or default_config()
        self.qos = qos or QoSPolicy()

    def run(
        self,
        workload: Workload,
        spec: ApproxSpec = EXACT,
        elements: int | None = None,
        rng: np.random.Generator | None = None,
        data: WorkloadData | None = None,
        resilience: "ResilienceContext | None" = None,
    ) -> ExecutionResult:
        """Execute ``workload`` at approximation ``spec``.

        Either pass pre-generated ``data`` (so several specs score against
        identical inputs, as the tuner does) or let the executor generate
        ``elements`` elements with ``rng``.

        With a ``resilience`` context the kernel runs on a fault-aware
        engine bound to that context's (possibly faulty) fabric: outputs
        are corrupted by its stuck cells, and — policy permitting —
        scrubbed back to correctness by the BIST/spare-row/retry loop,
        whose activity lands in ``faults_detected`` / ``repairs`` /
        ``retries`` and in the reliability overheads billed to ``cost``.
        """
        if data is None:
            elements = elements or workload.default_elements
            rng = rng or np.random.default_rng(2017)
            data = workload.generate(elements, rng)
        if resilience is not None:
            engine = resilience.make_engine(self.config, spec)
        else:
            engine = APIMEngine(self.config, spec)
        trace_event(
            "executor", "run", workload=workload.name,
            relax_bits=spec.relax_bits, elements=data.elements,
        )
        try:
            with span("executor.kernel", workload=workload.name):
                output = workload.run(engine, data)
            reference = workload.reference(data)
        except ReproError as exc:
            trace_event(
                "executor", "kernel_error", f"{type(exc).__name__}: {exc}",
                workload=workload.name,
            )
            raise
        except Exception as exc:  # normalise raw kernel escapes
            trace_event(
                "executor", "kernel_error", f"{type(exc).__name__}: {exc}",
                workload=workload.name,
            )
            raise KernelExecutionError(
                f"{workload.name}: kernel raised "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if np.asarray(output).shape != np.asarray(reference).shape:
            raise WorkloadError(
                f"{workload.name}: output shape {np.asarray(output).shape} "
                f"!= reference {np.asarray(reference).shape}"
            )
        qol = quality_loss_percent(reference, output, workload.kind)
        score = self.qos.score(reference, output, workload.kind)
        qos_ok = self.qos.accepts(reference, output, workload.kind)

        dataset_bytes = data.elements * workload.element_bytes
        lanes = self.config.parallel_lanes(dataset_bytes)
        blocks = self.config.blocks_for(dataset_bytes)
        cost = engine.total_cost
        retries = int(getattr(engine, "retries", 0))
        degraded = int(getattr(engine, "degraded", 0))
        status = "degraded" if degraded else ("retried" if retries else "ok")
        result = ExecutionResult(
            workload=workload.name,
            spec=spec,
            elements=data.elements,
            dataset_bytes=dataset_bytes,
            output=output,
            reference=reference,
            qol_percent=qol,
            qos_ok=qos_ok,
            qos_score=score,
            cost=cost,
            mul_count=engine.mul_count,
            add_count=engine.add_count,
            time=cost.time(self.config, lanes),
            energy=cost.energy(self.config, lanes, active_blocks=blocks),
            faults_detected=int(getattr(engine, "faults_detected", 0)),
            repairs=int(getattr(engine, "repairs", 0)),
            retries=retries,
            status=status,
            attempts=retries + 1,
        )
        record_execution(result)
        trace_event(
            "executor", "done", status=status,
            sim_time_s=result.time, attempts=result.attempts,
        )
        return result
