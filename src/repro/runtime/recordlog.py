"""Generic fsync'd append-only record log with torn-tail recovery.

This is the durability primitive both write-ahead journals in the repo
share: the campaign checkpoint (:mod:`repro.runtime.checkpoint`) and the
serving request journal (:mod:`repro.serving.journal`).  The format is
JSONL — one JSON object per ``\\n``-terminated line, every record carrying
a ``"type"`` and a format-version ``"v"`` — and the write discipline is a
single OS-level write of the whole line followed by an ``fsync``, so a
process killed at any byte can only ever leave a *torn tail*: one final
partial line.

- :func:`scan_records` splits raw bytes into (valid records, clean-prefix
  length, dropped count), treating the first unparseable record and
  everything after it as tail garbage — append-only writes mean corruption
  is strictly a tail phenomenon.
- :func:`load_records` tolerantly reads a log from disk (missing file ==
  empty log).
- :func:`recover_log` truncates the torn tail in place so new appends
  never splice into torn bytes.  Idempotent; a no-op on a clean log.
- :class:`RecordLog` is the append-side handle: thread-safe appends
  (serving workers journal concurrently), one write + fsync per record,
  usable as a context manager.

Consumers parameterise the raised exception type (``error_cls``) so the
existing contracts hold: the checkpoint raises ``CheckpointError``, the
serving journal raises ``JournalError``, and both derive from
``JournalError`` → ``ReproError``.
"""

from __future__ import annotations

import json
import os
import threading

from repro.errors import JournalError

__all__ = [
    "FORMAT_VERSION",
    "RecordLog",
    "load_records",
    "recover_log",
    "scan_records",
]

FORMAT_VERSION = 1


def scan_records(raw: bytes) -> tuple[list[dict], int, int]:
    """(valid records, clean-prefix byte length, dropped record count)."""
    records: list[dict] = []
    offset = 0
    dropped = 0
    lines = raw.split(b"\n")
    body, tail = lines[:-1], lines[-1]
    for i, line in enumerate(body):
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError("not a log record")
        except ValueError:
            # Append-only writes mean corruption is a tail phenomenon:
            # this record and everything after it is torn garbage.
            dropped += len(body) - i
            if tail:
                dropped += 1
            return records, offset, dropped
        records.append(record)
        offset += len(line) + 1
    if tail:  # final line never got its newline: torn mid-append
        dropped += 1
    return records, offset, dropped


def load_records(path: str) -> tuple[list[dict], int]:
    """Tolerantly load a log: (records, torn records dropped).

    A missing file is an empty log.  The file is not modified — run
    :func:`recover_log` before appending to a log that may have died
    mid-write.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as handle:
        raw = handle.read()
    records, _, dropped = scan_records(raw)
    return records, dropped


def recover_log(path: str, error_cls: type = JournalError) -> int:
    """Truncate torn tail records in place; returns records dropped.

    Idempotent and safe on a clean log (drops nothing).  Must run before
    appending to a log that may have died mid-write, so the next record
    starts on a clean line.
    """
    if not os.path.exists(path):
        return 0
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
        _, clean_len, dropped = scan_records(raw)
        if clean_len < len(raw):
            with open(path, "r+b") as handle:
                handle.truncate(clean_len)
    except OSError as exc:
        raise error_cls(f"cannot recover record log {path!r}: {exc}") from exc
    return dropped


class RecordLog:
    """Append-side handle on a JSONL record log.

    ``resume=False`` starts a fresh log (truncating any existing file);
    ``resume=True`` recovers the torn tail and appends.  Appends are
    serialised under an internal lock so concurrent writers (serving
    worker threads) interleave whole records, never bytes.  Usable as a
    context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        path: str,
        resume: bool = False,
        error_cls: type = JournalError,
    ) -> None:
        self.path = path
        self._error_cls = error_cls
        self._lock = threading.Lock()
        if resume:
            recover_log(path, error_cls)
        try:
            # Unbuffered binary: each append is one OS-level write.
            self._handle = open(path, "ab" if resume else "wb", buffering=0)
        except OSError as exc:
            raise error_cls(
                f"cannot open record log {path!r}: {exc}"
            ) from exc

    def append(self, record: dict) -> dict:
        """Atomically append one record (single write + fsync).

        Returns the payload as written (with ``"v"`` defaulted), so
        callers can hook per-record accounting without re-parsing.
        """
        payload = dict(record)
        payload.setdefault("v", FORMAT_VERSION)
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._handle is None:
                raise self._error_cls(f"record log {self.path!r} is closed")
            try:
                self._handle.write(line.encode("utf-8") + b"\n")
                os.fsync(self._handle.fileno())
            except OSError as exc:
                raise self._error_cls(
                    f"append to record log {self.path!r} failed: {exc}"
                ) from exc
        return payload

    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
