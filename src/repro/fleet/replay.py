"""Open-loop replay: seeded arrival traces against a live pool.

Closed-loop load (a client waiting for each result before sending the
next) hides saturation: the generator slows down with the system.  The
fleet's acceptance harness is therefore *open-loop* — arrivals come from
a pre-generated trace at fixed offered load, indifferent to how the pool
is coping, which is exactly the regime where an autoscaler earns its
keep.

:func:`generate_trace` draws Poisson arrivals at ``rate_rps`` with
periodic burst episodes (rate multiplied during the burst window) from a
seeded generator, so a trace is reproducible from ``(seed, parameters)``
alone.  Each event carries its arrival offset, tenant, workload and
relax rung.

:func:`replay` drives a trace through a live pool while stepping an
optional autoscaler on a fixed decision cadence.  Verdicts can come from
the pool's own SLO evaluator (organic mode) or from the trace phase
(``phase_verdicts=True``: burst windows report ``slow_burn``, quiet
windows report headroom ``ok``) — the latter keeps benchmark scale
events deterministic while still exercising the full decide/act/resize
path live, under chaos, mid-traffic.  The report counts every
acknowledged id to its terminal result; ``lost`` must be zero — the
loss-free half of the live-resize contract.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import FleetError, ReproError
from repro.units import MIB

__all__ = ["ArrivalEvent", "generate_trace", "replay"]


@dataclass(frozen=True)
class ArrivalEvent:
    """One open-loop arrival: when, who, and what to price."""

    at_s: float
    tenant: str
    workload: str
    relax_bits: int
    dataset_bytes: int
    #: True while the trace is inside a burst episode (the phase signal
    #: ``phase_verdicts`` replays feed the autoscaler).
    burst: bool


def generate_trace(
    rate_rps: float = 200.0,
    duration_s: float = 10.0,
    seed: int = 2017,
    burst_every_s: float = 3.0,
    burst_len_s: float = 1.0,
    burst_multiplier: float = 4.0,
    tenants: dict[str, int] | None = None,
    workloads: tuple[str, ...] = ("Sobel",),
    relax_bits: tuple[int, ...] = (0,),
    dataset_bytes: float = 4 * MIB,
) -> list[ArrivalEvent]:
    """A seeded Poisson-plus-bursts arrival trace.

    ``tenants`` maps tenant name to a relative weight (uniform when
    omitted).  Arrivals are exponential inter-arrival draws at
    ``rate_rps`` (times ``burst_multiplier`` inside burst windows, which
    open every ``burst_every_s`` for ``burst_len_s``).  Deterministic in
    its arguments.
    """
    if rate_rps <= 0 or duration_s <= 0:
        raise FleetError("rate_rps and duration_s must be positive")
    if burst_multiplier < 1.0:
        raise FleetError("burst_multiplier must be >= 1")
    tenants = tenants or {"default": 1}
    names = sorted(tenants)
    weights = np.array([tenants[n] for n in names], dtype=float)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    events: list[ArrivalEvent] = []
    now = 0.0
    while True:
        in_burst = (
            burst_every_s > 0
            and (now % burst_every_s) < burst_len_s
        )
        rate = rate_rps * (burst_multiplier if in_burst else 1.0)
        now += float(rng.exponential(1.0 / rate))
        if now >= duration_s:
            break
        events.append(
            ArrivalEvent(
                at_s=now,
                tenant=names[int(rng.choice(len(names), p=weights))],
                workload=workloads[int(rng.integers(len(workloads)))],
                relax_bits=int(
                    relax_bits[int(rng.integers(len(relax_bits)))]
                ),
                dataset_bytes=int(dataset_bytes),
                burst=bool(in_burst),
            )
        )
    return events


def replay(
    pool,
    trace: list[ArrivalEvent],
    autoscaler=None,
    decide_every: int = 50,
    phase_verdicts: bool = False,
    headroom_run_s: float = 0.0,
    result_timeout_s: float = 120.0,
    harvest_watermark: int = 1024,
    on_result=None,
) -> dict:
    """Drive a trace through a live pool, resizing as it goes.

    Arrivals are submitted in trace order at full speed (offered load is
    the trace's property; the pool's clock does not gate submission).
    Every ``decide_every`` arrivals the autoscaler steps once — fed the
    trace-phase verdict when ``phase_verdicts`` is set, the pool's own
    SLO verdict otherwise.  ``headroom_run_s`` appends that many seconds
    of post-trace ``ok`` decisions so scale-downs after the storm are
    part of the exercised path.

    Acknowledged ids are harvested *streamingly* — whenever more than
    ``harvest_watermark`` are outstanding, the oldest are waited to their
    terminal results and tallied (``on_result(id, result)`` sees each
    one) — so a trace far longer than the pool's result-store capacity
    replays without ever outrunning it.  The report's ``lost`` counts
    acknowledged ids that never reached a terminal result and MUST be
    zero; an id whose result was evicted *after* completing terminally
    counts under ``statuses["evicted_after_completion"]``, not lost.
    """
    outstanding: deque[str] = deque()
    statuses: dict[str, int] = {}
    acknowledged = 0
    rejected = 0
    submit_errors = 0
    lost = 0
    decisions: list[dict] = []

    def harvest(down_to: int) -> None:
        nonlocal lost
        while len(outstanding) > down_to:
            request_id = outstanding.popleft()
            try:
                result = pool.result(request_id, timeout=result_timeout_s)
            except ReproError as exc:
                if "evicted" in str(exc):
                    # Only terminal results are ever evicted: the
                    # request completed, we were just slow to read it.
                    statuses["evicted_after_completion"] = (
                        statuses.get("evicted_after_completion", 0) + 1
                    )
                else:
                    lost += 1
                continue
            statuses[result.status] = statuses.get(result.status, 0) + 1
            if on_result is not None:
                on_result(request_id, result)

    def step(verdict=None):
        if autoscaler is None:
            return
        decisions.append(autoscaler.step(verdict=verdict))

    for position, event in enumerate(trace):
        if autoscaler is not None and position % decide_every == 0:
            if phase_verdicts:
                step("slow_burn" if event.burst else "ok")
            else:
                step()
        try:
            request_id = pool.submit(
                event.workload,
                relax_bits=event.relax_bits,
                dataset_bytes=event.dataset_bytes,
                tenant=event.tenant,
                block=True,
            )
        except ReproError:
            # Backpressure / shed / draining: refused before any
            # acknowledgement, so nothing to lose.  Open-loop load does
            # not retry.
            rejected += 1
            continue
        except Exception:
            submit_errors += 1
            continue
        acknowledged += 1
        outstanding.append(request_id)
        if len(outstanding) > harvest_watermark:
            harvest(harvest_watermark // 2)
    if autoscaler is not None and headroom_run_s > 0:
        # The storm has passed: replay enough quiet verdicts for the
        # shrink path (hysteresis + cooldown both on the pool's clock).
        clock = autoscaler.clock
        deadline = clock() + headroom_run_s
        last = clock()
        while True:
            step("ok")
            pool.wait_drained(timeout=0.5)
            now = clock()
            if now >= deadline or now <= last:
                break  # done — or a manual clock nobody is advancing
            last = now
    harvest(0)
    e2e = pool.latency.sketch("e2e")
    return {
        "arrivals": len(trace),
        "acknowledged": acknowledged,
        "rejected": rejected,
        "submit_errors": submit_errors,
        "lost": lost,
        "statuses": statuses,
        "p999_s": e2e.quantile(0.999) if e2e.count else None,
        "decisions": decisions,
        "scale_ups": 0 if autoscaler is None else autoscaler.scale_ups,
        "scale_downs": 0 if autoscaler is None else autoscaler.scale_downs,
        "sheds": 0 if autoscaler is None else autoscaler.sheds,
        "final_shards": pool.shard_count,
    }
