"""Offline design-space exploration: sweep, Pareto, per-tenant select.

The fleet's sizing question — how many shards, what block geometry, what
interconnect, what batch ceiling — is answered *offline*, the
rad_gen/COFFE move at serving scale.  :func:`run_dse` sweeps the design
grid, pricing each point through the existing campaign/pool machinery (a
real :class:`~repro.serving.pool.CrossbarPool` on the inline runtime, so
per-request pricing is bit-identical to what the live fleet would serve),
then folds the simulated measurements into a serving model at the target
offered load:

- ``service_s`` / ``energy_j`` — mean simulated APIM latency and energy
  of a served request at this block geometry and interconnect;
- batching amortisation — a coalesced batch of B prices one cold tile
  plus B-1 warm-cache hits, so effective per-request service shrinks
  toward ``_WARM_FRACTION`` of a cold execution as B grows;
- queueing — an M/M/c-flavoured penalty in the utilisation at the
  offered load (capped below saturation), plus the coalescing wait a
  request spends assembling its batch;
- cost — serving energy per second at the offered load plus a static
  floor per provisioned shard (idle shards are not free).

The cost–latency frontier is the generic strict non-domination filter
from :mod:`repro.analysis.pareto`; per-tenant selection picks the
cheapest frontier point meeting each tenant's latency SLO (falling back
to the fastest point when none does).  :func:`write_fleet_config` /
:func:`load_fleet_config` round-trip the result as the JSON file
``repro serve --fleet-config`` boots from.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from itertools import product

from repro.analysis.pareto import non_dominated
from repro.core.config import default_config
from repro.errors import FleetError
from repro.units import MIB

__all__ = [
    "DesignPoint",
    "DSEResult",
    "load_fleet_config",
    "run_dse",
    "write_fleet_config",
]

#: Warm-tile cost as a fraction of a cold execution (batch amortisation).
_WARM_FRACTION = 0.25
#: Static power of one provisioned shard, as a fraction of its full-rate
#: serving power — the term that makes over-provisioning cost something.
_IDLE_FRACTION = 0.05
#: Utilisation ceiling for the queueing term (the model refuses to
#: report a finite latency at or beyond saturation).
_MAX_UTILISATION = 0.95

#: Current fleet-config file schema.
CONFIG_VERSION = 1


@dataclass(frozen=True)
class DesignPoint:
    """One corner of the sweep grid."""

    block_rows: int
    interconnect_scale: float
    shard_count: int
    max_batch_size: int

    @property
    def key(self) -> str:
        return (
            f"b{self.block_rows}-i{self.interconnect_scale:g}"
            f"-s{self.shard_count}-q{self.max_batch_size}"
        )


@dataclass
class DSEResult:
    """Everything the sweep learned: raw evaluations, frontier, picks."""

    offered_rps: float
    seed: int
    evaluations: list[dict] = field(default_factory=list)
    frontier: list[dict] = field(default_factory=list)
    selection: dict[str, dict] = field(default_factory=dict)


def _measure_point(
    point: DesignPoint,
    workloads: tuple[str, ...],
    requests_per_point: int,
    dataset_bytes: float,
    tile_elements: int,
    seed: int,
) -> tuple[float, float, int]:
    """Price one design point through a real (inline) pool.

    Returns ``(mean service_s, mean energy_j, completed)`` over the
    simulated APIM measurements — deterministic in the seed.
    """
    from repro.serving.pool import Client, CrossbarPool
    from repro.serving.scheduler import ServingConfig

    config = default_config()
    config = config.with_overrides(
        block_rows=point.block_rows,
        e_interconnect=config.e_interconnect * point.interconnect_scale,
    )
    pool = CrossbarPool(
        shards=point.shard_count,
        serving_config=ServingConfig(
            max_batch_size=point.max_batch_size,
            max_wait_s=0.0,
            queue_capacity=max(64, requests_per_point * 2),
        ),
        apim_config=config,
        tile_elements=tile_elements,
        seed=seed,
        runtime="inline",
    )
    times: list[float] = []
    energies: list[float] = []
    with pool:
        client = Client(pool, tenant="dse")
        for i in range(requests_per_point):
            workload = workloads[i % len(workloads)]
            result = client.call(
                workload, dataset_bytes=dataset_bytes, timeout=120.0
            )
            if result.point is not None and result.completed:
                times.append(result.point.apim_time_s)
                energies.append(result.point.apim_energy_j)
    if not times:
        raise FleetError(
            f"design point {point.key} completed no requests; "
            "cannot price it"
        )
    return (
        sum(times) / len(times),
        sum(energies) / len(energies),
        len(times),
    )


def _serving_model(
    point: DesignPoint,
    service_s: float,
    energy_j: float,
    offered_rps: float,
) -> dict:
    """Fold one point's simulated pricing into (cost, latency) at load."""
    batch = point.max_batch_size
    # A batch of B prices one cold execution plus B-1 warm-cache hits.
    effective_service_s = service_s * (
        1.0 + (batch - 1) * _WARM_FRACTION
    ) / batch
    effective_energy_j = energy_j * (
        1.0 + (batch - 1) * _WARM_FRACTION
    ) / batch
    capacity_rps = point.shard_count / max(effective_service_s, 1e-12)
    utilisation = min(offered_rps / capacity_rps, _MAX_UTILISATION)
    queueing_s = effective_service_s * utilisation / (1.0 - utilisation)
    coalesce_s = (batch - 1) / (2.0 * offered_rps) if batch > 1 else 0.0
    latency_s = effective_service_s + queueing_s + coalesce_s
    serving_w = offered_rps * effective_energy_j
    static_w = (
        point.shard_count * (energy_j / max(service_s, 1e-12))
        * _IDLE_FRACTION
    )
    return {
        "capacity_rps": capacity_rps,
        "utilisation": utilisation,
        "latency_s": latency_s,
        "cost_w": serving_w + static_w,
    }


def run_dse(
    block_rows: tuple[int, ...] = (256, 1024),
    interconnect_scales: tuple[float, ...] = (1.0, 4.0),
    shard_counts: tuple[int, ...] = (1, 2, 4),
    batch_sizes: tuple[int, ...] = (1, 8),
    workloads: tuple[str, ...] = ("Sobel",),
    tenants: dict[str, dict] | None = None,
    offered_rps: float = 200.0,
    requests_per_point: int = 3,
    dataset_bytes: float = 4 * MIB,
    tile_elements: int = 1 << 8,
    seed: int = 2017,
) -> DSEResult:
    """Sweep the grid and build the cost–latency frontier.

    ``tenants`` maps name to ``{"priority": int, "latency_slo_s": float}``;
    when omitted a single default tenant with a generous SLO is used.
    Deterministic in its arguments — same grid, same seed, same frontier.
    """
    if tenants is None:
        tenants = {"default": {"priority": 1, "latency_slo_s": 1.0}}
    result = DSEResult(offered_rps=offered_rps, seed=seed)
    # Simulated per-request pricing depends only on the hardware half of
    # the design point; price each (block_rows, interconnect) corner once
    # and reuse it across the shard/batch half of the grid.
    measured: dict[tuple[int, float], tuple[float, float, int]] = {}
    for rows, scale, shards, batch in product(
        block_rows, interconnect_scales, shard_counts, batch_sizes
    ):
        point = DesignPoint(
            block_rows=rows,
            interconnect_scale=scale,
            shard_count=shards,
            max_batch_size=batch,
        )
        hardware = (rows, scale)
        if hardware not in measured:
            measured[hardware] = _measure_point(
                point, workloads, requests_per_point, dataset_bytes,
                tile_elements, seed,
            )
        service_s, energy_j, completed = measured[hardware]
        model = _serving_model(point, service_s, energy_j, offered_rps)
        result.evaluations.append(
            {
                "design_point": asdict(point),
                "key": point.key,
                "service_s": service_s,
                "energy_j": energy_j,
                "completed": completed,
                **model,
            }
        )
    result.frontier = sorted(
        non_dominated(
            result.evaluations,
            lambda ev: (ev["cost_w"], ev["latency_s"]),
        ),
        key=lambda ev: ev["cost_w"],
    )
    for name, spec in tenants.items():
        slo_s = float(spec.get("latency_slo_s", 1.0))
        eligible = [
            ev for ev in result.frontier if ev["latency_s"] <= slo_s
        ]
        # Cheapest point meeting the SLO; when nothing does, the
        # fastest point is the least-bad promise the fleet can make.
        chosen = (
            min(eligible, key=lambda ev: ev["cost_w"])
            if eligible
            else min(result.frontier, key=lambda ev: ev["latency_s"])
        )
        result.selection[name] = {
            "priority": int(spec.get("priority", 1)),
            "latency_slo_s": slo_s,
            "meets_slo": bool(eligible),
            **chosen,
        }
    return result


def write_fleet_config(
    path: str,
    result: DSEResult,
    policy: dict | None = None,
) -> dict:
    """Serialise a DSE result as the ``--fleet-config`` file.

    One pool serves every tenant, so the pool-level design point is the
    *highest-priority* tenant's pick (priority 0 wins ties by name); the
    per-tenant table keeps each tenant's own selection and priority for
    the autoscaler's shed ranking.  Returns the written document.
    """
    if not result.selection:
        raise FleetError("DSE result has no tenant selection to write")
    leader = min(
        sorted(result.selection),
        key=lambda name: result.selection[name]["priority"],
    )
    pool_point = result.selection[leader]["design_point"]
    document = {
        "version": CONFIG_VERSION,
        "seed": result.seed,
        "offered_rps": result.offered_rps,
        "pool": dict(pool_point),
        "autoscaler": policy or {},
        "tenants": {
            name: {
                "priority": sel["priority"],
                "latency_slo_s": sel["latency_slo_s"],
                "meets_slo": sel["meets_slo"],
                "design_point": dict(sel["design_point"]),
                "latency_s": sel["latency_s"],
                "cost_w": sel["cost_w"],
            }
            for name, sel in sorted(result.selection.items())
        },
        "frontier": result.frontier,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return document


def load_fleet_config(path: str) -> dict:
    """Parse and validate a ``--fleet-config`` file.

    Returns the document with the pool design point materialised under
    ``"pool"``; any malformation raises :class:`~repro.errors.FleetError`
    (never a raw ``KeyError``/``JSONDecodeError``).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise FleetError(f"cannot read fleet config {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FleetError(
            f"fleet config {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise FleetError(f"fleet config {path!r} must be a JSON object")
    if document.get("version") != CONFIG_VERSION:
        raise FleetError(
            f"fleet config {path!r} has version "
            f"{document.get('version')!r}, expected {CONFIG_VERSION}"
        )
    pool = document.get("pool")
    required = (
        "block_rows", "interconnect_scale", "shard_count", "max_batch_size"
    )
    if not isinstance(pool, dict) or any(k not in pool for k in required):
        raise FleetError(
            f"fleet config {path!r} 'pool' must carry {required}"
        )
    try:
        pool["block_rows"] = int(pool["block_rows"])
        pool["interconnect_scale"] = float(pool["interconnect_scale"])
        pool["shard_count"] = int(pool["shard_count"])
        pool["max_batch_size"] = int(pool["max_batch_size"])
    except (TypeError, ValueError) as exc:
        raise FleetError(
            f"fleet config {path!r} 'pool' fields must be numeric: {exc}"
        ) from exc
    if pool["shard_count"] < 1 or pool["max_batch_size"] < 1:
        raise FleetError(
            f"fleet config {path!r}: shard_count and max_batch_size "
            "must be at least 1"
        )
    tenants = document.get("tenants", {})
    if not isinstance(tenants, dict):
        raise FleetError(f"fleet config {path!r} 'tenants' must be an object")
    for name, spec in tenants.items():
        if not isinstance(spec, dict) or "priority" not in spec:
            raise FleetError(
                f"fleet config {path!r} tenant {name!r} must carry a "
                "'priority'"
            )
    return document
