"""The fleet control plane: elastic serving over the fixed data plane.

The serving stack (PR 4-8) runs a fixed shard set chosen at boot.  This
package closes the loop the roadmap calls for — rad_gen/COFFE's
sweep-and-select, CONTRA's Pareto-under-budget, applied at serving scale:

- :mod:`repro.fleet.autoscaler` — an SLO-driven control loop on the
  scheduler's injectable clock: grow on sustained slow burn, shrink on
  sustained headroom, shed lowest-priority tenants on fast burn, all
  through :meth:`~repro.serving.pool.CrossbarPool.add_shard` /
  :meth:`~repro.serving.pool.CrossbarPool.remove_shard` live-resize
  primitives (loss-free: a removed shard drains before it leaves);
- :mod:`repro.fleet.dse` — offline design-space exploration over
  ``(block_size, interconnect, shard_count, max_batch_size)``, folded
  into a cost–latency Pareto frontier and a per-tenant config selection
  that ``repro serve --fleet-config`` loads;
- :mod:`repro.fleet.replay` — a seeded open-loop arrival trace
  (Poisson + bursts) replayed against a live pool at fixed offered load;
  the acceptance harness for resize-under-chaos.

See ``docs/fleet.md`` for the control loop and file formats.
"""

from repro.fleet.autoscaler import Autoscaler, FleetPolicy
from repro.fleet.dse import (
    DesignPoint,
    DSEResult,
    load_fleet_config,
    run_dse,
    write_fleet_config,
)
from repro.fleet.replay import ArrivalEvent, generate_trace, replay

__all__ = [
    "ArrivalEvent",
    "Autoscaler",
    "DesignPoint",
    "DSEResult",
    "FleetPolicy",
    "generate_trace",
    "load_fleet_config",
    "replay",
    "run_dse",
    "write_fleet_config",
]
