"""SLO-driven shard autoscaling: the fleet's control loop.

The :class:`Autoscaler` periodically reads the pool's
:class:`~repro.observability.slo.BurnRateEvaluator` verdict (and tail
sketches) and emits one bounded decision per step:

- ``grow`` — after ``grow_after`` consecutive burning verdicts
  (``slow_burn`` or ``fast_burn``), add a shard, up to ``max_shards``;
- ``shrink`` — after ``shrink_after`` consecutive healthy verdicts with
  tail headroom, remove the highest-index *idle* shard (a shard with
  in-flight work is never selected), down to ``min_shards``;
- ``shed`` — on ``fast_burn``, immediately stop admitting the
  lowest-priority tenant (admission-level shedding: nothing acknowledged
  is ever dropped), and restore shed tenants once the burn clears;
- ``hold`` — otherwise.

Hysteresis comes from the consecutive-verdict streaks, and a scale (grow
or shrink) starts a ``cooldown_s`` window during which further scaling is
refused — both measured on the *injected clock*, so a test driving a
:class:`~repro.runtime.supervisor.ManualClock` sees a fully deterministic
decision sequence: identical verdict streams produce identical decisions
(the property the hypothesis suite pins).

An optional ``verdict_source`` (canonically the telemetry pipeline's
:class:`~repro.observability.timeseries.SlopeVerdictSource`) is consulted
with each step's SLO evaluation and may *escalate* an ``ok`` verdict to
``slow_burn`` on a sustained positive p99 slope — leading capacity, not
lagging the error budget.  Each decision records which ``signal``
produced its verdict (``slo``, ``forced``, or the source's tag).

Decisions execute through the pool's live-resize primitives and are
recorded three ways: the in-memory ``decisions`` log (the `/fleet`
endpoint's tail), the fleet metric families, and — when a trace store is
attached — a ``fleet`` trace per decision, so a request rerouted off a
draining shard can be correlated with the resize that moved it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import FleetError, ScaleRejectedError
from repro.observability.instruments import (
    record_fleet_decision,
    record_fleet_shed,
)

__all__ = ["Autoscaler", "FleetPolicy"]

#: Verdicts that count toward the grow streak.
_BURNING = ("slow_burn", "fast_burn")


@dataclass(frozen=True)
class FleetPolicy:
    """Bounds and hysteresis of the autoscaler's decision rule."""

    #: The shard-count envelope decisions never leave.
    min_shards: int = 1
    max_shards: int = 8
    #: Consecutive burning verdicts before a grow (hysteresis).
    grow_after: int = 2
    #: Consecutive healthy-with-headroom verdicts before a shrink.
    shrink_after: int = 4
    #: Long-window burn rate below which a healthy verdict counts as
    #: headroom (capacity is provably idle, not merely not-burning).
    headroom_burn: float = 0.5
    #: Seconds (on the injected clock) after a scale during which
    #: further grow/shrink decisions are refused.
    cooldown_s: float = 5.0
    #: How long a removed shard gets to drain before the resize errors.
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise FleetError(f"min_shards must be >= 1: {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise FleetError(
                f"max_shards {self.max_shards} < min_shards {self.min_shards}"
            )
        if self.grow_after < 1 or self.shrink_after < 1:
            raise FleetError("grow_after and shrink_after must be >= 1")
        if self.headroom_burn < 0:
            raise FleetError("headroom_burn must be non-negative")
        if self.cooldown_s < 0 or self.drain_timeout_s <= 0:
            raise FleetError("cooldown_s/drain_timeout_s must be positive")


class Autoscaler:
    """One pool's control loop; see the module docstring.

    ``tenant_priorities`` maps tenant name to scheduler priority class
    (0 most urgent) and ranks shed victims; tenants the map does not
    name are assumed to run at the pool's default priority.  The clock
    defaults to the pool scheduler's, so a
    :class:`~repro.runtime.supervisor.ManualClock` injected there drives
    admission, SLO windows and scaling decisions coherently.
    """

    def __init__(
        self,
        pool,
        policy: FleetPolicy | None = None,
        tenant_priorities: dict[str, int] | None = None,
        clock=None,
        verdict_source=None,
    ) -> None:
        self.pool = pool
        self.policy = policy or FleetPolicy()
        self.tenant_priorities = dict(tenant_priorities or {})
        self.clock = clock if clock is not None else pool.scheduler.clock
        # An optional early-warning escalator (canonically the telemetry
        # pipeline's SlopeVerdictSource): consulted with the live SLO
        # evaluation each step, it may escalate an ``ok`` verdict — grow
        # on a rising p99 *before* the error budget burns.
        self.verdict_source = verdict_source
        self.decisions: list[dict] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self.sheds = 0
        self._burn_streak = 0
        self._headroom_streak = 0
        self._last_scale_at: float | None = None
        pool.autoscaler = self

    # -- the decision rule -----------------------------------------------------

    def _cooldown_remaining(self, now: float) -> float:
        if self._last_scale_at is None:
            return 0.0
        return max(
            0.0, self.policy.cooldown_s - (now - self._last_scale_at)
        )

    def _shed_victim(self) -> str | None:
        """The lowest-priority tenant not already shed (None when all
        known tenants are shed — nothing left to protect the SLO with)."""
        default = self.pool.serving_config.default_priority
        candidates = set(self.tenant_priorities)
        candidates.update(self.pool.scheduler.stats()["tenants"])
        candidates -= self.pool.shed_tenants
        if not candidates:
            return None
        # Highest priority number = least urgent class sheds first; ties
        # break lexicographically so the choice is deterministic.
        return max(
            sorted(candidates),
            key=lambda t: self.tenant_priorities.get(t, default),
        )

    def step(self, verdict: str | None = None) -> dict:
        """Evaluate once and act; returns the decision record.

        ``verdict`` overrides the pool's live SLO verdict — the hook the
        replay harness and the ``--quick`` smoke use to force a specific
        sequence while still exercising the full decide/act path.
        """
        started = time.monotonic()
        now = self.clock()
        slo = self.pool.slo.evaluate()
        signal = "forced"
        if verdict is None:
            if self.verdict_source is not None:
                verdict, signal = self.verdict_source.verdict(slo)
            else:
                verdict, signal = slo["verdict"], "slo"
        decision = self._decide(verdict, float(slo["long_burn"]), now)
        decision["signal"] = signal
        self._act(decision)
        self.decisions.append(decision)
        record_fleet_decision(time.monotonic() - started)
        self._trace(decision)
        return decision

    def _decide(self, verdict: str, long_burn: float, now: float) -> dict:
        shards = self.pool.shard_count
        decision = {
            "at": now,
            "verdict": verdict,
            "action": "hold",
            "reason": "steady",
            "shards_before": shards,
            "shards_after": shards,
        }
        if verdict in _BURNING:
            self._burn_streak += 1
            self._headroom_streak = 0
        elif long_burn <= self.policy.headroom_burn:
            self._headroom_streak += 1
            self._burn_streak = 0
        else:
            self._burn_streak = 0
            self._headroom_streak = 0
        if verdict == "fast_burn":
            victim = self._shed_victim()
            if victim is not None:
                decision["action"] = "shed"
                decision["reason"] = "fast_burn"
                decision["tenant"] = victim
                return decision
            decision["reason"] = "fast_burn_all_shed"
        if verdict == "ok" and self.pool.shed_tenants:
            # The burn cleared: restore every shed tenant before any
            # capacity decision — serving again beats saving shards.
            decision["action"] = "restore"
            decision["reason"] = "burn_cleared"
            decision["tenants"] = sorted(self.pool.shed_tenants)
            return decision
        cooldown = self._cooldown_remaining(now)
        if self._burn_streak >= self.policy.grow_after:
            if shards >= self.policy.max_shards:
                decision["reason"] = "at_max_shards"
            elif cooldown > 0:
                decision["reason"] = "cooldown"
                decision["cooldown_remaining_s"] = round(cooldown, 6)
            else:
                decision["action"] = "grow"
                decision["reason"] = f"burn_streak={self._burn_streak}"
                decision["shards_after"] = shards + 1
            return decision
        if self._headroom_streak >= self.policy.shrink_after:
            if shards <= self.policy.min_shards:
                decision["reason"] = "at_min_shards"
            elif cooldown > 0:
                decision["reason"] = "cooldown"
                decision["cooldown_remaining_s"] = round(cooldown, 6)
            else:
                idle = [s for s in self.pool.shards if s.in_flight == 0]
                if not idle:
                    decision["reason"] = "no_idle_shard"
                else:
                    victim = max(idle, key=lambda s: s.index)
                    decision["action"] = "shrink"
                    decision["reason"] = (
                        f"headroom_streak={self._headroom_streak}"
                    )
                    decision["shards_after"] = shards - 1
                    decision["victim"] = victim.index
        return decision

    # -- acting on a decision --------------------------------------------------

    def _act(self, decision: dict) -> None:
        action = decision["action"]
        try:
            if action == "grow":
                shard = self.pool.add_shard()
                decision["shard"] = shard.index
                self.scale_ups += 1
                self._last_scale_at = decision["at"]
                self._burn_streak = 0
            elif action == "shrink":
                self.pool.remove_shard(
                    decision["victim"],
                    timeout=self.policy.drain_timeout_s,
                )
                self.scale_downs += 1
                self._last_scale_at = decision["at"]
                self._headroom_streak = 0
            elif action == "shed":
                self.pool.shed_tenants.add(decision["tenant"])
                self.sheds += 1
                record_fleet_shed()
            elif action == "restore":
                self.pool.shed_tenants.clear()
        except ScaleRejectedError as exc:
            # A bounded refusal (raced with a manual resize, or the idle
            # victim picked up work): downgrade to a hold, keep looping.
            decision["action"] = "hold"
            decision["reason"] = f"rejected:{exc.reason}"
            decision["shards_after"] = decision["shards_before"]
        except FleetError as exc:
            decision["action"] = "hold"
            decision["reason"] = f"failed:{exc}"
            decision["shards_after"] = self.pool.shard_count
            self._last_scale_at = decision["at"]

    def _trace(self, decision: dict) -> None:
        if decision["action"] == "hold":
            return
        trace = self.pool.traces.new_trace(
            workload="fleet", tenant=decision.get("tenant", "-"),
            relax_bits=0,
        )
        trace.event(
            "fleet", decision["action"], decision["reason"],
            verdict=decision["verdict"],
            shards_before=decision["shards_before"],
            shards_after=decision["shards_after"],
            shard=decision.get("shard", decision.get("victim")),
        )

    # -- introspection ---------------------------------------------------------

    def status(self) -> dict:
        """The `/fleet` endpoint's autoscaler block."""
        return {
            "policy": {
                "min_shards": self.policy.min_shards,
                "max_shards": self.policy.max_shards,
                "grow_after": self.policy.grow_after,
                "shrink_after": self.policy.shrink_after,
                "cooldown_s": self.policy.cooldown_s,
                "headroom_burn": self.policy.headroom_burn,
            },
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "sheds": self.sheds,
            "burn_streak": self._burn_streak,
            "headroom_streak": self._headroom_streak,
            "decisions": len(self.decisions),
            "recent_decisions": self.decisions[-10:],
            "tenant_priorities": dict(self.tenant_priorities),
            "verdict_source": (
                None
                if self.verdict_source is None
                else self.verdict_source.status()
            ),
        }
