"""DDR4 DIMM model: the host memory where the paper preloads all data.

Experimental setup (paper Section 4.1): "all the data used in the
experiments is preloaded into 64 GB, 2.1 GHz DDR4 DIMMs" — so the GPU's
large-dataset traffic streams from host DDR4, not from on-board GDDR5.
This model prices that traffic:

- **Bandwidth**: a DDR4-2100 channel moves ``8 B x 2.1 GT/s = 16.8 GB/s``;
  we model a dual-channel host for 33.6 GB/s peak and derate by an
  efficiency factor for row-buffer behaviour.
- **Row-buffer locality**: the fraction of accesses hitting an open row
  falls as the working set spreads over more rows/banks; we model it as
  ``rows_touched / rows_available`` saturating to the streaming floor.
  This is the second mechanism (besides TLB walks) behind the GPU's
  per-element cost growth in Figure 5.
- **Energy**: activation + read/write + I/O, expressed per bit; the
  standard DDR4 figure of merit is 15-25 pJ/bit end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import PJ

__all__ = ["DRAMModel"]


@dataclass(frozen=True)
class DRAMModel:
    """Analytic DDR4 DIMM timing/energy model.

    Attributes
    ----------
    peak_bandwidth:
        Peak channel bandwidth in bytes/second (dual-channel DDR4-2100).
    row_hit_efficiency:
        Achievable fraction of peak bandwidth under perfect row locality.
    row_miss_efficiency:
        Achievable fraction under worst-case row thrashing.
    row_buffer_bytes:
        Open-row (page) size per bank.
    banks:
        Total banks across the DIMMs.
    energy_per_bit_hit:
        Row-hit access energy per bit.
    energy_per_bit_miss:
        Row-miss (activate + precharge) energy per bit.
    """

    peak_bandwidth: float = 33.6e9
    row_hit_efficiency: float = 0.85
    row_miss_efficiency: float = 0.35
    row_buffer_bytes: int = 8192
    banks: int = 64
    energy_per_bit_hit: float = 15 * PJ
    energy_per_bit_miss: float = 28 * PJ

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0:
            raise ConfigurationError("peak_bandwidth must be positive")
        if not 0 < self.row_miss_efficiency <= self.row_hit_efficiency <= 1:
            raise ConfigurationError(
                "need 0 < row_miss_efficiency <= row_hit_efficiency <= 1"
            )
        if self.row_buffer_bytes <= 0 or self.banks <= 0:
            raise ConfigurationError("row_buffer_bytes and banks must be positive")
        if self.energy_per_bit_hit < 0 or self.energy_per_bit_miss < 0:
            raise ConfigurationError("energies must be non-negative")

    # -- locality ------------------------------------------------------------

    def row_hit_rate(self, footprint_bytes: float, streams: int = 4) -> float:
        """Fraction of accesses served by an open row.

        With ``streams`` concurrent sequential streams (a GPU kernel's
        wavefronts), the open rows cover ``banks * row_buffer_bytes`` of
        footprint; beyond that, the chance that a stream's next access
        stays in its open row decays toward the streaming floor given by
        one row's worth of consecutive accesses per activation.
        """
        if footprint_bytes <= 0:
            raise ConfigurationError("footprint must be positive")
        open_coverage = self.banks * self.row_buffer_bytes
        if footprint_bytes <= open_coverage:
            return 1.0
        # Streaming floor: one activation per row of strided interleaved
        # streams; interference grows with the footprint/bank ratio.
        pressure = footprint_bytes / open_coverage
        floor = max(0.5, 1.0 - 0.08 * (pressure ** 0.25) * streams ** 0.5)
        return max(floor, open_coverage / footprint_bytes)

    # -- pricing ------------------------------------------------------------

    def effective_bandwidth(self, footprint_bytes: float) -> float:
        """Sustained bandwidth at a given footprint (bytes/second)."""
        hit = self.row_hit_rate(footprint_bytes)
        eff = hit * self.row_hit_efficiency + (1 - hit) * self.row_miss_efficiency
        return self.peak_bandwidth * eff

    def transfer_time(self, bytes_moved: float, footprint_bytes: float) -> float:
        """Seconds to move ``bytes_moved`` at the footprint's locality."""
        if bytes_moved < 0:
            raise ConfigurationError("bytes_moved must be non-negative")
        if bytes_moved == 0:
            return 0.0
        return bytes_moved / self.effective_bandwidth(footprint_bytes)

    def transfer_energy(self, bytes_moved: float, footprint_bytes: float) -> float:
        """Joules to move ``bytes_moved`` at the footprint's locality."""
        if bytes_moved < 0:
            raise ConfigurationError("bytes_moved must be non-negative")
        hit = self.row_hit_rate(footprint_bytes)
        per_bit = (
            hit * self.energy_per_bit_hit + (1 - hit) * self.energy_per_bit_miss
        )
        return bytes_moved * 8 * per_bit
