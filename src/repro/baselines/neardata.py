"""Near-data processing (NDP) baseline.

The paper's introduction distinguishes three camps: traditional cores,
*near*-data computing ("puts the processing units close to the main
memory ... although this idea improves performance, it may consume more
energy due to the extra computing units added to the memory"), and true
processing *in* memory (APIM).  This model fills in the middle point:

- simple in-order vector cores on the memory module's logic layer;
- full DRAM bandwidth without the host-side cache/TLB penalties (the
  cores sit past the translation point and stream physically);
- but CMOS compute energy per op and added static power for the extra
  logic — the energy overhead the paper calls out.

With it, the comparison harness can rank all three organisations, which
``tests/test_neardata.py`` pins to the paper's ordering at scale:
``APIM > NDP > GPU/CPU`` on energy-delay product for memory-bound kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.dram import DRAMModel
from repro.baselines.gpu import GPUEstimate, WorkloadProfile
from repro.errors import ConfigurationError
from repro.units import PJ, US

__all__ = ["NDPConfig", "NDPModel"]


@dataclass(frozen=True)
class NDPConfig:
    """Logic-layer vector-core constants.

    - ``peak_flops``: 16 in-order lanes x 2 ops x 1 GHz = 32 GFLOP/s per
      module stack — far below a GPU, the price of the thermal budget on
      a memory module.
    - ``e_flop``: low-voltage near-memory ALUs, ~25 pJ/op.
    - ``static_power``: the "extra computing units" overhead, per module.
    - ``modules``: stacks operating in parallel across the DIMM set.
    """

    peak_flops: float = 32e9
    utilization: float = 0.7
    e_flop: float = 25 * PJ
    static_power: float = 4.0
    modules: int = 8
    dispatch_overhead: float = 10 * US
    dram: DRAMModel = field(default_factory=DRAMModel)
    internal_bandwidth_scale: float = 2.0
    """On-module access sees more bandwidth than the external channel."""

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or not 0 < self.utilization <= 1:
            raise ConfigurationError("bad compute parameters")
        if self.modules <= 0:
            raise ConfigurationError("need at least one module")
        if self.internal_bandwidth_scale < 1:
            raise ConfigurationError("internal bandwidth cannot trail external")


class NDPModel:
    """Prices a :class:`WorkloadProfile` on the near-data baseline."""

    def __init__(self, config: NDPConfig | None = None) -> None:
        self.config = config or NDPConfig()

    def estimate(
        self, profile: WorkloadProfile, dataset_bytes: float
    ) -> GPUEstimate:
        """Time/energy on the logic-layer cores.

        No cache hierarchy and no page walks: the cores stream physical
        DRAM.  Every access pays the (internally faster) DRAM path — the
        design wins on movement, not on compute.
        """
        cfg = self.config
        elements = profile.elements(dataset_bytes)
        passes = profile.passes(elements)
        if passes < 1:
            raise ConfigurationError(f"pass count {passes} below 1")
        ops = elements * profile.flops_per_element * passes
        accesses = (
            elements
            * (profile.reads_per_element + profile.writes_per_element)
            * passes
        )
        bytes_touched = accesses * profile.element_bytes

        total_flops = cfg.peak_flops * cfg.utilization * cfg.modules
        compute_time = ops / total_flops
        mem_time = (
            cfg.dram.transfer_time(bytes_touched, dataset_bytes)
            / cfg.internal_bandwidth_scale
            / cfg.modules
        )
        time = cfg.dispatch_overhead + max(compute_time, mem_time)

        e_compute = ops * cfg.e_flop
        e_dram = cfg.dram.transfer_energy(bytes_touched, dataset_bytes)
        e_static = cfg.static_power * cfg.modules * time
        return GPUEstimate(
            time=time,
            energy=e_compute + e_dram + e_static,
            breakdown={
                "compute_time": compute_time,
                "mem_time": mem_time,
                "e_compute": e_compute,
                "e_dram": e_dram,
                "e_static": e_static,
            },
        )
