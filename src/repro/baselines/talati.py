"""The MAGIC serial adder baseline [Talati et al., IEEE TNANO 2016].

Reference [24] of the paper: addition implemented purely with MAGIC NOR in
a standard (un-blocked) crossbar.  Two N-bit operands take ``12N + 1``
cycles; multi-operand sums are produced by repeated two-operand additions,
so latency grows linearly with the operand count *and* the operand width —
the scaling the APIM fast adder attacks (Figure 6 compares exactly this).

Because the design lacks APIM's interconnect, operand alignment needs
bit-individual copy operations; the paper notes its Figure 6 numbers for
prior work generously *exclude* that shifting cost, and so does this model
(flag :attr:`TalatiAdderModel.include_shift_cost` to price it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost
from repro.core.timing import NOR_OPS_PER_FA, serial_add_cycles
from repro.errors import ConfigurationError

__all__ = ["TalatiAdderModel"]


@dataclass(frozen=True)
class TalatiAdderModel:
    """Latency/energy model of serial MAGIC addition in a plain crossbar.

    Attributes
    ----------
    config:
        Shared device/timing constants (same cell technology as APIM —
        both are MAGIC on RRAM, so the cycle time and NOR energy match).
    include_shift_cost:
        When True, adds the per-bit copy cost of aligning operands that a
        plain crossbar without configurable interconnects must pay
        (2 cycles per bit moved: the two-NOT copy, done bit-serially).
    """

    config: APIMConfig = None  # type: ignore[assignment]
    include_shift_cost: bool = False

    def __post_init__(self) -> None:
        if self.config is None:
            object.__setattr__(self, "config", default_config())

    # -- two-operand addition -------------------------------------------------

    def add_cost(self, width: int) -> Cost:
        """Two-operand serial addition: ``12N + 1`` cycles."""
        if width <= 0:
            raise ConfigurationError(f"width must be positive: {width}")
        return Cost(
            cycles=serial_add_cycles(width),
            nor_ops=NOR_OPS_PER_FA * width,
        )

    # -- multi-operand addition -------------------------------------------------

    def multi_add_cost(self, operands: int, width: int) -> Cost:
        """Sum of ``operands`` ``width``-bit numbers by repeated addition.

        The running sum grows one bit whenever the partial total can carry
        past the current field, so addition ``i`` runs at width
        ``width + ceil(log2(i + 1))``.
        """
        if operands < 1:
            raise ConfigurationError("need at least one operand")
        if width <= 0:
            raise ConfigurationError(f"width must be positive: {width}")
        total = Cost()
        for i in range(1, operands):
            grown = width + (i + 1 - 1).bit_length()  # ceil(log2(i+1))
            total += self.add_cost(grown)
            if self.include_shift_cost:
                # Bit-serial alignment of the next operand: 2 cycles/bit.
                total += Cost(cycles=2 * grown, nor_ops=2 * grown)
        return total

    # -- pricing -----------------------------------------------------------------

    def multi_add_time(self, operands: int, width: int) -> float:
        """Wall-clock seconds of the multi-operand addition."""
        return self.multi_add_cost(operands, width).time(self.config)

    def multi_add_energy(self, operands: int, width: int) -> float:
        """Joules of the multi-operand addition."""
        return self.multi_add_cost(operands, width).energy(self.config)
