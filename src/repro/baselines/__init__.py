"""Baseline models (S12-S13): the GPU the paper compares against, its memory
hierarchy, and the two prior in-memory adders of Figure 6.

- :mod:`repro.baselines.cache` — set-associative LRU cache and TLB
  simulators (trace-driven).
- :mod:`repro.baselines.dram` — DDR4 DIMM timing/energy (the paper preloads
  all data into 64 GB DDR4-2100 DIMMs).
- :mod:`repro.baselines.gpu` — the AMD Radeon R9 390-class analytic model
  fed by the cache/TLB simulators (multi2sim substitute).
- :mod:`repro.baselines.talati` — MAGIC serial adder of [Talati, TNANO'16].
- :mod:`repro.baselines.pc_adder` — CRS PC-Adder of [Siemon, JETCAS'15].
"""

from repro.baselines.cache import Cache, CacheHierarchy, TLB
from repro.baselines.cpu import CPUConfig, CPUModel
from repro.baselines.dram import DRAMModel
from repro.baselines.gpu import GPUConfig, GPUModel, WorkloadProfile
from repro.baselines.talati import TalatiAdderModel
from repro.baselines.pc_adder import PCAdderModel

__all__ = [
    "Cache",
    "CPUConfig",
    "CPUModel",
    "CacheHierarchy",
    "TLB",
    "DRAMModel",
    "GPUConfig",
    "GPUModel",
    "WorkloadProfile",
    "TalatiAdderModel",
    "PCAdderModel",
]
