"""Analytic GPU baseline: an AMD Radeon R9 390-class device.

The paper compares APIM against an R9 390 (8 GB) whose workloads stream
from 64 GB DDR4-2100 host DIMMs, with power measured by a Hioki 3334 meter
and timing from a modified multi2sim.  This module replaces that testbed
with an analytic model whose memory behaviour is *measured* by the
trace-driven simulators in :mod:`repro.baselines.cache` and priced by the
DDR4 model in :mod:`repro.baselines.dram`.

Model structure, per kernel invocation over a dataset of ``n`` bytes:

- **Compute**: ``ops / (peak_flops * utilization)`` seconds and
  ``ops * e_flop`` joules.  GPUs execute these kernels' arithmetic far
  faster than APIM's memristive logic — the paper is explicit that APIM
  wins on *data movement*, not raw compute.
- **Cache traffic**: per-element L1/L2 hit counts come from running the
  workload's address trace over a scaled tile (capacity behaviour
  saturates once the tile exceeds L2, which every paper dataset does).
- **DRAM traffic**: L2 misses stream from the DDR4 DIMMs with
  footprint-dependent row locality.
- **Address translation**: a TLB + radix-walk model; page-table footprint
  grows with the dataset, pushing walk references out of L2 into DRAM.
  Together with DRAM row locality this is what makes the GPU's
  *per-element* cost grow from 32 MB to 1 GB — the mechanism behind the
  rising curves of Figure 5 ("the small cache size of traditional cores
  increases the number of cache misses").
- **Static power** integrates over the runtime.

All constants carry their derivation in :class:`GPUConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.baselines.cache import Cache, CacheHierarchy, TLB
from repro.baselines.dram import DRAMModel
from repro.errors import ConfigurationError
from repro.units import PJ, US

__all__ = ["GPUConfig", "GPUModel", "WorkloadProfile", "GPUEstimate"]


@dataclass(frozen=True)
class WorkloadProfile:
    """What a kernel does per element, as the GPU model needs it.

    Attributes
    ----------
    name:
        Workload label (memoisation key for trace measurements).
    element_bytes:
        Bytes of input data per element (the dataset-size axis unit).
    flops_per_element:
        Arithmetic operations per element per pass.
    reads_per_element / writes_per_element:
        Memory accesses per element per pass (before caching).
    passes:
        Number of sweeps over the dataset as a function of element count
        (1 for stencils, ``log2 n`` for FFT/DWT).
    trace:
        Callable ``(elements) -> iterable[(addr, is_write)]`` producing the
        tile address trace measured by the cache simulator.
    """

    name: str
    element_bytes: int
    flops_per_element: float
    reads_per_element: float
    writes_per_element: float
    passes: Callable[[int], float]
    trace: Callable[[int], Iterable[tuple[int, bool]]]

    def elements(self, dataset_bytes: float) -> int:
        """Element count of a dataset."""
        if dataset_bytes <= 0:
            raise ConfigurationError("dataset size must be positive")
        return max(1, int(dataset_bytes // self.element_bytes))


@dataclass(frozen=True)
class GPUConfig:
    """R9 390-class device constants (each with its derivation).

    - ``peak_flops``: 2560 stream processors x 1.0 GHz x 2 (FMA) ≈ 5.1
      TFLOP/s, the R9 390's headline figure.
    - ``utilization``: sustained fraction of peak for memory-fed kernels;
      0.35 is typical of stencil/transform codes.
    - ``e_flop``: 275 W TDP / 5.1 TFLOP/s ≈ 54 pJ per op at full tilt; we
      charge 45 pJ dynamic and move the remainder into static power.
    - ``l1/l2``: Hawaii has 16 KB L1 per CU (aggregated here) and 1 MB L2.
    - ``e_l1/e_l2``: SRAM access energies at 28 nm, per access.
    - ``static_power``: board idle + fixed logic, measured R9 390 idle
      draws ~90 W under load-idle conditions.
    - ``launch_overhead``: per-pass kernel dispatch + DMA setup.
    - ``l2_latency / dram_latency``: page-walk reference costs by where
      the PTEs reside.
    """

    peak_flops: float = 5.1e12
    utilization: float = 0.35
    e_flop: float = 45 * PJ
    l1_bytes: int = 512 * 1024
    l2_bytes: int = 1024 * 1024
    line_bytes: int = 64
    e_l1: float = 10 * PJ
    e_l2: float = 30 * PJ
    static_power: float = 90.0
    launch_overhead: float = 20 * US
    tlb_entries: int = 1024
    page_bytes: int = 4096
    l2_latency: float = 20e-9
    dram_latency: float = 80e-9
    dram: DRAMModel = field(default_factory=DRAMModel)

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or not 0 < self.utilization <= 1:
            raise ConfigurationError("bad compute parameters")
        if min(self.e_flop, self.e_l1, self.e_l2, self.static_power) < 0:
            raise ConfigurationError("energies must be non-negative")


@dataclass(frozen=True)
class GPUEstimate:
    """Time/energy estimate with a per-component breakdown."""

    time: float
    energy: float
    breakdown: dict[str, float]

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.energy * self.time


class GPUModel:
    """Prices a :class:`WorkloadProfile` at a dataset size."""

    #: Default tile (elements) for trace-driven cache measurement; large
    #: enough to saturate capacity behaviour of the 1 MB L2.
    DEFAULT_TILE_ELEMENTS = 1 << 16

    def __init__(self, config: GPUConfig | None = None) -> None:
        self.config = config or GPUConfig()
        self._measured: dict[str, tuple[float, float, float]] = {}

    # -- trace measurement ------------------------------------------------

    def measure_locality(
        self, profile: WorkloadProfile, tile_elements: int | None = None
    ) -> tuple[float, float, float]:
        """Per-access service fractions ``(l1, l2, dram)`` for a profile.

        Runs the profile's address trace over a tile through the L1/L2
        simulators.  Results are memoised by profile name.
        """
        if profile.name in self._measured:
            return self._measured[profile.name]
        tile = tile_elements or self.DEFAULT_TILE_ELEMENTS
        cfg = self.config
        hierarchy = CacheHierarchy(
            Cache(cfg.l1_bytes, cfg.line_bytes, ways=8, name="l1"),
            Cache(cfg.l2_bytes, cfg.line_bytes, ways=16, name="l2"),
        )
        counts = {"l1": 0, "l2": 0, "dram": 0}
        total = 0
        for addr, is_write in profile.trace(tile):
            counts[hierarchy.access(addr, is_write)] += 1
            total += 1
        if total == 0:
            raise ConfigurationError(f"profile {profile.name} emitted no trace")
        fractions = (
            counts["l1"] / total,
            counts["l2"] / total,
            counts["dram"] / total,
        )
        self._measured[profile.name] = fractions
        return fractions

    # -- translation model ---------------------------------------------------

    def _walk_cost(self, footprint: float) -> float:
        """Seconds per TLB miss at a given dataset footprint.

        Walk references hit L2 while the page tables fit beside the data's
        working lines, and spill to DRAM as the PTE array outgrows it.
        """
        cfg = self.config
        refs = TLB.walk_references(footprint, cfg.page_bytes)
        pte_bytes = (footprint / cfg.page_bytes) * 8
        in_l2 = min(1.0, (cfg.l2_bytes / 2) / pte_bytes) if pte_bytes else 1.0
        per_ref = in_l2 * cfg.l2_latency + (1 - in_l2) * cfg.dram_latency
        return refs * per_ref

    def _tlb_miss_rate(self, profile: WorkloadProfile, footprint: float) -> float:
        """Translation misses per memory access.

        Sequential kernels touch each 4 KiB page once per
        ``page_bytes / element_bytes`` elements; datasets inside the TLB's
        coverage never miss after warm-up.
        """
        cfg = self.config
        if footprint <= cfg.tlb_entries * cfg.page_bytes:
            return 0.0
        accesses_per_element = (
            profile.reads_per_element + profile.writes_per_element
        )
        elements_per_page = max(1, cfg.page_bytes // profile.element_bytes)
        return 1.0 / (elements_per_page * accesses_per_element)

    # -- pricing ------------------------------------------------------------

    def estimate(
        self, profile: WorkloadProfile, dataset_bytes: float
    ) -> GPUEstimate:
        """Time/energy of running ``profile`` over ``dataset_bytes``."""
        cfg = self.config
        elements = profile.elements(dataset_bytes)
        passes = profile.passes(elements)
        if passes < 1:
            raise ConfigurationError(f"pass count {passes} below 1")
        ops = elements * profile.flops_per_element * passes
        accesses = (
            elements
            * (profile.reads_per_element + profile.writes_per_element)
            * passes
        )
        frac_l1, frac_l2, frac_dram = self.measure_locality(profile)

        # -- time -------------------------------------------------------
        compute_time = ops / (cfg.peak_flops * cfg.utilization)
        dram_bytes = accesses * frac_dram * cfg.line_bytes
        mem_time = cfg.dram.transfer_time(dram_bytes, dataset_bytes)
        tlb_rate = self._tlb_miss_rate(profile, dataset_bytes)
        walk_time = accesses * tlb_rate * self._walk_cost(dataset_bytes)
        overlap = max(compute_time, mem_time)  # compute/memory overlap
        time = cfg.launch_overhead * passes + overlap + walk_time

        # -- energy -----------------------------------------------------
        e_compute = ops * cfg.e_flop
        e_l1 = accesses * cfg.e_l1
        e_l2 = accesses * (frac_l2 + frac_dram) * cfg.e_l2
        e_dram = cfg.dram.transfer_energy(dram_bytes, dataset_bytes)
        walk_refs = TLB.walk_references(dataset_bytes, cfg.page_bytes)
        e_walks = (
            accesses * tlb_rate * walk_refs * cfg.line_bytes * 8
        ) * cfg.dram.energy_per_bit_hit
        e_static = cfg.static_power * time
        energy = e_compute + e_l1 + e_l2 + e_dram + e_walks + e_static

        return GPUEstimate(
            time=time,
            energy=energy,
            breakdown={
                "compute_time": compute_time,
                "mem_time": mem_time,
                "walk_time": walk_time,
                "launch_time": cfg.launch_overhead * passes,
                "e_compute": e_compute,
                "e_l1": e_l1,
                "e_l2": e_l2,
                "e_dram": e_dram,
                "e_walks": e_walks,
                "e_static": e_static,
            },
        )
