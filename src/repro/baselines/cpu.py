"""A conventional-CPU baseline (breadth model).

The paper's quantitative comparison targets the R9 390 GPU, but its
argument is about *traditional cores* generally — "running data intensive
workloads ... on traditional cores results in high energy consumption and
slow processing speed".  This model prices a contemporary (2017-class)
desktop CPU on the same workload profiles, giving the comparison harness a
second conventional reference point:

- 4 cores x 8-wide SIMD x ~3.5 GHz ~ 0.1 TFLOP/s sustained;
- three-level cache behaviour approximated by the same trace-driven L1/L2
  measurement as the GPU model (capacities differ), over the same DDR4;
- the same TLB/page-walk degradation mechanism, with a smaller TLB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.cache import Cache, CacheHierarchy, TLB
from repro.baselines.dram import DRAMModel
from repro.baselines.gpu import GPUEstimate, WorkloadProfile
from repro.errors import ConfigurationError
from repro.units import PJ, US

__all__ = ["CPUConfig", "CPUModel"]


@dataclass(frozen=True)
class CPUConfig:
    """Skylake-class desktop CPU constants.

    - ``peak_flops``: 4 cores x 8-lane AVX2 x 2 ops x 3.5 GHz = 224
      GFLOP/s peak; we model sustained throughput via ``utilization``.
    - ``e_flop``: ~65 W package over 0.1 TFLOP/s sustained ~ 0.6 nJ/op; we
      charge 150 pJ dynamic and the rest as static power.
    - caches: 128 KB aggregate L1-D, 8 MB shared L3 (modelled as 'L2').
    """

    peak_flops: float = 224e9
    utilization: float = 0.45
    e_flop: float = 150 * PJ
    l1_bytes: int = 128 * 1024
    l2_bytes: int = 8 * 1024 * 1024
    line_bytes: int = 64
    e_l1: float = 15 * PJ
    e_l2: float = 60 * PJ
    static_power: float = 35.0
    dispatch_overhead: float = 5 * US
    tlb_entries: int = 1536
    page_bytes: int = 4096
    l2_latency: float = 12e-9
    dram_latency: float = 70e-9
    dram: DRAMModel = field(default_factory=DRAMModel)

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or not 0 < self.utilization <= 1:
            raise ConfigurationError("bad compute parameters")
        if min(self.e_flop, self.e_l1, self.e_l2, self.static_power) < 0:
            raise ConfigurationError("energies must be non-negative")


class CPUModel:
    """Prices a :class:`WorkloadProfile` on the CPU baseline.

    Structurally the same component model as
    :class:`~repro.baselines.gpu.GPUModel` — compute, measured cache
    locality, DDR4 traffic, address translation, static power — with CPU
    constants.  The two models deliberately share no code paths with APIM,
    so comparisons never leak modelling assumptions across the divide.
    """

    DEFAULT_TILE_ELEMENTS = 1 << 16

    def __init__(self, config: CPUConfig | None = None) -> None:
        self.config = config or CPUConfig()
        self._measured: dict[str, tuple[float, float, float]] = {}

    def measure_locality(
        self, profile: WorkloadProfile, tile_elements: int | None = None
    ) -> tuple[float, float, float]:
        """Per-access (l1, l2, dram) service fractions, memoised by name."""
        if profile.name in self._measured:
            return self._measured[profile.name]
        cfg = self.config
        hierarchy = CacheHierarchy(
            Cache(cfg.l1_bytes, cfg.line_bytes, ways=8, name="l1"),
            Cache(cfg.l2_bytes, cfg.line_bytes, ways=16, name="l2"),
        )
        counts = {"l1": 0, "l2": 0, "dram": 0}
        total = 0
        for addr, is_write in profile.trace(
            tile_elements or self.DEFAULT_TILE_ELEMENTS
        ):
            counts[hierarchy.access(addr, is_write)] += 1
            total += 1
        if total == 0:
            raise ConfigurationError(f"profile {profile.name} emitted no trace")
        fractions = (
            counts["l1"] / total,
            counts["l2"] / total,
            counts["dram"] / total,
        )
        self._measured[profile.name] = fractions
        return fractions

    def _walk_cost(self, footprint: float) -> float:
        cfg = self.config
        refs = TLB.walk_references(footprint, cfg.page_bytes)
        pte_bytes = (footprint / cfg.page_bytes) * 8
        in_l2 = min(1.0, (cfg.l2_bytes / 2) / pte_bytes) if pte_bytes else 1.0
        return refs * (in_l2 * cfg.l2_latency + (1 - in_l2) * cfg.dram_latency)

    def _tlb_miss_rate(self, profile: WorkloadProfile, footprint: float) -> float:
        cfg = self.config
        if footprint <= cfg.tlb_entries * cfg.page_bytes:
            return 0.0
        accesses = profile.reads_per_element + profile.writes_per_element
        per_page = max(1, cfg.page_bytes // profile.element_bytes)
        return 1.0 / (per_page * accesses)

    def estimate(
        self, profile: WorkloadProfile, dataset_bytes: float
    ) -> GPUEstimate:
        """Time/energy of the workload on the CPU baseline."""
        cfg = self.config
        elements = profile.elements(dataset_bytes)
        passes = profile.passes(elements)
        if passes < 1:
            raise ConfigurationError(f"pass count {passes} below 1")
        ops = elements * profile.flops_per_element * passes
        accesses = (
            elements
            * (profile.reads_per_element + profile.writes_per_element)
            * passes
        )
        frac_l1, frac_l2, frac_dram = self.measure_locality(profile)

        compute_time = ops / (cfg.peak_flops * cfg.utilization)
        dram_bytes = accesses * frac_dram * cfg.line_bytes
        mem_time = cfg.dram.transfer_time(dram_bytes, dataset_bytes)
        tlb_rate = self._tlb_miss_rate(profile, dataset_bytes)
        walk_time = accesses * tlb_rate * self._walk_cost(dataset_bytes)
        time = cfg.dispatch_overhead + max(compute_time, mem_time) + walk_time

        e_compute = ops * cfg.e_flop
        e_l1 = accesses * cfg.e_l1
        e_l2 = accesses * (frac_l2 + frac_dram) * cfg.e_l2
        e_dram = cfg.dram.transfer_energy(dram_bytes, dataset_bytes)
        e_static = cfg.static_power * time
        return GPUEstimate(
            time=time,
            energy=e_compute + e_l1 + e_l2 + e_dram + e_static,
            breakdown={
                "compute_time": compute_time,
                "mem_time": mem_time,
                "walk_time": walk_time,
                "e_compute": e_compute,
                "e_l1": e_l1,
                "e_l2": e_l2,
                "e_dram": e_dram,
                "e_static": e_static,
            },
        )
