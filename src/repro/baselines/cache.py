"""Trace-driven cache and TLB simulators.

The paper obtains its GPU-side numbers from multi2sim, a cycle-accurate
CPU-GPU simulator.  We replace it with an analytic GPU model
(:mod:`repro.baselines.gpu`) whose *memory behaviour* is measured by these
simulators: workloads emit address traces over a scaled tile, the hierarchy
counts hits/misses per level, and the GPU model extrapolates per-element
statistics to the full dataset.

Components:

- :class:`Cache` — set-associative, true-LRU, write-back/write-allocate.
- :class:`CacheHierarchy` — an inclusive two-level stack over DRAM;
  returns, per access, the level that served it.
- :class:`TLB` — a fully-associative LRU translation buffer; misses model
  the page-walk cost that grows with dataset footprint (one of the two
  mechanisms behind Figure 5's widening GPU gap).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Cache", "CacheHierarchy", "CacheStats", "TLB"]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass
class CacheStats:
    """Hit/miss counters of one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative LRU cache.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be ``line_bytes * ways * sets``.
    line_bytes:
        Cache-line size (power of two).
    ways:
        Associativity.
    name:
        Label for reports.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 64,
        ways: int = 8,
        name: str = "cache",
    ) -> None:
        if not _is_power_of_two(line_bytes):
            raise ConfigurationError(f"line size {line_bytes} not a power of two")
        if ways <= 0:
            raise ConfigurationError(f"ways must be positive: {ways}")
        if size_bytes <= 0 or size_bytes % (line_bytes * ways):
            raise ConfigurationError(
                f"capacity {size_bytes} not divisible by line*ways "
                f"({line_bytes}*{ways})"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        if not _is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"set count {self.num_sets} not a power of two"
            )
        self.name = name
        self.stats = CacheStats()
        # sets[i] maps tag -> dirty flag, ordered LRU-first.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one address; returns True on hit.

        On a miss the line is allocated (write-allocate) and the LRU victim
        evicted, counting a writeback when dirty.
        """
        if addr < 0:
            raise ConfigurationError(f"negative address {addr}")
        index, tag = self._locate(addr)
        ways = self._sets[index]
        if tag in ways:
            self.stats.hits += 1
            ways.move_to_end(tag)
            if write:
                ways[tag] = True
            return True
        self.stats.misses += 1
        if len(ways) >= self.ways:
            _victim, dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        ways[tag] = write
        return False

    def flush(self) -> int:
        """Drop all lines; returns the number of dirty lines written back."""
        dirty = sum(
            1 for ways in self._sets for is_dirty in ways.values() if is_dirty
        )
        self.stats.writebacks += dirty
        for ways in self._sets:
            ways.clear()
        return dirty

    def reset_stats(self) -> None:
        """Zero the counters without touching contents."""
        self.stats = CacheStats()


class CacheHierarchy:
    """A two-level cache stack over DRAM.

    :meth:`access` walks L1 then L2; the return value names the level that
    served the request (``"l1"``, ``"l2"`` or ``"dram"``), which the GPU
    model converts into latency and energy.
    """

    def __init__(self, l1: Cache, l2: Cache) -> None:
        self.l1 = l1
        self.l2 = l2
        self.dram_accesses = 0

    def access(self, addr: int, write: bool = False) -> str:
        """Access the stack; returns the serving level."""
        if self.l1.access(addr, write):
            return "l1"
        if self.l2.access(addr, write):
            return "l2"
        self.dram_accesses += 1
        return "dram"

    def reset_stats(self) -> None:
        """Zero all counters."""
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.dram_accesses = 0


class TLB:
    """Fully-associative LRU translation look-aside buffer.

    Coverage is ``entries * page_bytes``; working sets beyond it miss on
    (almost) every new page, and each miss costs a multi-level page walk
    whose own memory references degrade with page-table footprint — the GPU
    model prices that via :meth:`walk_references`.
    """

    def __init__(self, entries: int = 1024, page_bytes: int = 4096) -> None:
        if entries <= 0:
            raise ConfigurationError(f"entries must be positive: {entries}")
        if not _is_power_of_two(page_bytes):
            raise ConfigurationError(f"page size {page_bytes} not a power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self.hits = 0
        self.misses = 0
        self._pages: OrderedDict[int, None] = OrderedDict()

    @property
    def coverage_bytes(self) -> int:
        """Footprint fully covered by the TLB."""
        return self.entries * self.page_bytes

    def access(self, addr: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        if addr < 0:
            raise ConfigurationError(f"negative address {addr}")
        page = addr // self.page_bytes
        if page in self._pages:
            self.hits += 1
            self._pages.move_to_end(page)
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return False

    @property
    def miss_rate(self) -> float:
        """Misses per translation (0 when idle)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @staticmethod
    def walk_references(footprint_bytes: float, page_bytes: int = 4096) -> int:
        """Radix page-walk references needed for a footprint.

        A 4-level x86-style walk touches one entry per level; levels whose
        table spans a single page are effectively free (always cached), so
        small footprints walk cheaply and gigabyte footprints pay the full
        four references.
        """
        if footprint_bytes <= 0:
            raise ConfigurationError("footprint must be positive")
        pages = max(1, int(footprint_bytes // page_bytes))
        entries_per_level = page_bytes // 8  # 8-byte PTEs
        levels = 1
        while pages > entries_per_level**levels and levels < 4:
            levels += 1
        return levels
