"""The CRS PC-Adder baseline [Siemon et al., JETCAS 2015].

Reference [25] of the paper: a parallel-prefix-style adder built from
complementary resistive switches (CRS), organised as *multiple crossbar
arrays, each with its own wordline and bitline controllers*.  It is the
fastest prior in-memory adder the paper compares against in Figure 6 —
APIM's claim is "at least 2x speed up compared to previous designs" in
exact mode — but its arrayed organisation carries a large area overhead
that APIM's shared-periphery blocked design avoids.

[25]'s own latency figures are not restated in the APIM paper, so this
model is **fit to Figure 6**: per two-operand N-bit addition the CRS
sequence costs ``2N + 4`` switch steps, multi-operand sums reduce pairwise
over a binary tree of arrays, and a CRS step takes
:attr:`crs_step_factor` x the MAGIC cycle (CRS cells require a
read-before-write sequence, making their logic step slower than a MAGIC
NOR).  The fit reproduces the paper's shape: PC-Adder beats the serial
MAGIC adder everywhere, and APIM's tree beats PC-Adder by >= 2x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import APIMConfig, default_config
from repro.core.cost import Cost
from repro.crossbar.decoder import SharedPeriphery
from repro.errors import ConfigurationError

__all__ = ["PCAdderModel"]


@dataclass(frozen=True)
class PCAdderModel:
    """Latency/energy/area model of the CRS PC-Adder.

    Attributes
    ----------
    config:
        Timing base (the MAGIC cycle the CRS step factor multiplies).
    crs_step_factor:
        CRS logic-step duration in MAGIC cycles (read + write phases).
    switch_energy_factor:
        CRS switch-event energy relative to a MAGIC NOR firing (CRS
        switches two anti-serial cells per event).
    """

    config: APIMConfig = None  # type: ignore[assignment]
    crs_step_factor: float = 4.0
    switch_energy_factor: float = 2.0
    transfer_cycles_per_bit: float = 2.0

    def __post_init__(self) -> None:
        if self.config is None:
            object.__setattr__(self, "config", default_config())
        if self.crs_step_factor <= 0 or self.switch_energy_factor <= 0:
            raise ConfigurationError("CRS factors must be positive")

    # -- primitive -----------------------------------------------------------

    def add_steps(self, width: int) -> int:
        """CRS steps of one two-operand ``width``-bit addition: ``2N + 4``."""
        if width <= 0:
            raise ConfigurationError(f"width must be positive: {width}")
        return 2 * width + 4

    def add_cost(self, width: int) -> Cost:
        """Two-operand addition, in MAGIC-cycle-equivalent cost units."""
        steps = self.add_steps(width)
        return Cost(
            cycles=steps * self.crs_step_factor,
            nor_ops=steps * self.switch_energy_factor,
        )

    # -- multi-operand ---------------------------------------------------------

    def multi_add_cost(self, operands: int, width: int) -> Cost:
        """Binary-tree pairwise reduction across parallel arrays.

        Level ``i`` adds pairs of ``width + i``-bit numbers concurrently in
        separate arrays (that concurrency is exactly what the per-array
        controllers buy); latency is the sum over levels, energy the sum
        over every addition performed.  Between levels, partial sums must
        cross array boundaries bit-serially (there is no configurable
        interconnect), costing :attr:`transfer_cycles_per_bit` per bit of
        the moved word — the overhead the paper's blocked design removes.
        """
        if operands < 1:
            raise ConfigurationError("need at least one operand")
        if width <= 0:
            raise ConfigurationError(f"width must be positive: {width}")
        total = Cost()
        remaining = operands
        level = 0
        while remaining > 1:
            pairs = remaining // 2
            level_width = width + level
            per_add = self.add_cost(level_width)
            # Latency: one addition's worth (pairs run concurrently);
            # energy: every pair pays.
            total += Cost(
                cycles=per_add.cycles,
                nor_ops=per_add.nor_ops * pairs,
            )
            remaining = pairs + remaining % 2
            level += 1
            if remaining > 1:
                moved = level_width + 1
                total += Cost(
                    cycles=self.transfer_cycles_per_bit * moved,
                    nor_ops=2 * moved * pairs,
                )
        return total

    def multi_add_time(self, operands: int, width: int) -> float:
        """Wall-clock seconds of the tree reduction."""
        return self.multi_add_cost(operands, width).time(self.config)

    def multi_add_energy(self, operands: int, width: int) -> float:
        """Joules of the tree reduction."""
        return self.multi_add_cost(operands, width).energy(self.config)

    # -- area ---------------------------------------------------------------

    def periphery_transistors(self, operands: int, width: int) -> int:
        """Controller-transistor estimate of the arrayed organisation.

        Each concurrent array carries its own wordline/bitline controllers
        — the overhead the paper contrasts with APIM's shared periphery.
        """
        arrays = max(1, operands // 2)
        rows = 4 * width  # operand, partial terms, result
        periphery = SharedPeriphery(rows, 2 * width, 1)
        return periphery.periphery_transistors(shared=True) * arrays
