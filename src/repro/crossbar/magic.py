"""MAGIC NOR execution engine (Kvatinsky et al., TCAS-II 2014).

MAGIC computes NOR *in place* in a crossbar: the output cell is initialised
to RON (logic '1'); the execution voltage ``V0`` is applied to the bitlines
of the input cells (for a NOR along a row) or the wordlines of the inputs
(for a NOR along a column) while the output's line is grounded.  If any
input stores '1' (low resistance), enough current flows to RESET the output
to '0'; if all inputs store '0', the output keeps its '1'.

The engine advances a cycle counter — **every NOR evaluation is one cycle**
(1.1 ns), the paper's definition of the APIM clock — and accumulates both:

- an abstract :class:`~repro.core.cost.Cost` (NOR firings, writes, ...),
  priced later against an :class:`~repro.core.config.APIMConfig`; and
- an *electrical* energy estimate integrated from the actual cell
  resistances along the V0 current path, used to sanity-check the abstract
  per-op constants (see ``tests/test_structural_energy.py``).

SIMD: a column-direction NOR drives all selected bitlines simultaneously, so
one cycle evaluates the same NOR across any number of columns (this is what
makes the 3:2 carry-save step width-independent).  Symmetrically for
row-direction NORs across multiple rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.cost import Cost
from repro.crossbar.array import CrossbarArray
from repro.errors import CrossbarError
from repro.units import NS

__all__ = ["MagicEngine"]

#: MAGIC execution voltage in volts (applied across input + output path).
EXECUTION_VOLTAGE = 1.0

#: One MAGIC NOR evaluation = one APIM clock cycle.
CYCLE_TIME = 1.1 * NS


class MagicEngine:
    """Executes MAGIC micro-ops on one :class:`CrossbarArray`.

    The engine owns the block's cycle counter.  Multi-block operations
    (shifted copies, inter-block NORs) are coordinated by
    :class:`~repro.crossbar.block.BlockedCrossbar`, which advances the
    cycle counters of the involved engines in lock step.
    """

    def __init__(self, array: CrossbarArray) -> None:
        self.array = array
        self.cycles = 0
        self.cost = Cost()
        self.electrical_energy = 0.0

    # -- bookkeeping -----------------------------------------------------------

    def _tick(self, cost: Cost) -> None:
        self.cycles += int(cost.cycles)
        self.cost += cost

    def sync_to(self, cycles: int) -> None:
        """Advance this block's clock to a later global time (lock-step)."""
        if cycles < self.cycles:
            raise CrossbarError(
                f"cannot move clock backwards ({cycles} < {self.cycles})"
            )
        self.cycles = cycles

    def _check_initialised(self, row: int, col: int) -> None:
        """Assert a NOR output cell holds the required '1' initialisation.

        A pinned (stuck) cell is exempt: on hardware the initialisation
        pulse silently fails and the NOR evaluates into a frozen output —
        corruption, not a protocol violation.  The resilience layer is
        responsible for catching the wrong result.
        """
        if self.array.value(row, col) != 1 and not self.array.is_pinned(row, col):
            raise CrossbarError(
                f"NOR output cell ({row}, {col}) not initialised to '1'"
            )

    # -- initialisation -----------------------------------------------------------

    def init_cells(
        self, cells: Iterable[tuple[int, int]], charge_cycle: bool = True
    ) -> None:
        """Initialise output cells to logic '1' — one parallel cycle.

        MAGIC requires every NOR output to start at RON.  The row/column
        drivers SET all listed cells simultaneously.  With
        ``charge_cycle=False`` the initialisation is bulk/pre-staged (the
        controller initialises scratch regions while earlier operations
        still execute) and costs nothing here — this is how the paper's
        2-cycle copy and 12N+1 serial addition are met.

        Initialisation energy is folded into the average per-NOR energy
        (``APIMConfig.e_nor``), so no ``cell_writes`` are charged; the
        ``cell_writes`` counter is reserved for explicit driver write-backs
        (e.g. the MAJ carry chain).
        """
        count = 0
        for row, col in cells:
            self.array.set_value(row, col, 1)
            count += 1
        if count == 0:
            raise CrossbarError("init_cells called with no cells")
        self._tick(Cost(cycles=1 if charge_cycle else 0))

    def init_row_segment(
        self, row: int, cols: Sequence[int], charge_cycle: bool = True
    ) -> None:
        """Initialise a contiguous row segment to '1' in one cycle."""
        self.init_cells(((row, c) for c in cols), charge_cycle=charge_cycle)

    # -- NOR primitives -----------------------------------------------------------

    def nor_in_row(self, row: int, in_cols: Sequence[int], out_col: int) -> int:
        """NOR of cells ``(row, in_cols...)`` into ``(row, out_col)``.

        The output cell must have been initialised to '1' (checked).  One
        cycle; returns the computed bit.
        """
        if not in_cols:
            raise CrossbarError("NOR needs at least one input")
        if out_col in in_cols:
            raise CrossbarError("output column collides with an input")
        self._check_initialised(row, out_col)
        inputs = [self.array.value(row, c) for c in in_cols]
        result = int(not any(inputs))
        self._charge_electrical(inputs)
        self.array.set_value(row, out_col, result)
        self._tick(Cost(cycles=1, nor_ops=1))
        return result

    def nor_across_rows(
        self,
        in_rows: Sequence[int],
        out_row: int,
        cols: Sequence[int],
    ) -> list[int]:
        """Column-direction NOR applied to every column in ``cols`` at once.

        For each column ``c``: ``out[out_row, c] = NOR(in[r, c] ...)``.
        One cycle regardless of ``len(cols)`` — the SIMD execution that
        makes carry-save steps width-independent.
        """
        if not in_rows:
            raise CrossbarError("NOR needs at least one input row")
        if out_row in in_rows:
            raise CrossbarError("output row collides with an input row")
        if not cols:
            raise CrossbarError("NOR needs at least one column")
        results = []
        for col in cols:
            self._check_initialised(out_row, col)
            inputs = [self.array.value(r, col) for r in in_rows]
            result = int(not any(inputs))
            self._charge_electrical(inputs)
            self.array.set_value(out_row, col, result)
            results.append(result)
        self._tick(Cost(cycles=1, nor_ops=len(cols)))
        return results

    def nor_cells(
        self,
        inputs: Sequence[tuple[int, int]],
        output: tuple[int, int],
    ) -> int:
        """NOR of arbitrarily-placed cells into an arbitrary output cell.

        The blocked design's interconnect permits NORs whose operands do not
        share a wordline/bitline (paper Section 3.1: inputs on bitline n,
        output on bitline n+4).  One cycle; the output must be initialised.
        """
        if not inputs:
            raise CrossbarError("NOR needs at least one input")
        if output in inputs:
            raise CrossbarError("output cell collides with an input")
        out_row, out_col = output
        self._check_initialised(out_row, out_col)
        bits = [self.array.value(r, c) for r, c in inputs]
        result = int(not any(bits))
        self._charge_electrical(bits)
        self.array.set_value(out_row, out_col, result)
        self._tick(Cost(cycles=1, nor_ops=1))
        return result

    def nor_parallel(
        self,
        operations: Sequence[tuple[Sequence[tuple[int, int]], tuple[int, int]]],
    ) -> list[int]:
        """Several independent NORs evaluated in the same cycle.

        Used for same-stage carry-save groups: the execution voltage drives
        all groups simultaneously, so the whole batch costs one cycle.
        Output cells must be pairwise distinct and initialised; inputs are
        sampled before any output is written (simultaneous semantics).
        """
        if not operations:
            raise CrossbarError("nor_parallel needs at least one operation")
        outputs = [out for _, out in operations]
        if len(set(outputs)) != len(outputs):
            raise CrossbarError("parallel NORs write overlapping outputs")
        sampled: list[tuple[tuple[int, int], int]] = []
        for inputs, output in operations:
            if not inputs:
                raise CrossbarError("NOR needs at least one input")
            if output in inputs:
                raise CrossbarError("output cell collides with an input")
            out_row, out_col = output
            self._check_initialised(out_row, out_col)
            bits = [self.array.value(r, c) for r, c in inputs]
            self._charge_electrical(bits)
            sampled.append((output, int(not any(bits))))
        results = []
        for (out_row, out_col), result in sampled:
            self.array.set_value(out_row, out_col, result)
            results.append(result)
        self._tick(Cost(cycles=1, nor_ops=len(operations)))
        return results

    # -- derived micro-ops -----------------------------------------------------------

    def not_across_rows(self, in_row: int, out_row: int, cols: Sequence[int]) -> None:
        """Row-parallel NOT (1-input NOR): ``out = NOT(in)`` per column."""
        self.nor_across_rows([in_row], out_row, cols)

    def copy_row(
        self,
        src_row: int,
        inverted_row: int,
        dst_row: int,
        cols: Sequence[int],
        inverted_ready: bool = False,
    ) -> None:
        """Copy a row segment as two successive NOTs via ``inverted_row``.

        When ``inverted_ready`` is true, the intermediate inversion already
        exists (produced by a previous copy of the same source) and only the
        second NOT fires — the sharing that caps partial-product generation
        at N+1 cycles.  Scratch initialisation is bulk/pre-staged (no
        cycles), so a fresh copy costs exactly 2 cycles and a shared one 1.
        """
        if not inverted_ready:
            self.init_row_segment(inverted_row, cols, charge_cycle=False)
            self.not_across_rows(src_row, inverted_row, cols)
        self.init_row_segment(dst_row, cols, charge_cycle=False)
        self.not_across_rows(inverted_row, dst_row, cols)

    # -- electrical model -----------------------------------------------------------

    def _charge_electrical(self, input_bits: Sequence[int]) -> None:
        """Joule heating of one NOR evaluation along the V0 path.

        Input devices appear in parallel between the driven line and the
        output device.  The average output resistance over the cycle is the
        mean of its initial (RON) and final values.
        """
        params = self.array.model.params
        g_in = sum(
            1.0 / (params.r_on if bit else params.r_off) for bit in input_bits
        )
        r_in = 1.0 / g_in if g_in > 0 else params.r_off
        switches = any(input_bits)
        r_out_avg = (
            0.5 * (params.r_on + params.r_off) if switches else params.r_on
        )
        # No current flows without the execution voltage across the path;
        # when the output keeps its '1' the path is input-limited.
        current_path = r_in + r_out_avg
        power = EXECUTION_VOLTAGE**2 / current_path
        self.electrical_energy += power * CYCLE_TIME
