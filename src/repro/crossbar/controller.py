"""The memory controller: APIM's command interface (Figure 1(b)).

The paper's controller sits at the periphery of the memory unit, decodes
commands, sequences MAGIC voltages, configures the interconnect and gates
copies on sensed multiplier bits.  This module provides that interface as
a small command set plus an executor:

========  ============================================  =================
opcode    operands                                      effect
========  ============================================  =================
``WR``    block, row, value, width                      DMA word write
``RD``    block, row, width                             word read (result)
``CLR``   block, row                                    bulk row erase
``INIT``  block, [(row, col), ...]                      SET cells to '1'
``NOR``   block, [(row, col), ...] inputs, (row, col)   one MAGIC NOR
``CPY``   src_block, src_row, dst_block, dst_row,       shifted copy
          width, shift, shared
``MAJ``   block, col, (row, row, row), dst (row, col)   SA majority +
                                                        write-back
``RETIRE``  block, row                                  spare-row remap
``TICK``  cycles                                        controller delay
========  ============================================  =================

Commands have a canonical one-line assembly form (:func:`assemble` /
:func:`format_command`), so micro-programs can be stored, diffed and
replayed — the repository uses this for golden-trace tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.cost import Cost
from repro.crossbar.block import BlockedCrossbar
from repro.errors import CrossbarError
from repro.observability.instruments import record_controller_command
from repro.observability.tracing import current_trace

__all__ = [
    "Command",
    "MemoryController",
    "assemble",
    "assemble_program",
    "format_command",
]

#: Opcodes accepted by the controller.
OPCODES = ("WR", "RD", "CLR", "INIT", "NOR", "CPY", "MAJ", "RETIRE", "TICK")


@dataclass(frozen=True)
class Command:
    """One controller command: opcode plus positional arguments."""

    opcode: str
    args: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise CrossbarError(
                f"unknown opcode {self.opcode!r}; expected one of {OPCODES}"
            )


def _cells_to_text(cells: Sequence[tuple[int, int]]) -> str:
    return ",".join(f"{r}:{c}" for r, c in cells)


def _cells_from_text(text: str) -> tuple[tuple[int, int], ...]:
    cells = []
    for item in text.split(","):
        row, _, col = item.partition(":")
        cells.append((int(row), int(col)))
    return tuple(cells)


def format_command(command: Command) -> str:
    """Canonical one-line assembly of a command."""
    op, a = command.opcode, command.args
    if op == "WR":
        return f"WR b{a[0]} r{a[1]} {a[2]:#x} w{a[3]}"
    if op == "RD":
        return f"RD b{a[0]} r{a[1]} w{a[2]}"
    if op == "CLR":
        return f"CLR b{a[0]} r{a[1]}"
    if op == "INIT":
        return f"INIT b{a[0]} {_cells_to_text(a[1])}"
    if op == "NOR":
        return f"NOR b{a[0]} {_cells_to_text(a[1])} -> {a[2][0]}:{a[2][1]}"
    if op == "CPY":
        shared = " shared" if a[6] else ""
        return (
            f"CPY b{a[0]} r{a[1]} -> b{a[2]} r{a[3]} w{a[4]} s{a[5]}{shared}"
        )
    if op == "MAJ":
        return (
            f"MAJ b{a[0]} c{a[1]} {a[2][0]},{a[2][1]},{a[2][2]} "
            f"-> {a[3][0]}:{a[3][1]}"
        )
    if op == "RETIRE":
        return f"RETIRE b{a[0]} r{a[1]}"
    return f"TICK {a[0]}"


def assemble(line: str) -> Command:
    """Parse one assembly line back into a :class:`Command`."""
    tokens = line.split()
    if not tokens:
        raise CrossbarError("empty command line")
    op = tokens[0].upper()

    def block(tok: str) -> int:
        if not tok.startswith("b"):
            raise CrossbarError(f"expected block token, got {tok!r}")
        return int(tok[1:])

    def row(tok: str) -> int:
        if not tok.startswith("r"):
            raise CrossbarError(f"expected row token, got {tok!r}")
        return int(tok[1:])

    def width(tok: str) -> int:
        if not tok.startswith("w"):
            raise CrossbarError(f"expected width token, got {tok!r}")
        return int(tok[1:])

    try:
        if op == "WR":
            return Command(
                "WR",
                (block(tokens[1]), row(tokens[2]), int(tokens[3], 0),
                 width(tokens[4])),
            )
        if op == "RD":
            return Command(
                "RD", (block(tokens[1]), row(tokens[2]), width(tokens[3]))
            )
        if op == "CLR":
            return Command("CLR", (block(tokens[1]), row(tokens[2])))
        if op == "INIT":
            return Command(
                "INIT", (block(tokens[1]), _cells_from_text(tokens[2]))
            )
        if op == "NOR":
            out_row, _, out_col = tokens[4].partition(":")
            return Command(
                "NOR",
                (
                    block(tokens[1]),
                    _cells_from_text(tokens[2]),
                    (int(out_row), int(out_col)),
                ),
            )
        if op == "CPY":
            shared = len(tokens) > 8 and tokens[8] == "shared"
            return Command(
                "CPY",
                (
                    block(tokens[1]), row(tokens[2]),
                    block(tokens[4]), row(tokens[5]),
                    width(tokens[6]), int(tokens[7][1:]), shared,
                ),
            )
        if op == "MAJ":
            rows = tuple(int(t) for t in tokens[3].split(","))
            out_row, _, out_col = tokens[5].partition(":")
            return Command(
                "MAJ",
                (
                    block(tokens[1]), int(tokens[2][1:]), rows,
                    (int(out_row), int(out_col)),
                ),
            )
        if op == "RETIRE":
            return Command("RETIRE", (block(tokens[1]), row(tokens[2])))
        if op == "TICK":
            return Command("TICK", (int(tokens[1]),))
    except (IndexError, ValueError) as exc:
        raise CrossbarError(f"malformed command {line!r}: {exc}") from exc
    raise CrossbarError(f"unknown opcode in {line!r}")


def assemble_program(text: str) -> list[Command]:
    """Parse a multi-line program (``#`` comments and blanks ignored)."""
    program = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            program.append(assemble(line))
    return program


class MemoryController:
    """Executes command streams on a :class:`BlockedCrossbar`.

    Read results accumulate in :attr:`results` in program order; the
    executed command log is kept for golden-trace comparison.
    """

    def __init__(self, fabric: BlockedCrossbar) -> None:
        self.fabric = fabric
        self.results: list[int] = []
        self.log: list[Command] = []

    @property
    def cost(self) -> Cost:
        """The fabric's aggregate cost (commands execute on its clock)."""
        return self.fabric.total_cost

    def execute(self, command: Command) -> int | None:
        """Run one command; RD returns (and records) the word read."""
        self.log.append(command)
        op, a = command.opcode, command.args
        record_controller_command(
            op, cells=len(a[1]) if op in ("INIT", "NOR") else 0
        )
        fabric = self.fabric
        if op == "WR":
            fabric.write_word(a[0], a[1], a[2], a[3])
            return None
        if op == "RD":
            value = fabric.read_word(a[0], a[1], a[2])
            self.results.append(value)
            return value
        if op == "CLR":
            fabric.block(a[0]).clear_row(a[1])
            return None
        if op == "INIT":
            fabric.sync_clocks()
            fabric.engine(a[0]).init_cells(list(a[1]))
            return None
        if op == "NOR":
            fabric.sync_clocks()
            fabric.engine(a[0]).nor_cells(list(a[1]), a[2])
            return None
        if op == "CPY":
            fabric.copy_row_shifted(
                a[0], a[1], a[2], a[3],
                width=a[4], shift=a[5], inverted_ready=a[6],
            )
            return None
        if op == "MAJ":
            blk, col, rows, dst = a
            bit = fabric.sense_amp(blk).majority(col, rows)
            fabric.advance_clock(1)
            fabric.block(blk).set_value(dst[0], dst[1], bit)
            fabric.advance_clock(1)
            fabric.charge_writes(1)
            return None
        if op == "RETIRE":
            fabric.retire_row(a[0], a[1])
            return None
        if op == "TICK":
            fabric.advance_clock(a[0])
            return None
        raise CrossbarError(f"unhandled opcode {op}")  # pragma: no cover

    def run(self, program: Sequence[Command]) -> list[int]:
        """Execute a whole program; returns all RD results in order."""
        start = len(self.results)
        for command in program:
            self.execute(command)
        # One summary event per program, not one per command: command
        # streams run to millions, which would instantly exhaust a trace's
        # event budget and dominate its cost.
        trace = current_trace()
        if trace is not None and program:
            opcodes: dict[str, int] = {}
            for command in program:
                opcodes[command.opcode] = opcodes.get(command.opcode, 0) + 1
            trace.event(
                "controller", "program",
                commands=len(program),
                opcodes=dict(sorted(opcodes.items())),
            )
        return self.results[start:]

    def transcript(self) -> str:
        """The executed command log in assembly form."""
        return "\n".join(format_command(c) for c in self.log)
