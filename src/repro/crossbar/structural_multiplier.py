"""Structural in-memory multiplier (paper Section 3.3, Figure 1(b)-(d)).

Executes an N x N multiplication as the actual micro-op sequence on a
:class:`~repro.crossbar.block.BlockedCrossbar`:

1. **Partial product generation** — the multiplier word is read bit-wise
   through the sense amplifier (overlapped with the copies, costing no
   cycles); for every *set* bit ``i`` the multiplicand is copy-shifted by
   ``i`` bitlines into the processing block.  The first copy pays the
   extra inversion cycle (2 cycles); subsequent copies reuse the inverted
   multiplicand (1 cycle each) — the paper's "worst case N + 1 cycles".
2. **Fast addition** — the Wallace 3:2 reduction of
   :class:`~repro.crossbar.structural_adder.StructuralAdder`, toggling
   between the two processing blocks.
3. **Final product generation** — the hybrid (exact/MAJ-approximate) final
   addition with ``relax_bits`` approximate LSBs.

The fabric layout is three blocks: block 0 stores data; blocks 1 and 2 are
the toggling processing pair.  Cycle counts are pinned against
:func:`repro.core.timing.cost_multiply` by the cross-validation tests.
"""

from __future__ import annotations

from repro.core.approximation import EXACT, ApproxSpec, mask_multiplier
from repro.core.cost import Cost
from repro.crossbar.block import BlockedCrossbar
from repro.crossbar.structural_adder import RowPool, StructuralAdder
from repro.device.vteam import VTEAMModel
from repro.errors import CrossbarError, RecoveryError

__all__ = ["StructuralMultiplier"]

#: Fabric block roles.
DATA_BLOCK = 0
PROC_BLOCK_A = 1
PROC_BLOCK_B = 2


class StructuralMultiplier:
    """An N x N multiplier bound to a three-block crossbar fabric.

    Parameters
    ----------
    word_bits:
        Operand width N (product width 2N).  Structural simulation is
        intended for small widths (4-16 bits); use the functional model for
        workload-scale arithmetic.
    rows:
        Rows per block; must accommodate N partial products plus CSA
        scratch (about 12 rows per concurrent group).
    model:
        Optional shared VTEAM model.
    """

    def __init__(
        self,
        word_bits: int,
        rows: int | None = None,
        model: VTEAMModel | None = None,
    ) -> None:
        if not 2 <= word_bits <= 16:
            raise CrossbarError(
                f"structural multiplier supports 2..16 bit words, got {word_bits}"
            )
        self.word_bits = word_bits
        product_bits = 2 * word_bits
        # Worst case: N partial products -> ceil(N/3) groups * 12 scratch
        # rows + outputs, plus margin for the serial final addition.
        self.rows = rows or max(64, word_bits * 14)
        cols = product_bits + 2  # product + carry-out + margin
        self.fabric = BlockedCrossbar(3, self.rows, cols, model)
        self.adder = StructuralAdder(self.fabric)
        # Rows condemned by BIST, per block: data-row selection and the
        # scratch pools of every multiply skip them (compute-level repair,
        # complementary to the fabric's DMA-level spare remap).
        self._retired: dict[int, set[int]] = {
            DATA_BLOCK: set(), PROC_BLOCK_A: set(), PROC_BLOCK_B: set(),
        }

    def retire_rows(self, block: int, rows) -> int:
        """Permanently exclude rows of one block from future multiplies.

        Returns how many rows were newly retired.  Raises
        :class:`RecoveryError` when so few healthy rows remain that a
        multiplication cannot be laid out any more.
        """
        if block not in self._retired:
            raise CrossbarError(f"block {block} outside the multiplier fabric")
        before = len(self._retired[block])
        for row in rows:
            if not 0 <= row < self.rows:
                raise CrossbarError(f"row {row} outside block ({self.rows})")
            self._retired[block].add(row)
        healthy = self.rows - len(self._retired[block])
        if healthy < 3:
            raise RecoveryError(
                f"block {block} has {healthy} healthy rows left; "
                "cannot lay out a multiplication"
            )
        return len(self._retired[block]) - before

    def retired_rows(self, block: int) -> frozenset[int]:
        """Rows of one block currently excluded from computation."""
        if block not in self._retired:
            raise CrossbarError(f"block {block} outside the multiplier fabric")
        return frozenset(self._retired[block])

    def multiply(
        self, a: int, b: int, spec: ApproxSpec = EXACT
    ) -> tuple[int, Cost]:
        """Multiply two unsigned words; returns ``(product, cost)``.

        ``spec.masked_bits`` zeroes multiplier LSBs before generation (the
        controller simply skips those SA reads' copies); ``spec.relax_bits``
        selects the approximate final stage.
        """
        n = self.word_bits
        spec.validate_for(n)
        limit = 1 << n
        if not (0 <= a < limit and 0 <= b < limit):
            raise CrossbarError(f"operands ({a}, {b}) must be {n}-bit unsigned")
        product_bits = 2 * n
        fabric = self.fabric
        start_cost = fabric.total_cost

        # -- load operands (DMA, untimed) ----------------------------------
        fabric.block(DATA_BLOCK).clear()
        fabric.block(PROC_BLOCK_A).clear()
        fabric.block(PROC_BLOCK_B).clear()
        # Operands and the shared inverted-multiplicand row take the first
        # three healthy rows of the data block (retired rows are skipped).
        healthy = [
            r for r in range(self.rows) if r not in self._retired[DATA_BLOCK]
        ]
        row_m1, row_m2, inverted_row = healthy[:3]
        fabric.write_word(DATA_BLOCK, row_m1, a, n)
        fabric.write_word(DATA_BLOCK, row_m2, b, n)

        b_eff = int(mask_multiplier(b, spec.masked_bits, n))

        # -- stage 1: partial product generation ------------------------------
        sense = fabric.sense_amp(DATA_BLOCK)
        set_bits = []
        for i in range(n):
            bit = sense.read_bit(row_m2, i)  # all N bits are sensed
            if i < spec.masked_bits:
                continue  # masked: the controller suppresses the copy
            if bit:
                set_bits.append(i)
        # Cross-validate the sensed bits against the functional mask — only
        # meaningful when no stuck cell corrupts the stored multiplier word
        # (under faults the sensed word IS the ground truth, and the residue
        # checker upstairs is what catches the resulting wrong product).
        if not any(
            fabric.block(DATA_BLOCK).is_pinned(row_m2, i) for i in range(n)
        ):
            assert len(set_bits) == bin(b_eff).count("1")

        pools = {
            PROC_BLOCK_A: RowPool(
                self.rows, reserved=sorted(self._retired[PROC_BLOCK_A])
            ),
            PROC_BLOCK_B: RowPool(
                self.rows, reserved=sorted(self._retired[PROC_BLOCK_B])
            ),
        }
        pp_rows = []
        for index, i in enumerate(set_bits):
            dst_row = pools[PROC_BLOCK_A].alloc(1)[0]
            fabric.block(PROC_BLOCK_A).clear_row(dst_row)  # pre-staged
            fabric.copy_row_shifted(
                DATA_BLOCK,
                row_m1,
                PROC_BLOCK_A,
                dst_row,
                width=n,
                shift=i,
                inverted_row=inverted_row,
                inverted_ready=index > 0,
            )
            pp_rows.append(dst_row)

        if not set_bits:
            # Zero multiplier: the zero product already sits in a cleared row.
            return 0, self._delta(start_cost)

        if len(set_bits) == 1:
            product = fabric.read_word(PROC_BLOCK_A, pp_rows[0], product_bits)
            return product, self._delta(start_cost)

        # -- stages 2 + 3: reduction and final addition -------------------------
        result_block, result_row = self.adder.fast_multi_add(
            PROC_BLOCK_A,
            PROC_BLOCK_B,
            pp_rows,
            width=product_bits,
            pools=pools,
            relax_bits=spec.relax_bits,
            max_width=product_bits,
        )
        product = fabric.read_word(result_block, result_row, product_bits)
        return product, self._delta(start_cost)

    # -- helpers --------------------------------------------------------------

    def _delta(self, start: Cost) -> Cost:
        """Cost incurred since ``start`` (the fabric accumulates globally)."""
        now = self.fabric.total_cost
        return Cost(
            cycles=now.cycles - start.cycles,
            nor_ops=now.nor_ops - start.nor_ops,
            cell_writes=now.cell_writes - start.cell_writes,
            sa_reads=now.sa_reads - start.sa_reads,
            maj_ops=now.maj_ops - start.maj_ops,
            interconnect_bits=now.interconnect_bits - start.interconnect_bits,
        )
