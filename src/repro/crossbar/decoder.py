"""Row/column decoders and the shared peripheral controller (Figure 1a).

All blocks of the APIM memory unit share the same row and column decoders —
the paper repeatedly stresses this as the reason its area overhead is small
compared to PC-Adder-style multi-array designs.  The decoder model here
provides one-hot line selection with address validation and tracks
activation statistics, which the area/energy ablations consume.
"""

from __future__ import annotations

from repro.errors import CrossbarError

__all__ = ["LineDecoder", "SharedPeriphery"]


class LineDecoder:
    """A one-hot address decoder for ``lines`` wordlines or bitlines."""

    def __init__(self, lines: int, kind: str = "row") -> None:
        if lines <= 0:
            raise CrossbarError(f"decoder needs a positive line count: {lines}")
        if kind not in ("row", "column"):
            raise CrossbarError(f"decoder kind must be 'row' or 'column': {kind!r}")
        self.lines = lines
        self.kind = kind
        self.activations = 0

    @property
    def address_bits(self) -> int:
        """Width of the address input."""
        return max(1, (self.lines - 1).bit_length())

    def select(self, address: int) -> list[int]:
        """One-hot output vector for ``address``."""
        if not 0 <= address < self.lines:
            raise CrossbarError(
                f"{self.kind} address {address} outside [0, {self.lines})"
            )
        self.activations += 1
        return [1 if i == address else 0 for i in range(self.lines)]

    def select_many(self, addresses: list[int]) -> list[int]:
        """Multi-line activation (MAGIC SIMD / MAJ sensing drive several
        lines at once); returns the OR of the one-hot vectors."""
        if not addresses:
            raise CrossbarError("select_many needs at least one address")
        out = [0] * self.lines
        for address in addresses:
            if not 0 <= address < self.lines:
                raise CrossbarError(
                    f"{self.kind} address {address} outside [0, {self.lines})"
                )
            out[address] = 1
        self.activations += 1
        return out


class SharedPeriphery:
    """The decoders and controller shared by every block in the chain.

    Exposes an estimate of the peripheral transistor budget so the area
    ablation can contrast APIM's shared periphery against per-array
    peripheries (the PC-Adder baseline's main overhead).
    """

    #: Rough transistor counts per decoded line / per interconnect switch,
    #: standard text-book figures for NOR-style decoders and pass gates.
    TRANSISTORS_PER_LINE = 6
    TRANSISTORS_PER_SWITCH = 2

    def __init__(self, rows: int, cols: int, num_blocks: int) -> None:
        if num_blocks <= 0:
            raise CrossbarError("need at least one block")
        self.row_decoder = LineDecoder(rows, "row")
        self.col_decoder = LineDecoder(cols, "column")
        self.num_blocks = num_blocks
        self.rows = rows
        self.cols = cols

    def periphery_transistors(self, shared: bool = True) -> int:
        """Decoder + interconnect transistor estimate.

        With ``shared=True`` (APIM) one decoder pair serves all blocks and
        each block boundary adds a barrel-shifter column of switches; with
        ``shared=False`` every block pays its own decoders (the PC-Adder
        organisation).
        """
        decoder = (self.rows + self.cols) * self.TRANSISTORS_PER_LINE
        switches = (
            (self.num_blocks - 1) * self.cols * self.TRANSISTORS_PER_SWITCH
        )
        if shared:
            return decoder + switches
        return decoder * self.num_blocks
