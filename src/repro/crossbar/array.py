"""One crossbar block: a grid of VTEAM memristor cells.

The array stores cell states as a dense float matrix (state in [0, 1]; the
MAGIC convention maps low resistance / state 1 to logic '1').  All accesses
go through row/column index validation, and the array keeps write/read
statistics so higher layers can reconcile structural energy against the
functional cost model.

The array itself knows nothing about MAGIC, interconnects or sensing; those
live in :mod:`repro.crossbar.magic`, :mod:`repro.crossbar.interconnect` and
:mod:`repro.crossbar.sense_amp`.  This separation mirrors the hardware:
the array is dumb storage plus drivers.
"""

from __future__ import annotations

import numpy as np

from repro.device.cell import LOGIC_THRESHOLD
from repro.device.vteam import VTEAMModel
from repro.errors import CrossbarError

__all__ = ["CrossbarArray"]


class CrossbarArray:
    """A ``rows x cols`` block of memristive cells.

    Parameters
    ----------
    rows, cols:
        Block dimensions (wordlines x bitlines).
    model:
        Shared VTEAM evaluator; defaults to the paper's device corner.
    name:
        Optional label used in error messages and block bookkeeping.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        model: VTEAMModel | None = None,
        name: str = "block",
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise CrossbarError(f"invalid block shape {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.model = model or VTEAMModel()
        self.name = name
        # All cells start fully OFF (logic '0'), i.e. freshly formed array.
        self._state = np.zeros((rows, cols), dtype=np.float64)
        self.write_count = 0
        self.read_count = 0
        # Stuck cells: (row, col) -> frozen state.  Writes to pinned cells
        # are silently ineffective, as on real hardware with forming-time
        # stuck-at faults; see repro.device.variation.FaultInjector.
        self._pinned: dict[tuple[int, int], float] = {}

    # -- validation ----------------------------------------------------------

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise CrossbarError(
                f"cell ({row}, {col}) outside {self.name} "
                f"({self.rows}x{self.cols})"
            )

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise CrossbarError(f"row {row} outside {self.name} ({self.rows} rows)")

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.cols:
            raise CrossbarError(f"col {col} outside {self.name} ({self.cols} cols)")

    # -- cell access ----------------------------------------------------------

    def value(self, row: int, col: int) -> int:
        """Logical value of one cell (no read circuitry is modelled here;
        sensing with energy/latency lives in the SA)."""
        self._check(row, col)
        return int(self._state[row, col] > LOGIC_THRESHOLD)

    def state(self, row: int, col: int) -> float:
        """Raw internal device state in [0, 1]."""
        self._check(row, col)
        return float(self._state[row, col])

    def set_value(self, row: int, col: int, bit: int) -> None:
        """Driver write of one cell to a full logic level.

        Writing a pinned (stuck) cell consumes a write pulse but leaves the
        device at its stuck level — the silent failure mode the resilience
        layer exists to detect.
        """
        if bit not in (0, 1):
            raise CrossbarError(f"bit must be 0 or 1, got {bit!r}")
        self._check(row, col)
        if (row, col) not in self._pinned:
            self._state[row, col] = 1.0 if bit else 0.0
        self.write_count += 1

    def set_state(self, row: int, col: int, state: float) -> None:
        """Directly set a raw device state (MAGIC engine / tests).

        Pinned cells keep their stuck level, as in :meth:`set_value`.
        """
        if not 0.0 <= state <= 1.0:
            raise CrossbarError(f"state {state} outside [0, 1]")
        self._check(row, col)
        if (row, col) not in self._pinned:
            self._state[row, col] = state

    # -- stuck-at faults -------------------------------------------------------

    def pin_cell(self, row: int, col: int, level: float) -> None:
        """Freeze one cell at ``level`` (stuck-at fault).

        All subsequent writes through any path (driver, MAGIC, bulk clear,
        restore) leave the cell at ``level`` until :meth:`unpin_cell`.
        """
        if not 0.0 <= level <= 1.0:
            raise CrossbarError(f"stuck level {level} outside [0, 1]")
        self._check(row, col)
        self._pinned[(row, col)] = float(level)
        self._state[row, col] = float(level)

    def unpin_cell(self, row: int, col: int) -> None:
        """Release a pinned cell (repair-lab use; real faults are forever)."""
        self._check(row, col)
        self._pinned.pop((row, col), None)

    def is_pinned(self, row: int, col: int) -> bool:
        """Whether the cell is frozen by a stuck-at fault."""
        self._check(row, col)
        return (row, col) in self._pinned

    def pinned_cells(self) -> dict[tuple[int, int], float]:
        """Copy of the stuck-cell map (ground truth for fault modelling)."""
        return dict(self._pinned)

    def _reassert_pins(self) -> None:
        for (row, col), level in self._pinned.items():
            self._state[row, col] = level

    # -- word access -----------------------------------------------------------

    def row_bits(self, row: int, cols: range | None = None) -> list[int]:
        """Logical values of a row segment, LSB first in column order."""
        self._check_row(row)
        cols = cols if cols is not None else range(self.cols)
        return [self.value(row, c) for c in cols]

    def write_row_bits(self, row: int, bits: list[int], start_col: int = 0) -> None:
        """Driver write of consecutive cells in a row (LSB at ``start_col``)."""
        self._check_row(row)
        if start_col < 0 or start_col + len(bits) > self.cols:
            raise CrossbarError(
                f"row write of {len(bits)} bits at col {start_col} exceeds "
                f"{self.cols} columns"
            )
        for offset, bit in enumerate(bits):
            self.set_value(row, start_col + offset, bit)

    def write_word(self, row: int, value: int, width: int, start_col: int = 0) -> None:
        """Write an unsigned integer as ``width`` bits, LSB first."""
        if value < 0 or value >= 1 << width:
            raise CrossbarError(f"value {value} does not fit in {width} bits")
        bits = [(value >> i) & 1 for i in range(width)]
        self.write_row_bits(row, bits, start_col)

    def read_word(self, row: int, width: int, start_col: int = 0) -> int:
        """Read ``width`` bits of a row back as an unsigned integer."""
        self._check_row(row)
        if start_col < 0 or start_col + width > self.cols:
            raise CrossbarError(
                f"row read of {width} bits at col {start_col} exceeds "
                f"{self.cols} columns"
            )
        word = 0
        for i in range(width):
            word |= self.value(row, start_col + i) << i
        return word

    def clear_row(self, row: int) -> None:
        """Reset a whole row to logic '0' (bulk erase before reuse)."""
        self._check_row(row)
        self._state[row, :] = 0.0
        self.write_count += self.cols
        self._reassert_pins()

    def clear(self) -> None:
        """Reset the entire block."""
        self._state[:, :] = 0.0
        self.write_count += self.rows * self.cols
        self._reassert_pins()

    def fill(self, bit: int) -> None:
        """Bulk driver write of every cell to one logic level.

        Used by the BIST march patterns; costs one write pulse per cell.
        """
        if bit not in (0, 1):
            raise CrossbarError(f"bit must be 0 or 1, got {bit!r}")
        self._state[:, :] = 1.0 if bit else 0.0
        self.write_count += self.rows * self.cols
        self._reassert_pins()

    def fill_row(self, row: int, bit: int) -> None:
        """Bulk driver write of one row to a logic level (BIST row scans)."""
        if bit not in (0, 1):
            raise CrossbarError(f"bit must be 0 or 1, got {bit!r}")
        self._check_row(row)
        self._state[row, :] = 1.0 if bit else 0.0
        self.write_count += self.cols
        self._reassert_pins()

    # -- electrical view ---------------------------------------------------------

    def resistance(self, row: int, col: int) -> float:
        """Instantaneous cell resistance (ohms)."""
        self._check(row, col)
        return self.model.resistance(self._state[row, col])

    def snapshot(self) -> np.ndarray:
        """Copy of the raw state matrix (for tests and checkpointing)."""
        return self._state.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Restore a state matrix captured by :meth:`snapshot`."""
        if snapshot.shape != self._state.shape:
            raise CrossbarError(
                f"snapshot shape {snapshot.shape} does not match "
                f"({self.rows}, {self.cols})"
            )
        self._state = snapshot.copy()
        self._reassert_pins()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrossbarArray({self.name!r}, {self.rows}x{self.cols})"
