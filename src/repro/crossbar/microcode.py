"""Microcode emission: arithmetic as replayable controller programs.

Where :mod:`repro.crossbar.structural_adder` *executes* the paper's NOR
schedules directly on a fabric, this module *emits* them as
:class:`~repro.crossbar.controller.Command` lists — portable, diffable
micro-programs that any :class:`MemoryController` can replay.  This is
the bottom of the compilation story: kernel IR at the top, engine costs
in the middle, and an actual command stream a memory controller would
sequence at the bottom.

Emitted programs use the same cell placement conventions as the direct
executor; ``tests/test_microcode.py`` replays them and pins results and
cycle counts against the formulas.
"""

from __future__ import annotations

from repro.crossbar.controller import Command
from repro.crossbar.structural_adder import (
    FA_SCRATCH_CELLS,
    FACells,
    full_adder_schedule,
)
from repro.errors import CrossbarError

__all__ = ["emit_serial_add", "emit_copy_shifted", "emit_full_adder_bit"]


def emit_full_adder_bit(
    block: int,
    a: tuple[int, int],
    b: tuple[int, int],
    cin: tuple[int, int],
    cout: tuple[int, int],
    total: tuple[int, int],
    scratch: list[tuple[int, int]],
) -> list[Command]:
    """One 1-bit full addition as 1 INIT + 12 NOR commands."""
    if len(scratch) != FA_SCRATCH_CELLS:
        raise CrossbarError(
            f"full adder needs {FA_SCRATCH_CELLS} scratch cells, "
            f"got {len(scratch)}"
        )
    fa = FACells(a=a, b=b, cin=cin, cout=cout, sum=total,
                 scratch=tuple(scratch))
    program = [Command("INIT", (block, fa.output_cells()))]
    program.extend(
        Command("NOR", (block, tuple(inputs), output))
        for inputs, output in full_adder_schedule(fa)
    )
    return program


def emit_serial_add(
    block: int,
    row_a: int,
    row_b: int,
    row_sum: int,
    width: int,
    scratch_rows: list[int],
    start_col: int = 0,
) -> list[Command]:
    """An N-bit serial addition as a command program (``12N + 1`` cycles).

    Layout matches :meth:`StructuralAdder.serial_add`: operands LSB-first
    in ``row_a``/``row_b``, result (width+1 bits) in ``row_sum``, carries
    rippling through ``scratch_rows[-1]``.  The program consists of one
    bulk INIT (all output cells of all bit positions — the controller's
    pre-staging, one cycle), one WR pinning the carry-in to zero, and
    12 NORs per bit.
    """
    if width <= 0:
        raise CrossbarError(f"width must be positive: {width}")
    if start_col != 0:
        # The WR command writes from column 0; pinning the carry-in at an
        # offset would need a column-addressed write the command set keeps
        # out of scope (real DMA writes whole rows).
        raise CrossbarError("emit_serial_add supports start_col == 0 only")
    if len(scratch_rows) < FA_SCRATCH_CELLS + 1:
        raise CrossbarError(
            f"need {FA_SCRATCH_CELLS + 1} scratch rows, "
            f"got {len(scratch_rows)}"
        )
    carry_row = scratch_rows[FA_SCRATCH_CELLS]
    adders = []
    for j in range(width):
        col = start_col + j
        cout_cell = (
            (row_sum, start_col + width)
            if j == width - 1
            else (carry_row, col + 1)
        )
        adders.append(
            FACells(
                a=(row_a, col),
                b=(row_b, col),
                cin=(carry_row, col),
                cout=cout_cell,
                sum=(row_sum, col),
                scratch=tuple(
                    (scratch_rows[i], col) for i in range(FA_SCRATCH_CELLS)
                ),
            )
        )
    init_cells = tuple(
        cell for fa in adders for cell in fa.output_cells()
    )
    program = [
        Command("INIT", (block, init_cells)),
        Command("WR", (block, carry_row, 0, 1)),  # carry-in = 0 at col 0
    ]
    for fa in adders:
        program.extend(
            Command("NOR", (block, tuple(inputs), output))
            for inputs, output in full_adder_schedule(fa)
        )
    return program


def emit_copy_shifted(
    src_block: int,
    src_row: int,
    dst_block: int,
    dst_row: int,
    width: int,
    shift: int = 0,
    shared: bool = False,
) -> list[Command]:
    """A (possibly shifted) inter-block copy as a single CPY command."""
    if width <= 0:
        raise CrossbarError(f"width must be positive: {width}")
    if shift < 0:
        raise CrossbarError(f"shift must be >= 0: {shift}")
    return [
        Command(
            "CPY",
            (src_block, src_row, dst_block, dst_row, width, shift, shared),
        )
    ]
