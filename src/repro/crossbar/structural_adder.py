"""Structural in-memory adders: micro-op sequences on the blocked crossbar.

Implements, as explicit MAGIC NOR schedules, every adder the paper uses:

- :meth:`StructuralAdder.serial_add` — the Talati-style ripple adder
  (paper Eq. 1a/1b): 12 NOR evaluations per bit plus one bulk scratch
  initialisation, ``12N + 1`` cycles for N bits.
- :meth:`StructuralAdder.csa_step` — the width-independent 3:2 carry-save
  step: 12 SIMD NOR cycles + 1 initialisation = 13 cycles for any width and
  any number of same-stage groups (paper Section 3.2).
- :meth:`StructuralAdder.hybrid_final_add` — the final product stage with
  ``m`` MAJ-approximated LSBs and ``k`` exact MSBs: ``13k + 2m + 1`` cycles
  (paper Section 3.4).
- :meth:`StructuralAdder.fast_multi_add` — the Wallace-tree multi-operand
  adder of Figure 2(b), toggling intermediate results between neighbouring
  blocks with arranged (zero-latency) write-back.

The 12-NOR full-adder schedule realises the paper's Eq. (1a)/(1b)::

    t1 = NOR(a, b)    t2 = NOR(b, c)    t3 = NOR(c, a)
    cout = NOR(t1, t2, t3)                       # = MAJ'(..)' = carry
    t4 = NOR(a)       t5 = NOR(b)       t6 = NOR(c)
    t7 = NOR(t4, t5, t6)                         # = a AND b AND c
    t8 = NOR(a, b, c)
    t9 = NOR(t8, cout)                           # = (a+b+c) AND NOT cout
    t10 = NOR(t7, t9)
    sum = NOR(t10)                               # = abc + (a+b+c)(cout)'

Cycle counts produced here are asserted equal to the functional formulas of
:mod:`repro.core.timing` by ``tests/test_cross_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crossbar.block import BlockedCrossbar
from repro.errors import CrossbarError

__all__ = ["StructuralAdder", "FACells", "RowPool"]

#: Scratch cells one full adder consumes (t1..t10).
FA_SCRATCH_CELLS = 10


class RowPool:
    """Free-list allocator of crossbar rows inside one block."""

    def __init__(self, rows: int, reserved: Sequence[int] = ()) -> None:
        self._free = [r for r in range(rows) if r not in set(reserved)]

    def alloc(self, count: int = 1) -> list[int]:
        """Take ``count`` rows; raises :class:`CrossbarError` when exhausted."""
        if count > len(self._free):
            raise CrossbarError(
                f"block out of scratch rows (need {count}, have {len(self._free)})"
            )
        taken, self._free = self._free[:count], self._free[count:]
        return taken

    def free(self, rows: Sequence[int]) -> None:
        """Return rows to the pool."""
        self._free.extend(rows)

    @property
    def available(self) -> int:
        """Rows currently free."""
        return len(self._free)


@dataclass(frozen=True)
class FACells:
    """Cell assignment of one full adder instance.

    ``a``, ``b``, ``cin`` are input cells; ``cout``/``sum`` outputs;
    ``scratch`` the ten intermediate cells (t1..t10 in order).
    """

    a: tuple[int, int]
    b: tuple[int, int]
    cin: tuple[int, int]
    cout: tuple[int, int]
    sum: tuple[int, int]
    scratch: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if len(self.scratch) != FA_SCRATCH_CELLS:
            raise CrossbarError(
                f"full adder needs {FA_SCRATCH_CELLS} scratch cells, "
                f"got {len(self.scratch)}"
            )

    def output_cells(self) -> tuple[tuple[int, int], ...]:
        """All cells that act as NOR outputs (must be initialised to '1')."""
        return self.scratch + (self.cout, self.sum)


def full_adder_schedule(cells: FACells) -> list[tuple[list[tuple[int, int]], tuple[int, int]]]:
    """The 12-step NOR schedule of one full adder (see module docstring).

    Returns ``(inputs, output)`` pairs in dependency order; steps at the
    same index across multiple adders are mutually independent and may
    execute in the same cycle.
    """
    a, b, c = cells.a, cells.b, cells.cin
    t = cells.scratch
    return [
        ([a, b], t[0]),
        ([b, c], t[1]),
        ([c, a], t[2]),
        ([t[0], t[1], t[2]], cells.cout),
        ([a], t[3]),
        ([b], t[4]),
        ([c], t[5]),
        ([t[3], t[4], t[5]], t[6]),
        ([a, b, c], t[7]),
        ([t[7], cells.cout], t[8]),
        ([t[6], t[8]], t[9]),
        ([t[9]], cells.sum),
    ]


class StructuralAdder:
    """Adder micro-programs over a :class:`BlockedCrossbar`."""

    def __init__(self, fabric: BlockedCrossbar) -> None:
        self.fabric = fabric

    # -- ripple (Talati-style) addition ------------------------------------

    def serial_add(
        self,
        block: int,
        row_a: int,
        row_b: int,
        row_sum: int,
        width: int,
        pool: RowPool,
        start_col: int = 0,
    ) -> None:
        """Exact serial addition: ``12*width + 1`` cycles.

        Operands sit LSB-first in ``row_a``/``row_b`` at ``start_col``; the
        ``width + 1``-bit result (carry-out included) lands in ``row_sum``.
        One bulk initialisation cycle precedes 12 NORs per bit.
        """
        self._check_span(block, start_col, width + 1)
        self.fabric.sync_clocks()  # lock-step: catch up with global time
        engine = self.fabric.engine(block)
        array = self.fabric.block(block)
        scratch_rows = pool.alloc(FA_SCRATCH_CELLS + 1)
        carry_row = scratch_rows[-1]
        try:
            adders = []
            for j in range(width):
                col = start_col + j
                cout_cell = (
                    (row_sum, start_col + width)
                    if j == width - 1
                    else (carry_row, col + 1)
                )
                adders.append(
                    FACells(
                        a=(row_a, col),
                        b=(row_b, col),
                        cin=(carry_row, col),
                        cout=cout_cell,
                        sum=(row_sum, col),
                        scratch=tuple((r, col) for r in scratch_rows[:-1]),
                    )
                )
            init_cells = [cell for fa in adders for cell in fa.output_cells()]
            engine.init_cells(init_cells)  # 1 cycle, bulk
            array.set_value(carry_row, start_col, 0)  # carry-in = 0 (setup)
            for fa in adders:  # ripple: carry dependency forces serial order
                for inputs, output in full_adder_schedule(fa):
                    engine.nor_cells(inputs, output)
        finally:
            pool.free(scratch_rows)

    # -- carry-save step ----------------------------------------------------

    def csa_step(
        self,
        block: int,
        triples: Sequence[tuple[int, int, int]],
        out_rows: Sequence[tuple[int, int]],
        width: int,
        pool: RowPool,
        start_col: int = 0,
    ) -> None:
        """One 3:2 reduction over any number of same-stage groups: 13 cycles.

        ``triples[g]`` are the three operand rows of group ``g``;
        ``out_rows[g] = (sum_row, carry_row)``.  The carry word is produced
        *unshifted* (bit j in column j); the caller shifts it by one during
        the arranged move to the next stage, as the interconnect does.

        All groups and all bit positions execute under the same 12 SIMD NOR
        cycles plus one bulk initialisation.
        """
        if len(triples) != len(out_rows):
            raise CrossbarError("triples and out_rows must pair up")
        if not triples:
            raise CrossbarError("csa_step needs at least one group")
        self._check_span(block, start_col, width)
        self.fabric.sync_clocks()  # lock-step: catch up with global time
        engine = self.fabric.engine(block)
        scratch_rows = pool.alloc(FA_SCRATCH_CELLS * len(triples))
        try:
            adders: list[FACells] = []
            for g, ((ra, rb, rc), (rs, rcy)) in enumerate(zip(triples, out_rows)):
                rows_t = scratch_rows[g * FA_SCRATCH_CELLS : (g + 1) * FA_SCRATCH_CELLS]
                for j in range(width):
                    col = start_col + j
                    adders.append(
                        FACells(
                            a=(ra, col),
                            b=(rb, col),
                            cin=(rc, col),
                            cout=(rcy, col),
                            sum=(rs, col),
                            scratch=tuple((r, col) for r in rows_t),
                        )
                    )
            engine.init_cells(
                [cell for fa in adders for cell in fa.output_cells()]
            )  # 1 cycle
            schedules = [full_adder_schedule(fa) for fa in adders]
            for step in range(12):  # 12 SIMD cycles, width- and group-parallel
                engine.nor_parallel([schedule[step] for schedule in schedules])
        finally:
            pool.free(scratch_rows)

    # -- hybrid (approximate) final addition ------------------------------------

    def hybrid_final_add(
        self,
        block: int,
        row_a: int,
        row_b: int,
        row_out: int,
        width: int,
        relax_bits: int,
        pool: RowPool,
        start_col: int = 0,
        skip_lsb: bool = False,
    ) -> None:
        """Final product stage: ``13k + 2m + 1`` cycles (paper Section 3.4).

        The ``m = relax_bits`` least significant *positions* evaluate the
        carry with the modified SA's MAJ function (1 cycle) and write it
        back (1 cycle); their sum bits are then produced by a single
        parallel inversion of the carry chain.  The ``k`` most significant
        positions are exact full adders (13 cycles each, per-bit
        initialisation).  The trailing +1 cycle is the inversion (``m > 0``)
        or the controller's result-commit (``m = 0``).

        ``skip_lsb`` handles the standalone fast adder's survivors, whose
        carry word has a structurally-zero LSB after its shift: position 0
        passes operand A's bit straight through (placed during the bulk
        pre-staging, no cycles) and the machinery covers positions
        ``1 .. width-1`` — the paper's "(N+3)-bit adder" accounting.
        """
        lsb = 1 if skip_lsb else 0
        positions = width - lsb
        if not 0 <= relax_bits <= positions:
            raise CrossbarError(
                f"relax_bits {relax_bits} outside [0, {positions}]"
            )
        self._check_span(block, start_col, width + 1)
        self.fabric.sync_clocks()  # lock-step: catch up with global time
        engine = self.fabric.engine(block)
        array = self.fabric.block(block)
        sense = self.fabric.sense_amp(block)
        scratch_rows = pool.alloc(FA_SCRATCH_CELLS + 1)
        carry_row = scratch_rows[-1]
        try:
            if skip_lsb:
                if array.value(row_b, start_col) != 0:
                    raise CrossbarError(
                        "skip_lsb requires a zero LSB in the carry operand"
                    )
                # Pass-through of A's LSB, pre-staged with the scratch init.
                array.set_state(
                    row_out, start_col,
                    1.0 if array.value(row_a, start_col) else 0.0,
                )
            array.set_value(carry_row, start_col + lsb, 0)  # carry-in = 0
            # -- approximate low positions: MAJ carry chain, 2 cycles/bit ----
            for j in range(lsb, lsb + relax_bits):
                col = start_col + j
                carry = sense.majority(col, (row_a, row_b, carry_row))
                self.fabric.advance_clock(1)  # sense + MAJ (< 1 cycle)
                array.set_value(carry_row, col + 1, carry)
                self.fabric.advance_clock(1)  # carry write-back
                self.fabric.charge_writes(1)
            # -- exact high positions: 13-cycle full adders -------------------
            for j in range(lsb + relax_bits, width):
                col = start_col + j
                cout_cell = (
                    (row_out, start_col + width)
                    if j == width - 1
                    else (carry_row, col + 1)
                )
                fa = FACells(
                    a=(row_a, col),
                    b=(row_b, col),
                    cin=(carry_row, col),
                    cout=cout_cell,
                    sum=(row_out, col),
                    scratch=tuple((r, col) for r in scratch_rows[:-1]),
                )
                engine.init_cells(fa.output_cells())  # 1 cycle (per bit)
                for inputs, output in full_adder_schedule(fa):
                    engine.nor_cells(inputs, output)
            if lsb + relax_bits == width:
                # Whole result approximated: expose the final carry as MSB.
                array.set_state(
                    row_out,
                    start_col + width,
                    1.0 if array.value(carry_row, start_col + width) else 0.0,
                )
            if relax_bits:
                # One parallel inversion produces all approximate sum bits:
                # S_j = NOT(carry_{j+1}).
                engine.init_cells(
                    [
                        (row_out, start_col + j)
                        for j in range(lsb, lsb + relax_bits)
                    ],
                    charge_cycle=False,
                )
                engine.nor_parallel(
                    [
                        (
                            [(carry_row, start_col + j + 1)],
                            (row_out, start_col + j),
                        )
                        for j in range(lsb, lsb + relax_bits)
                    ]
                )  # the formula's trailing +1 cycle
            else:
                self.fabric.advance_clock(1)  # result-commit cycle
        finally:
            pool.free(scratch_rows)

    # -- Wallace-tree multi-operand addition -----------------------------------

    def fast_multi_add(
        self,
        block_a: int,
        block_b: int,
        operand_rows: Sequence[int],
        width: int,
        pools: dict[int, RowPool],
        start_col: int = 0,
        relax_bits: int = 0,
        max_width: int | None = None,
    ) -> tuple[int, int]:
        """Tree-reduce operands living in ``block_a``; returns the location
        ``(block, row)`` of the final sum.

        Stages alternate between ``block_a`` and ``block_b`` (the paper's
        toggling); surviving operands move through the interconnect with the
        carry word shifted left by one, at zero added latency (arranged
        write-back).  The final two survivors pass through the hybrid final
        addition (exact when ``relax_bits == 0``).

        ``max_width`` caps stage growth — inside a multiplication the field
        never exceeds the product width, because the operands' sum is the
        product itself.
        """
        if len(operand_rows) < 2:
            raise CrossbarError("fast_multi_add needs at least two operands")
        current_block = block_a
        other_block = block_b
        current_rows = list(operand_rows)
        stage_width = width
        while len(current_rows) > 2:
            groups = len(current_rows) // 3
            pool = pools[current_block]
            out_pairs = [tuple(pool.alloc(2)) for _ in range(groups)]
            self.csa_step(
                current_block,
                [tuple(current_rows[3 * g : 3 * g + 3]) for g in range(groups)],
                out_pairs,
                stage_width,
                pool,
                start_col,
            )
            survivors: list[tuple[int, int]] = []  # (row, shift)
            for rs, rcy in out_pairs:
                survivors.append((rs, 0))
                survivors.append((rcy, 1))
            for row in current_rows[3 * groups :]:  # stage pass-throughs
                survivors.append((row, 0))
            # Arranged move of every survivor into the neighbouring block.
            next_pool = pools[other_block]
            next_rows = []
            move_width = stage_width
            stage_width += 1  # the carry shift grows the field by one bit
            if max_width is not None:
                # Field capped: the bits beyond max_width are provably zero
                # (the operands' sum is bounded by 2**max_width).
                stage_width = min(stage_width, max_width)
            for row, shift in survivors:
                dst_row = next_pool.alloc(1)[0]
                self.fabric.block(other_block).clear_row(dst_row)  # pre-staged
                self.fabric.move_row_free(
                    current_block, row, other_block, dst_row,
                    move_width, start_col, shift,
                )
                next_rows.append(dst_row)
                pools[current_block].free([row])
            current_rows = next_rows
            current_block, other_block = other_block, current_block
        pool = pools[current_block]
        row_sum = pool.alloc(1)[0]
        self.fabric.block(current_block).clear_row(row_sum)  # pre-staged
        # Uncapped (standalone) reduction: the carry word's LSB is
        # structurally zero after its shift, so position 0 passes through
        # and the final addition runs over stage_width - 1 positions — the
        # paper's "(N+3)-bit adder" accounting for 9 operands.  With only
        # two operands no reduction ran, so there is no carry word to skip.
        skip_lsb = max_width is None and stage_width > width
        effective_positions = stage_width - 1 if skip_lsb else stage_width
        self.hybrid_final_add(
            current_block, current_rows[0], current_rows[1], row_sum,
            stage_width, min(relax_bits, effective_positions), pool, start_col,
            skip_lsb=skip_lsb,
        )
        pool.free(current_rows)
        return current_block, row_sum

    # -- helpers -----------------------------------------------------------------

    def _check_span(self, block: int, start_col: int, width: int) -> None:
        array = self.fabric.block(block)
        if start_col < 0 or start_col + width > array.cols:
            raise CrossbarError(
                f"operand span [{start_col}, {start_col + width}) exceeds "
                f"{array.cols} bitlines"
            )
