"""The configurable inter-block interconnect (paper Section 3.1, Figure 3a).

A barrel-shifter-like switch matrix connects the bitlines of two adjacent
blocks: incoming bitline ``b_i`` of the source block can be routed to
outgoing bitline ``b'_{i+shift}`` of the destination block.  Because the
routing happens *while current flows between the blocks*, a shifted copy (or
an inter-block MAGIC NOR) costs no more latency than an unshifted one —
this is the key enabler of free partial-product alignment.

The interconnect is modelled as a shift amount plus per-transfer validation;
switch-level circuit detail (the transistor ladder of Figure 3a) is
abstracted into the per-bit transfer energy ``APIMConfig.e_interconnect``.
"""

from __future__ import annotations

from repro.errors import CrossbarError

__all__ = ["ConfigurableInterconnect"]


class ConfigurableInterconnect:
    """Switchable bitline-to-bitline routing between two block faces.

    Parameters
    ----------
    cols:
        Number of bitlines on each side (both blocks share the column count,
        as they share the same column decoder in the paper's design).
    max_shift:
        Largest supported shift; in hardware this is set by the number of
        switch stages.  Defaults to ``cols - 1`` (full barrel).
    """

    def __init__(self, cols: int, max_shift: int | None = None) -> None:
        if cols <= 0:
            raise CrossbarError(f"cols must be positive, got {cols}")
        self.cols = cols
        self.max_shift = cols - 1 if max_shift is None else max_shift
        if not 0 <= self.max_shift < cols:
            raise CrossbarError(
                f"max_shift {self.max_shift} outside [0, {cols - 1}]"
            )
        self._shift = 0
        self.bits_transferred = 0
        self.configuration_changes = 0

    @property
    def shift(self) -> int:
        """Currently configured shift (select signals ``s_n`` of Fig. 3a)."""
        return self._shift

    def configure(self, shift: int) -> None:
        """Set the shift amount.

        Reconfiguration is performed by the memory controller between
        operations and does not consume MAGIC cycles (the controller
        pipelines it with the preceding write-back).
        """
        if not 0 <= shift <= self.max_shift:
            raise CrossbarError(
                f"shift {shift} outside supported range [0, {self.max_shift}]"
            )
        if shift != self._shift:
            self.configuration_changes += 1
        self._shift = shift

    def route(self, src_col: int) -> int:
        """Destination bitline for a source bitline under the current shift."""
        if not 0 <= src_col < self.cols:
            raise CrossbarError(f"source column {src_col} outside [0, {self.cols})")
        dst = src_col + self._shift
        if dst >= self.cols:
            raise CrossbarError(
                f"shifted column {dst} falls off the destination block "
                f"({self.cols} bitlines)"
            )
        return dst

    def route_segment(self, start_col: int, width: int) -> range:
        """Destination column range of a ``width``-bit field; validates that
        the whole field stays on the destination block."""
        if width <= 0:
            raise CrossbarError(f"width must be positive, got {width}")
        first = self.route(start_col)
        last_src = start_col + width - 1
        if last_src >= self.cols:
            raise CrossbarError(
                f"source field [{start_col}, {last_src}] exceeds {self.cols} bitlines"
            )
        self.route(last_src)  # validates the far end
        return range(first, first + width)

    def record_transfer(self, bits: int) -> None:
        """Account for ``bits`` crossing the switch matrix (energy hook)."""
        if bits < 0:
            raise CrossbarError(f"bits must be non-negative, got {bits}")
        self.bits_transferred += bits
