"""The modified sense amplifier (paper Section 3.4, Figure 3b).

APIM's SA extends a conventional current-mirror sense amplifier with a
majority (MAJ) mode: when three cells on the same bitline are activated
together, the mirrored current is compared against a 2-of-3 threshold
(the ``R2 > 2`` comparator of Figure 3b), yielding ``MAJ(A, B, C)`` — which
is exactly the carry-out of a 1-bit addition.  A multiplexer selects between
bitwise read and MAJ output.

Timing, from the paper's circuit-level evaluation: a bitwise read takes
0.3 ns; reading plus majority evaluation takes 0.6 ns — "an effective delay
of less than 1 cycle", with one further cycle to write the carry back.

The electrical model here is a threshold comparison on summed cell
conductances, which is both faithful to the current-mirror circuit and
robust for logic-level simulation: a '1' cell conducts ~1000x more than a
'0' cell (10 kOhm vs 10 MOhm), so the decision margins are enormous.
"""

from __future__ import annotations

from repro.crossbar.array import CrossbarArray
from repro.errors import CrossbarError

__all__ = ["SenseAmplifier"]


class SenseAmplifier:
    """Per-block sense amplifier bank with bitwise and MAJ modes.

    One instance serves a whole block (the hardware has one SA per bitline;
    the distinction only matters for statistics, which this class keeps in
    aggregate).
    """

    def __init__(self, array: CrossbarArray) -> None:
        self.array = array
        self.read_count = 0
        self.maj_count = 0

    # -- bitwise mode -------------------------------------------------------

    def read_bit(self, row: int, col: int) -> int:
        """Sense one cell (0.3 ns, ``e_sa_read``)."""
        value = self.array.value(row, col)
        self.read_count += 1
        return value

    def read_row(self, row: int, width: int, start_col: int = 0) -> int:
        """Sense ``width`` cells of a row in parallel (one SA per bitline,
        still a single 0.3 ns access; counted as ``width`` bit reads for
        energy)."""
        word = self.array.read_word(row, width, start_col)
        self.read_count += width
        return word

    # -- majority mode ---------------------------------------------------------

    def majority(self, col: int, rows: tuple[int, int, int]) -> int:
        """MAJ of three cells sharing bitline ``col``.

        Electrically: the three wordlines are activated together and the
        summed bitline conductance is compared against the 2-of-3 threshold
        midway between one and two ON-cell conductances.
        """
        if len(rows) != 3:
            raise CrossbarError(f"majority needs exactly 3 rows, got {len(rows)}")
        g_total = 0.0
        for row in rows:
            self.array._check(row, col)
            g_total += 1.0 / self.array.resistance(row, col)
        g_on = 1.0 / self.array.model.params.r_on
        # Threshold between 1x and 2x the ON conductance: 2-of-3 decision.
        threshold = 1.5 * g_on
        self.maj_count += 1
        return int(g_total > threshold)

    def majority_values(self, a: int, b: int, c: int) -> int:
        """Logic-level MAJ (used where operands are SA latches, not cells)."""
        for name, bit in (("a", a), ("b", b), ("c", c)):
            if bit not in (0, 1):
                raise CrossbarError(f"{name} must be 0 or 1, got {bit!r}")
        self.maj_count += 1
        return int(a + b + c >= 2)
