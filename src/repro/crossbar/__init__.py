"""Structural crossbar simulator (S2-S8).

This subpackage models the APIM memory unit at the level of Figure 1(a):
crossbar blocks of VTEAM cells, row/column decoders, MAGIC NOR execution,
the configurable inter-block interconnect (barrel shifter), and the modified
sense amplifier with its MAJ mode.  On top of those primitives it implements
the paper's adders and multiplier as explicit micro-op sequences.

The structural model is bit-exact and cycle-exact but slow; it exists to
validate the fast functional models in :mod:`repro.core` (see
``tests/test_cross_validation.py``) and to serve device-level experiments.
"""

from repro.crossbar.array import CrossbarArray
from repro.crossbar.block import BlockedCrossbar
from repro.crossbar.interconnect import ConfigurableInterconnect
from repro.crossbar.magic import MagicEngine
from repro.crossbar.sense_amp import SenseAmplifier
from repro.crossbar.structural_adder import StructuralAdder
from repro.crossbar.structural_multiplier import StructuralMultiplier
from repro.crossbar.controller import MemoryController
from repro.crossbar.mapper import CrossbarMapper, DataLayout
from repro.crossbar.microcode import (
    emit_copy_shifted,
    emit_full_adder_bit,
    emit_serial_add,
)

__all__ = [
    "CrossbarArray",
    "BlockedCrossbar",
    "ConfigurableInterconnect",
    "MagicEngine",
    "SenseAmplifier",
    "StructuralAdder",
    "StructuralMultiplier",
    "MemoryController",
    "CrossbarMapper",
    "DataLayout",
    "emit_serial_add",
    "emit_copy_shifted",
    "emit_full_adder_bit",
]
