"""Data layout: mapping application arrays onto the blocked crossbar.

APIM computes where data lives, so layout *is* scheduling: an array must
be placed so that operand words share rows with their partners' bitlines,
each lane's operands sit within one block pair, and scratch space remains
for the operation chains.  This module provides that mapping layer:

- :class:`DataLayout` — placement of a named array: which blocks, which
  rows, how many words per row.
- :class:`CrossbarMapper` — allocates layouts over a machine-sized fabric
  (without materialising it), computes lane assignments for element-wise
  operations between arrays, and reports utilisation.

The runtime's analytic lane model
(:meth:`~repro.core.config.APIMConfig.parallel_lanes`) is the aggregate
view of exactly this mapping; ``tests/test_mapper.py`` pins the two to
agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import APIMConfig, default_config
from repro.errors import CrossbarError

__all__ = ["DataLayout", "CrossbarMapper", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Physical home of one array word."""

    block: int
    row: int
    start_col: int


@dataclass(frozen=True)
class DataLayout:
    """Placement of one named array across data blocks.

    Words are packed row-major: ``words_per_row`` words per crossbar row,
    ``rows_per_block`` data rows per block (the rest of each block is
    processing/scratch territory).
    """

    name: str
    elements: int
    word_bits: int
    first_block: int
    blocks_used: int
    words_per_row: int
    rows_per_block: int

    def placement(self, index: int) -> Placement:
        """Physical location of element ``index``."""
        if not 0 <= index < self.elements:
            raise CrossbarError(
                f"element {index} outside array {self.name!r} "
                f"({self.elements} elements)"
            )
        words_per_block = self.words_per_row * self.rows_per_block
        block = self.first_block + index // words_per_block
        within = index % words_per_block
        row = within // self.words_per_row
        col = (within % self.words_per_row) * self.word_bits
        return Placement(block=block, row=row, start_col=col)

    @property
    def capacity(self) -> int:
        """Words the reserved span can hold."""
        return self.blocks_used * self.words_per_row * self.rows_per_block


class CrossbarMapper:
    """Allocates array layouts over an APIM machine.

    Parameters
    ----------
    config:
        Machine geometry.
    data_row_fraction:
        Fraction of each block's rows holding data (the remainder is the
        processing/scratch region the lane model prices).
    """

    def __init__(
        self,
        config: APIMConfig | None = None,
        data_row_fraction: float = 0.5,
    ) -> None:
        if not 0 < data_row_fraction < 1:
            raise CrossbarError("data_row_fraction must be in (0, 1)")
        self.config = config or default_config()
        self.data_row_fraction = data_row_fraction
        self._next_block = 0
        self.layouts: dict[str, DataLayout] = {}

    # -- geometry -----------------------------------------------------------

    @property
    def words_per_row(self) -> int:
        """Words of ``word_bits`` packed in one crossbar row.

        Each operand word needs room for its double-width product next to
        it, so packing is ``cols // (2 * word_bits)``.
        """
        cfg = self.config
        per = cfg.block_cols // (2 * cfg.word_bits)
        if per == 0:
            raise CrossbarError(
                f"block columns ({cfg.block_cols}) cannot hold one "
                f"{2 * cfg.word_bits}-bit product"
            )
        return per

    @property
    def data_rows_per_block(self) -> int:
        """Rows of each block reserved for data."""
        return max(1, int(self.config.block_rows * self.data_row_fraction))

    # -- allocation -----------------------------------------------------------

    def place(self, name: str, elements: int) -> DataLayout:
        """Allocate a layout for ``elements`` words under ``name``."""
        if name in self.layouts:
            raise CrossbarError(f"array {name!r} already placed")
        if elements <= 0:
            raise CrossbarError(f"element count must be positive: {elements}")
        words_per_block = self.words_per_row * self.data_rows_per_block
        blocks = -(-elements // words_per_block)
        layout = DataLayout(
            name=name,
            elements=elements,
            word_bits=self.config.word_bits,
            first_block=self._next_block,
            blocks_used=blocks,
            words_per_row=self.words_per_row,
            rows_per_block=self.data_rows_per_block,
        )
        self._next_block += blocks
        self.layouts[name] = layout
        return layout

    def blocks_allocated(self) -> int:
        """Blocks consumed so far."""
        return self._next_block

    # -- lane assignment ---------------------------------------------------------

    def elementwise_lanes(self, *names: str) -> int:
        """Concurrent lanes for an element-wise op over the named arrays.

        Operands of one element co-reside in the same relative position of
        their layouts (same block offset/row/column), so one block pair's
        processing rows bound the lanes per block; the arrays' block span
        bounds the block-level parallelism.
        """
        if not names:
            raise CrossbarError("need at least one array")
        layouts = [self._layout(name) for name in names]
        elements = {layout.elements for layout in layouts}
        if len(elements) != 1:
            raise CrossbarError(
                "element-wise operands must have equal element counts: "
                f"{sorted(elements)}"
            )
        span = max(layout.blocks_used for layout in layouts)
        processing_rows = self.config.block_rows - self.data_rows_per_block
        lanes_per_block = max(
            1, processing_rows // self.config.mult_rows_per_lane
        )
        return span * lanes_per_block

    def utilization(self, name: str) -> float:
        """Fraction of the reserved span actually holding words."""
        layout = self._layout(name)
        return layout.elements / layout.capacity

    def _layout(self, name: str) -> DataLayout:
        if name not in self.layouts:
            raise CrossbarError(
                f"array {name!r} not placed; have {sorted(self.layouts)}"
            )
        return self.layouts[name]
