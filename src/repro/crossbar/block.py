"""The blocked crossbar memory unit (paper Section 3.1, Figure 1a).

A :class:`BlockedCrossbar` chains several :class:`CrossbarArray` blocks,
adjacent pairs joined by a :class:`ConfigurableInterconnect`.  New data lands
in *data* blocks; computation happens in *processing* blocks; the two are
structurally identical and used interchangeably (the N:2 reduction toggles
between a pair of blocks at every stage).

Latency accounting follows the paper's overlap arguments:

- **Shift-while-copy**: routing through the interconnect adds no cycles to a
  copy; a shifted copy costs the same two NOT cycles as an unshifted one.
- **Arranged write-back**: the outputs of a reduction stage are written
  *through* the interconnect directly into their arranged positions in the
  neighbouring block, so inter-stage arrangement consumes interconnect
  energy but no additional cycles.  Structurally we execute the stage
  in-place and then relocate the outputs with :meth:`move_row_free`, which
  charges the interconnect traffic and zero cycles — the physical write
  already happened inside the stage's final NOR.

All blocks share row/column decoders and a single global clock; per-block
:class:`MagicEngine` counters are kept in lock step by this class.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.cost import Cost
from repro.crossbar.array import CrossbarArray
from repro.crossbar.interconnect import ConfigurableInterconnect
from repro.crossbar.magic import MagicEngine
from repro.crossbar.sense_amp import SenseAmplifier
from repro.device.vteam import VTEAMModel
from repro.errors import CrossbarError, RecoveryError

if TYPE_CHECKING:  # device.variation type-imports crossbar; avoid the cycle
    from repro.device.variation import FaultInjector

__all__ = ["BlockedCrossbar", "RemapTable", "SpareRowPool"]


class SpareRowPool:
    """A block's reserved spare rows, consumed one per retirement.

    The pool is the CONTRA-style area budget made concrete: a fixed
    fraction of each block's wordlines is set aside at manufacturing time
    and handed out by the controller when BIST condemns a data row.
    """

    def __init__(self, rows: Sequence[int]) -> None:
        self._free = list(rows)
        self.capacity = len(self._free)

    def take(self) -> int:
        """Consume one spare; raises :class:`RecoveryError` when exhausted."""
        if not self._free:
            raise RecoveryError(
                f"spare-row pool exhausted ({self.capacity} spares used)"
            )
        return self._free.pop(0)

    @property
    def available(self) -> int:
        """Spares still unused."""
        return len(self._free)

    @property
    def used(self) -> int:
        """Spares already consumed by retirements."""
        return self.capacity - len(self._free)


class RemapTable:
    """Logical-row to physical-row indirection, one entry per retirement.

    The table sits (conceptually) in the row decoder: an access to a
    retired logical row is steered to its replacement physical row.  Rows
    without an entry map to themselves.
    """

    def __init__(self) -> None:
        self._map: dict[tuple[int, int], int] = {}

    def resolve(self, block: int, row: int) -> int:
        """Physical row currently backing ``(block, row)``."""
        return self._map.get((block, row), row)

    def retire(self, block: int, row: int, physical: int) -> None:
        """Point logical ``row`` of ``block`` at a new physical row."""
        self._map[(block, row)] = physical

    def entries(self) -> dict[tuple[int, int], int]:
        """Copy of the remap entries ((block, logical) -> physical)."""
        return dict(self._map)

    def __len__(self) -> int:
        return len(self._map)


class BlockedCrossbar:
    """A chain of crossbar blocks with configurable interconnects.

    Parameters
    ----------
    num_blocks:
        Blocks in the chain (>= 2: at least one data + one processing).
    rows, cols:
        Dimensions of every block.
    model:
        Shared VTEAM device model.
    """

    def __init__(
        self,
        num_blocks: int,
        rows: int,
        cols: int,
        model: VTEAMModel | None = None,
    ) -> None:
        if num_blocks < 2:
            raise CrossbarError("a blocked crossbar needs at least two blocks")
        self.model = model or VTEAMModel()
        self.blocks = [
            CrossbarArray(rows, cols, self.model, name=f"block{i}")
            for i in range(num_blocks)
        ]
        self.engines = [MagicEngine(block) for block in self.blocks]
        self.sense_amps = [SenseAmplifier(block) for block in self.blocks]
        self.interconnects = [
            ConfigurableInterconnect(cols) for _ in range(num_blocks - 1)
        ]
        self.rows = rows
        self.cols = cols
        self._extra_cost = Cost()
        self._post_op_hooks: list[Callable[[], None]] = []
        self._in_post_op_hook = False
        self._spares: list[SpareRowPool] | None = None
        self.spare_rows = 0
        self.remap = RemapTable()

    # -- clocking ----------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Global cycle count: all blocks share one clock."""
        return max(engine.cycles for engine in self.engines)

    def sync_clocks(self) -> None:
        """Bring every block's engine up to the global time.

        Must be called before running micro-ops on a block that has been
        idle while another block computed — the blocks share one clock, so
        serialized cross-block work accumulates on the global timeline.
        """
        now = self.cycles
        for engine in self.engines:
            engine.sync_to(now)

    @property
    def total_cost(self) -> Cost:
        """Aggregate micro-event cost across blocks and interconnects.

        Cycle count is the *global* clock (blocks run in lock step), not the
        sum of per-block counters.
        """
        merged = sum((engine.cost for engine in self.engines), Cost())
        merged += self._extra_cost
        return Cost(
            cycles=self.cycles,
            nor_ops=merged.nor_ops,
            cell_writes=merged.cell_writes,
            sa_reads=merged.sa_reads
            + sum(sa.read_count for sa in self.sense_amps),
            maj_ops=merged.maj_ops + sum(sa.maj_count for sa in self.sense_amps),
            interconnect_bits=merged.interconnect_bits
            + sum(icn.bits_transferred for icn in self.interconnects),
        )

    def charge(self, cost: Cost) -> None:
        """Record cost incurred by composite operations (SA-driven cycles)."""
        self._extra_cost += Cost(
            nor_ops=cost.nor_ops,
            cell_writes=cost.cell_writes,
            sa_reads=cost.sa_reads,
            maj_ops=cost.maj_ops,
            interconnect_bits=cost.interconnect_bits,
        )
        if cost.cycles:
            self.advance_clock(int(cost.cycles))

    def charge_writes(self, count: int) -> None:
        """Account explicit driver write-backs (e.g. the MAJ carry chain)."""
        if count < 0:
            raise CrossbarError(f"write count must be non-negative: {count}")
        self._extra_cost += Cost(cell_writes=count)

    def advance_clock(self, cycles: int) -> None:
        """Advance the global clock by ``cycles`` (composite operations)."""
        if cycles < 0:
            raise CrossbarError(f"cannot advance clock by {cycles}")
        target = self.cycles + cycles
        for engine in self.engines:
            engine.sync_to(target)
        self._fire_post_op_hooks()

    # -- post-op hooks ------------------------------------------------------

    def add_post_op_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired after every timed fabric operation.

        Hooks run whenever the global clock advances and after zero-cycle
        arranged moves — the operation boundaries of the fabric.  The fault
        campaign uses this to keep injected stuck-at levels asserted through
        MAGIC writes (see :meth:`attach_fault_injector`); instrumentation
        (trace probes, online checkers) can hook in the same way.
        """
        self._post_op_hooks.append(hook)

    def _fire_post_op_hooks(self) -> None:
        if self._in_post_op_hook or not self._post_op_hooks:
            return
        self._in_post_op_hook = True
        try:
            for hook in self._post_op_hooks:
                hook()
        finally:
            self._in_post_op_hook = False

    def attach_fault_injector(
        self, block_index: int, injector: "FaultInjector"
    ) -> None:
        """Make an injector's faults persistent on one block.

        Draws the fault pattern if the injector has not injected yet, pins
        every injected cell (writes to them become silently ineffective, as
        on hardware) and registers a post-op hook that re-asserts the stuck
        levels — so faults survive MAGIC writes without the caller
        sprinkling ``injector.enforce`` between operations.
        """
        array = self.block(block_index)
        if injector.injected:
            injector.pin(array)
        else:
            injector.inject(array, pin=True)
        self.add_post_op_hook(lambda: injector.enforce(array))

    # -- block access -----------------------------------------------------------

    def block(self, index: int) -> CrossbarArray:
        """The ``index``-th block (with range checking)."""
        self._check_block(index)
        return self.blocks[index]

    def engine(self, index: int) -> MagicEngine:
        """The MAGIC engine of one block."""
        self._check_block(index)
        return self.engines[index]

    def sense_amp(self, index: int) -> SenseAmplifier:
        """The sense-amplifier bank of one block."""
        self._check_block(index)
        return self.sense_amps[index]

    def _check_block(self, index: int) -> None:
        if not 0 <= index < len(self.blocks):
            raise CrossbarError(
                f"block index {index} outside [0, {len(self.blocks)})"
            )

    def _interconnect_between(self, a: int, b: int) -> ConfigurableInterconnect:
        self._check_block(a)
        self._check_block(b)
        if abs(a - b) != 1:
            raise CrossbarError(
                f"blocks {a} and {b} are not adjacent; the interconnect "
                "only joins neighbouring blocks"
            )
        return self.interconnects[min(a, b)]

    # -- data movement ------------------------------------------------------------

    def copy_row_shifted(
        self,
        src_block: int,
        src_row: int,
        dst_block: int,
        dst_row: int,
        width: int,
        src_col: int = 0,
        shift: int = 0,
        inverted_row: int | None = None,
        inverted_ready: bool = False,
    ) -> None:
        """Copy a row segment to an adjacent block, shifted by ``shift``.

        Implements the two-NOT copy through the interconnect: the first NOT
        produces the inverted source (in ``inverted_row`` of the source
        block, reusable across copies), the second NOT lands directly in the
        destination block at ``src_col + shift``.  Latency: 2 cycles, or 1
        when ``inverted_ready``.  Scratch initialisation is covered by the
        bulk pre-initialisation of processing-block scratch space and adds
        no cycles (see module docstring).
        """
        icn = self._interconnect_between(src_block, dst_block)
        icn.configure(shift)
        dst_cols = icn.route_segment(src_col, width)
        src = self.blocks[src_block]
        dst = self.blocks[dst_block]
        if dst_row < 0 or dst_row >= dst.rows:
            raise CrossbarError(f"destination row {dst_row} outside block")
        inverted_row = src_row if inverted_row is None else inverted_row
        cycles = 1 if inverted_ready else 2
        # Logical effect: dst[dst_row, c+shift] = src[src_row, c].
        for offset in range(width):
            bit = src.value(src_row, src_col + offset)
            dst.set_value(dst_row, dst_cols.start + offset, bit)
        icn.record_transfer(width)  # interconnect traffic (energy)
        self.advance_clock(cycles)
        nor_ops = width if inverted_ready else 2 * width
        self._extra_cost += Cost(nor_ops=nor_ops)

    def move_row_free(
        self,
        src_block: int,
        src_row: int,
        dst_block: int,
        dst_row: int,
        width: int,
        src_col: int = 0,
        shift: int = 0,
    ) -> None:
        """Relocate a row with zero added cycles (arranged write-back).

        Models the paper's overlap: a reduction stage's outputs are written
        through the interconnect into their arranged destination, so only
        the interconnect traffic is charged here — the cell writes and
        cycles were part of the producing NORs.
        """
        icn = self._interconnect_between(src_block, dst_block)
        icn.configure(shift)
        dst_cols = icn.route_segment(src_col, width)
        src = self.blocks[src_block]
        dst = self.blocks[dst_block]
        for offset in range(width):
            bit = src.value(src_row, src_col + offset)
            # Bypass write statistics: physically this write already
            # happened inside the producing NOR.
            dst.set_state(dst_row, dst_cols.start + offset, 1.0 if bit else 0.0)
        icn.record_transfer(width)
        self._fire_post_op_hooks()

    # -- checkpointing -----------------------------------------------------------

    def save_checkpoint(self, path: str) -> None:
        """Persist every block's cell state and the global clock to ``path``
        (NumPy ``.npz``), so long structural runs can resume mid-stream."""
        import numpy as np

        arrays = {
            f"block_{i}": block.snapshot()
            for i, block in enumerate(self.blocks)
        }
        arrays["clock"] = np.array([self.cycles], dtype=np.int64)
        np.savez_compressed(path, **arrays)

    def load_checkpoint(self, path: str) -> None:
        """Restore a :meth:`save_checkpoint` snapshot (state + clock).

        Cost counters are NOT restored — a resumed run accounts only the
        work it performs; merge ledgers externally when cumulative cost is
        needed.
        """
        import numpy as np

        with np.load(path) as data:
            for i, block in enumerate(self.blocks):
                key = f"block_{i}"
                if key not in data:
                    raise CrossbarError(
                        f"checkpoint lacks {key}; fabric has "
                        f"{len(self.blocks)} blocks"
                    )
                block.restore(data[key])
            self.advance_clock(max(0, int(data["clock"][0]) - self.cycles))

    # -- spare rows and repair ----------------------------------------------

    def reserve_spares(self, fraction: float) -> int:
        """Partition the top ``ceil(rows * fraction)`` rows of every block
        into a :class:`SpareRowPool`, returning the per-block spare count.

        Spares are a budgeted resource (the area model charges for them);
        callers must keep data and scratch allocations below
        :attr:`data_rows` once spares are reserved.  Re-reserving with the
        same fraction is a no-op; changing the fraction after retirements
        began is an error.
        """
        if not 0.0 <= fraction < 1.0:
            raise CrossbarError(f"spare fraction {fraction} outside [0, 1)")
        count = math.ceil(self.rows * fraction)
        if self._spares is not None:
            if count == self.spare_rows:
                return count
            if any(pool.used for pool in self._spares):
                raise CrossbarError(
                    "cannot resize the spare pool after retirements began"
                )
        if count >= self.rows:
            raise CrossbarError(
                f"spare fraction {fraction} leaves no data rows"
            )
        self._spares = [
            SpareRowPool(range(self.rows - count, self.rows))
            for _ in self.blocks
        ]
        self.spare_rows = count
        return count

    @property
    def data_rows(self) -> int:
        """Rows per block available to data/scratch (excludes spares)."""
        return self.rows - self.spare_rows

    def spare_pool(self, block: int) -> SpareRowPool:
        """The spare pool of one block (after :meth:`reserve_spares`)."""
        self._check_block(block)
        if self._spares is None:
            raise RecoveryError(
                "no spare rows reserved; call reserve_spares() first"
            )
        return self._spares[block]

    def resolve_row(self, block: int, row: int) -> int:
        """Physical row currently backing a logical row (remap lookup)."""
        self._check_block(block)
        return self.remap.resolve(block, row)

    def retire_row(self, block: int, row: int) -> int:
        """Retire the physical row backing logical ``row`` onto a spare.

        The readable contents of the dying row are driver-copied into the
        spare (bits held by stuck cells are already lost — re-execution, not
        the copy, restores them), the remap table is updated, and the new
        physical row is returned.  Raises :class:`RecoveryError` when the
        block's spare pool is exhausted.
        """
        self._check_block(block)
        if not 0 <= row < self.rows:
            raise CrossbarError(f"row {row} outside block ({self.rows} rows)")
        old_physical = self.resolve_row(block, row)
        spare = self.spare_pool(block).take()
        array = self.blocks[block]
        for col in range(self.cols):
            array.set_value(spare, col, array.value(old_physical, col))
        self.remap.retire(block, row, spare)
        self.charge_writes(self.cols)
        self.advance_clock(2)  # row read-out + driver rewrite
        return spare

    # -- DMA paths -----------------------------------------------------------

    def write_word(
        self, block: int, row: int, value: int, width: int, start_col: int = 0
    ) -> None:
        """Load external data into a data block (DMA-style, not timed).

        Logical rows resolve through the remap table, so retired rows stay
        addressable at their original coordinates.
        """
        self.block(block).write_word(
            self.resolve_row(block, row), value, width, start_col
        )

    def read_word(
        self, block: int, row: int, width: int, start_col: int = 0
    ) -> int:
        """Read a word out of a block (verification path, not timed)."""
        return self.block(block).read_word(
            self.resolve_row(block, row), width, start_col
        )
