"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``fig4`` / ``fig5`` / ``fig6`` / ``table1`` / ``adaptive`` — regenerate
  one paper artifact and print it paper-style.
- ``report [-o FILE]`` — run everything and emit the markdown report.
- ``run WORKLOAD [-m RELAX]`` — execute one workload at a given
  approximation level and print quality/cost.
- ``sweep PARAM V1 V2 ...`` — sensitivity sweep of a model constant.
- ``faults`` — stuck-cell rate x spare-budget resilience campaign.
- ``campaign`` — (workload x relax-level) grid, optionally supervised
  (``--retries/--deadline``) and checkpointed (``--checkpoint/--resume``).
- ``chaos`` — fault-injected supervised campaign: completion yield,
  retry counts and degradation mix versus injected fault rate.
- ``metrics`` — run a supervised workload grid under full instrumentation
  and dump (or serve) the Prometheus scrape.
- ``serve`` — boot the sharded serving frontend: a :class:`CrossbarPool`
  behind the JSON-over-HTTP API (``/submit``, ``/result/<id>``,
  ``/trace/<id>``, ``/healthz``, ``/stats``, ``/fleet``, ``/metrics``).
  With ``--fleet-config FILE`` the pool geometry, shard count, batch
  ceiling and autoscaler policy come from a DSE-selected fleet config;
  with ``--telemetry`` the streaming telemetry pipeline samples the
  registry and tail quantiles behind ``GET /query`` / ``GET /alerts``.
- ``top`` — the fleet dashboard: shards, per-tenant request rates, tail
  quantiles and firing alerts, either polling a live server (``--url``)
  or from a self-contained in-process demo (``--once`` for one frame).
- ``fleet`` — the fleet control plane: run the offline design-space
  exploration (sweep block geometry x interconnect x shard count x batch
  ceiling, fold into a cost-latency Pareto frontier, write the
  per-tenant ``--fleet-config`` selection), or ``--quick`` — force one
  scale-up and one scale-down under a manual clock and assert ``/fleet``
  reflects both.
- ``slo`` — drive a request burst through a pool and report per-layer
  tail latency (p50/p95/p99/p999) plus multi-window burn-rate verdicts
  against an SLO policy.
- ``trace`` — pretty-print one request's end-to-end trace timeline
  (from a live demo pool with ``--quick``, or a JSONL spill file).
- ``search`` — in-memory binarized similarity search: recall-vs-relax
  demo over a seeded codebook, or the served round-trip self-test
  (``--quick``: boot a real server, POST /search, assert the top-k is
  bit-identical to a numpy brute force).
- ``workloads`` — list available workloads.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.analysis.experiments import (
    run_adaptive,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
)
from repro.analysis.report import generate_report
from repro.analysis.sensitivity import SWEEPABLE, sweep_parameter
from repro.analysis.tables import (
    render_adaptive,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
)
from repro.core.approximation import ApproxSpec
from repro.runtime.executor import APIMExecutor
from repro.units import format_si
from repro.workloads import all_workloads, extension_workloads, workload_by_name

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="APIM (DAC 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig4", help="error vs EDP of both approximations")
    p.add_argument("--samples", type=int, default=20000)

    p = sub.add_parser("fig5", help="APIM vs GPU over dataset sizes")
    p.add_argument("--tile", type=int, default=1 << 13)

    sub.add_parser("fig6", help="multi-operand adder comparison")

    p = sub.add_parser("table1", help="QoL/EDP grid over six applications")
    p.add_argument("--tile", type=int, default=1 << 13)

    p = sub.add_parser("adaptive", help="adaptive tuner per application")
    p.add_argument("--tile", type=int, default=1 << 13)

    p = sub.add_parser("report", help="full markdown reproduction report")
    p.add_argument("-o", "--output", default=None, help="write to a file")
    p.add_argument("--samples", type=int, default=10000)
    p.add_argument("--tile", type=int, default=1 << 12)

    p = sub.add_parser("run", help="run one workload at a relax level")
    p.add_argument("workload")
    p.add_argument("-m", "--relax", type=int, default=0)
    p.add_argument("--elements", type=int, default=None)
    p.add_argument("--seed", type=int, default=2017)

    p = sub.add_parser("sweep", help="sensitivity sweep of a constant")
    p.add_argument("parameter", choices=sorted(SWEEPABLE))
    p.add_argument("values", type=float, nargs="+")
    p.add_argument("--workload", default="Sobel")

    p = sub.add_parser("campaign", help="grid of workloads x relax levels")
    p.add_argument("--workloads", nargs="+", default=["Sobel", "Robert"])
    p.add_argument("--levels", type=int, nargs="+", default=[0, 16, 32])
    p.add_argument("--tile", type=int, default=1 << 11)
    p.add_argument("-o", "--output", default=None, help="write CSV to a file")
    p.add_argument(
        "--checkpoint", default=None,
        help="JSONL journal path for kill-safe progress",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip points the checkpoint journal proves complete",
    )
    p.add_argument(
        "--retries", type=int, default=None,
        help="supervise each point with up to N attempts",
    )
    p.add_argument(
        "--deadline", type=float, default=None,
        help="per-point wall-clock deadline in seconds (implies supervision)",
    )
    p.add_argument("--seed", type=int, default=2017)

    p = sub.add_parser(
        "chaos",
        help="fault-injected supervised campaign: yield vs chaos rate",
    )
    p.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.1, 0.3],
        help="transient-fault injection rates to sweep",
    )
    p.add_argument("--latency-rate", type=float, default=0.05)
    p.add_argument("--corrupt-rate", type=float, default=0.02)
    p.add_argument("--workloads", nargs="+", default=["Sobel", "Robert"])
    p.add_argument("--levels", type=int, nargs="+", default=[0, 16, 32])
    p.add_argument("--tile", type=int, default=1 << 10)
    p.add_argument("--retries", type=int, default=4)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--trace", default=None,
        help="stream the supervision timeline to a Chrome trace file",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="tiny smoke grid (CI): one workload, two levels, two rates",
    )
    p.add_argument(
        "--worker-kill-rate", type=float, default=0.0,
        help="also run a subprocess-pool arm that SIGKILLs live workers "
        "at this per-request rate and asserts zero lost requests",
    )
    p.add_argument(
        "--server-kill", action="store_true",
        help="also SIGKILL a journaled serving *process* mid-load, "
        "restart it on the same journal, and assert zero acknowledged "
        "requests lost",
    )
    p.add_argument(
        "--server-kill-requests", type=int, default=10,
        help="acknowledged requests in flight when the server is killed",
    )

    p = sub.add_parser(
        "metrics",
        help="run an instrumented workload grid and dump the "
        "Prometheus scrape",
    )
    p.add_argument("--workload", default="Sobel")
    p.add_argument("--levels", type=int, nargs="+", default=[0, 16])
    p.add_argument("--tile", type=int, default=1 << 10)
    p.add_argument("--retries", type=int, default=3)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "-o", "--output", default=None,
        help="write the exposition to a file instead of stdout",
    )
    p.add_argument(
        "--jsonl", default=None,
        help="also append a JSONL metrics snapshot to this file",
    )
    p.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve the scrape at http://localhost:PORT/metrics "
        "(Ctrl-C to stop)",
    )
    p.add_argument(
        "--trace", default=None,
        help="stream span timings to a Chrome trace file",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="tiny smoke grid (CI): one level, small tile",
    )

    p = sub.add_parser(
        "serve",
        help="serve workload pricing over HTTP from a sharded crossbar pool",
    )
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8017,
        help="listen port (0 picks an ephemeral port)",
    )
    p.add_argument("--tile", type=int, default=1 << 10)
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument(
        "--max-wait", type=float, default=0.002,
        help="seconds a batch head waits for same-workload stragglers",
    )
    p.add_argument("--queue-capacity", type=int, default=64)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--runtime", choices=("inline", "thread", "subprocess"),
        default="thread",
        help="shard execution mechanics: in-process threads (default), "
        "synchronous inline, or one supervised worker process per shard",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to flush in-flight requests after SIGTERM/SIGINT "
        "before forcing shutdown",
    )
    p.add_argument(
        "--journal", nargs="?", const="", default=None, metavar="DIR",
        help="write-ahead request journal directory: acknowledged "
        "requests survive a server crash and replay on restart (with "
        "--quick, DIR may be omitted to use a temporary directory)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="self-test (CI): boot on an ephemeral port, round-trip one "
        "workload over HTTP, verify the result, exit",
    )
    p.add_argument(
        "--fleet-config", default=None, metavar="FILE",
        help="boot from a DSE-selected fleet config (repro fleet): pool "
        "geometry, shard count, batch ceiling and autoscaler policy",
    )
    p.add_argument(
        "--telemetry", action="store_true",
        help="attach the streaming telemetry pipeline: retained series "
        "history behind GET /query and alert rules behind GET /alerts",
    )
    p.add_argument(
        "--telemetry-interval", type=float, default=1.0, metavar="S",
        help="telemetry sampling cadence in seconds (default 1.0)",
    )
    p.add_argument(
        "--telemetry-jsonl", default=None, metavar="FILE",
        help="also export one JSONL telemetry record per tick to FILE "
        "(rotated at 16 MiB, 3 files kept)",
    )

    p = sub.add_parser(
        "top",
        help="fleet dashboard: shards, tenant rates, tail quantiles and "
        "firing alerts, from a live server or an in-process demo",
    )
    p.add_argument(
        "--url", default=None, metavar="URL",
        help="poll a live `repro serve --telemetry` endpoint "
        "(default: boot an in-process demo pool with injected slow "
        "traffic)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (the CI smoke)",
    )
    p.add_argument(
        "--frames", type=int, default=None,
        help="stop after N refreshes (default: until Ctrl-C)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    p.add_argument("--seed", type=int, default=2017)

    p = sub.add_parser(
        "fleet",
        help="offline design-space exploration -> Pareto frontier -> "
        "fleet config, or the autoscaler smoke test",
    )
    p.add_argument(
        "-o", "--output", default="fleet.json",
        help="fleet-config file to write (repro serve --fleet-config)",
    )
    p.add_argument(
        "--block-rows", type=int, nargs="+", default=[256, 1024],
        help="crossbar block heights to sweep",
    )
    p.add_argument(
        "--interconnect-scales", type=float, nargs="+", default=[1.0, 4.0],
        help="interconnect energy multipliers to sweep",
    )
    p.add_argument(
        "--shard-counts", type=int, nargs="+", default=[1, 2, 4],
        help="provisioned shard counts to sweep",
    )
    p.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 8],
        help="batch ceilings to sweep",
    )
    p.add_argument("--workloads", nargs="+", default=["Sobel"])
    p.add_argument(
        "--offered-rps", type=float, default=200.0,
        help="offered load the serving model sizes for",
    )
    p.add_argument("--requests-per-point", type=int, default=3)
    p.add_argument("--tile", type=int, default=1 << 8)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--tenant", action="append", default=None, metavar="NAME:PRIO:SLO_S",
        help="tenant spec (repeatable), e.g. --tenant alice:0:0.5",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="self-test (CI): boot a pool+server on a manual clock, force "
        "one scale-up and one scale-down, assert /fleet reflects both",
    )

    p = sub.add_parser(
        "slo",
        help="serve a request burst and report tail latency + SLO burn "
        "rates",
    )
    p.add_argument("--workloads", nargs="+", default=["Sobel", "Robert"])
    p.add_argument("--levels", type=int, nargs="+", default=[0, 16])
    p.add_argument("--repeat", type=int, default=3,
                   help="passes over the (workload x level) grid")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--tile", type=int, default=1 << 10)
    p.add_argument(
        "--target", type=float, default=2.0,
        help="end-to-end latency objective in seconds",
    )
    p.add_argument(
        "--budget", type=float, default=0.01,
        help="error budget (allowed bad-request fraction)",
    )
    p.add_argument(
        "--chaos-rate", type=float, default=0.0,
        help="transient-fault injection rate while serving",
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--quick", action="store_true",
        help="tiny burst (CI): one workload, two levels, small tile",
    )

    p = sub.add_parser(
        "trace",
        help="pretty-print one request's end-to-end trace timeline",
    )
    p.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id (or request id) to print",
    )
    p.add_argument(
        "--file", default=None,
        help="read traces from a TraceStore JSONL spill file",
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--quick", action="store_true",
        help="demo/CI: serve one chaos-faulted request in-process and "
        "print its timeline",
    )

    p = sub.add_parser(
        "faults", help="fault-injection campaign: yield vs spare budget"
    )
    p.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.001, 0.005],
        help="per-cell stuck-fault rates to sweep",
    )
    p.add_argument(
        "--spare-fractions", type=float, nargs="+", default=[0.02, 0.1],
        help="spare-row budgets (fraction of rows per block)",
    )
    p.add_argument("--trials", type=int, default=5, help="dies per point")
    p.add_argument("--bits", type=int, default=8, help="operand width")
    p.add_argument(
        "--ops", type=int, default=4, help="multiplications per die"
    )
    p.add_argument("--seed", type=int, default=2017)

    p = sub.add_parser(
        "search",
        help="in-memory binarized similarity search over the APIM fabric",
    )
    p.add_argument("--entries", type=int, default=512, help="codebook size")
    p.add_argument("--dim", type=int, default=256, help="bits per codeword")
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("-k", type=int, default=10, help="neighbours per query")
    p.add_argument(
        "--levels", type=int, nargs="+", default=[0, 4, 8, 16, 24, 32],
        help="relax-bits rungs for the recall ladder",
    )
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--shards", type=int, default=2)
    p.add_argument(
        "--runtime", choices=("inline", "thread", "subprocess"),
        default="thread",
        help="shard runtime for the --quick served round trip",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="self-test (CI): boot a real server, round-trip POST "
        "/search, assert the exact-tier top-k is bit-identical to a "
        "numpy brute force, exit",
    )

    sub.add_parser("workloads", help="list available workloads")
    return parser


def _cmd_run(args: argparse.Namespace) -> str:
    workload = workload_by_name(args.workload)
    executor = APIMExecutor()
    result = executor.run(
        workload,
        spec=ApproxSpec.last_stage(args.relax),
        elements=args.elements,
        rng=np.random.default_rng(args.seed),
    )
    lines = [
        f"workload          : {result.workload}",
        f"elements          : {result.elements}",
        f"relax bits (m)    : {args.relax}",
        f"QoL               : {result.qol_percent:.3f} %"
        f" ({'meets' if result.qos_ok else 'MISSES'} QoS)",
        f"multiplications   : {result.mul_count}",
        f"additions         : {result.add_count}",
        f"lane-cycles       : {result.cost.cycles:.0f}",
        f"tile latency      : {format_si(result.time, 's')}",
        f"tile energy       : {format_si(result.energy, 'J')}",
        f"tile EDP          : {result.edp:.3e} J*s",
    ]
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    result = sweep_parameter(args.parameter, args.values, args.workload)
    lines = [
        f"sensitivity of {result.workload} at 1 GiB to {result.parameter} "
        f"({SWEEPABLE[result.parameter]})",
        f"{'value':>14} {'speedup':>9} {'energy':>9} {'EDP':>10}",
    ]
    for point in result.points:
        lines.append(
            f"{point.value:>14.4g} {point.speedup:>8.2f}x "
            f"{point.energy_improvement:>8.1f}x "
            f"{point.edp_improvement:>9.1f}x"
        )
    lines.append(f"EDP spread across the sweep: {result.spread():.2f}x")
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep injected fault rates; non-zero exit on any lost point."""
    from repro.runtime.chaos import ChaosPolicy, chaos_table, run_chaos_campaign

    workloads = list(args.workloads)
    levels = list(args.levels)
    rates = list(args.rates)
    tile = args.tile
    seed = args.seed
    if args.quick:
        workloads, levels, rates, tile = ["Robert"], [0, 16], [0.0, 0.2], 1 << 9
        # This seed provably injects (and recovers) a transient on the tiny
        # grid, so the CI smoke exercises the retry path, not just a clean run.
        seed = 1
    outcomes = []
    for rate in rates:
        policy = ChaosPolicy(
            transient_rate=rate,
            latency_rate=args.latency_rate,
            corrupt_rate=args.corrupt_rate,
            seed=seed,
        )
        outcomes.append(
            run_chaos_campaign(
                workloads=workloads,
                relax_levels=levels,
                policy=policy,
                tile_elements=tile,
                max_attempts=args.retries,
                trace_path=args.trace,
            )
        )
    print("chaos recovery: supervised campaign under injected faults")
    print(chaos_table(outcomes))
    expected = len(workloads) * len(levels)
    lost = sum(
        expected - len(outcome.result.points)
        + outcome.status_counts["failed"]
        for outcome in outcomes
    )
    if lost:
        print(f"LOST POINTS: {lost} — supervision failed its completion "
              "guarantee")
        return 1
    print(f"all {expected} points terminal in every sweep — zero lost")
    code = 0
    if args.worker_kill_rate > 0.0:
        code = _chaos_worker_kill_arm(args, workloads, levels, tile, seed)
    if code == 0 and args.server_kill:
        code = _chaos_server_kill_arm(args, workloads, levels, tile, seed)
    return code


def _chaos_worker_kill_arm(
    args: argparse.Namespace,
    workloads: list,
    levels: list,
    tile: int,
    seed: int,
) -> int:
    """Worker-death chaos: SIGKILL live subprocess workers mid-request.

    Drives the grid through a 2-shard subprocess pool whose parent-side
    injector kills the serving worker at ``--worker-kill-rate`` per
    request.  Every kill must be absorbed by the respawn + re-drive
    ladder: the completion guarantee is zero lost requests.
    """
    from repro.errors import ServingError
    from repro.runtime.chaos import ChaosPolicy
    from repro.serving.pool import Client, CrossbarPool

    rate = args.worker_kill_rate
    grid = [(w, level) for w in workloads for level in levels]
    # Repeat the grid until the arm sees >= 8 requests: enough traffic
    # that a 10-50% kill rate deterministically lands some kills.
    repeats = max(1, -(-8 // len(grid)))
    pool = CrossbarPool(
        shards=2,
        tile_elements=tile,
        seed=seed,
        chaos_policy=ChaosPolicy(
            transient_rate=0.0, latency_rate=0.0, corrupt_rate=0.0,
            worker_kill_rate=rate, seed=seed,
        ),
        runtime="subprocess",
    )
    statuses: dict[str, int] = {}
    lost = 0
    with pool:
        client = Client(pool, tenant="chaos-kill")
        ids = [
            client.submit(workload, relax_bits=level, dataset_bytes=1 << 20)
            for _ in range(repeats)
            for workload, level in grid
        ]
        for request_id in ids:
            try:
                result = client.result(request_id, timeout=120.0)
                statuses[result.status] = statuses.get(result.status, 0) + 1
            except ServingError:
                lost += 1
        lifecycle = pool.runtime.lifecycle()
        kills = sum(
            shard.chaos.injected.get("worker_kill", 0)
            for shard in pool.shards
            if shard.chaos is not None
        )
    print(
        f"worker-kill arm: {len(ids)} request(s) through a 2-shard "
        f"subprocess pool at kill rate {rate:.0%}"
    )
    print(
        f"  kills injected={kills}  workers spawned={lifecycle['spawned']} "
        f"deaths={lifecycle['deaths']} respawns={lifecycle['respawns']} "
        f"re-driven={lifecycle['redriven']}"
    )
    print(f"  terminal statuses: {dict(sorted(statuses.items()))}")
    if lost:
        print(f"LOST REQUESTS: {lost} — crash recovery failed its "
              "completion guarantee")
        return 1
    print(f"  all {len(ids)} requests terminal exactly once — zero lost")
    return 0


def _chaos_server_kill_arm(
    args: argparse.Namespace,
    workloads: list,
    levels: list,
    tile: int,
    seed: int,
) -> int:
    """Whole-server chaos: SIGKILL a journaled serving process mid-load.

    Boots ``repro serve --journal`` as a real subprocess, submits keyed
    requests, SIGKILLs it with requests in flight, restarts it on the
    same journal and polls every acknowledged id to a terminal result.
    The exactly-once ledger must balance: zero acknowledged requests
    lost, zero duplicate terminal records, and every ``ok`` point
    bit-identical to direct in-process pricing.
    """
    from repro.serving.crashtest import run_server_kill_test

    summary = run_server_kill_test(
        requests=args.server_kill_requests,
        tile=tile,
        seed=seed,
        workloads=tuple(workloads),
        levels=tuple(levels),
    )
    recovery = summary["recovery"]
    print(
        f"server-kill arm: {summary['acknowledged']}/{summary['submitted']} "
        f"request(s) acknowledged, {summary['completed_before_kill']} "
        f"complete at SIGKILL"
    )
    print(
        f"  recovery: restored={recovery.get('restored', 0)} "
        f"replayed={recovery.get('replayed', 0)} "
        f"dropped={recovery.get('dropped', 0)} "
        f"truncated={recovery.get('truncated', 0)} bytes torn"
    )
    print(f"  terminal statuses: {dict(sorted(summary['statuses'].items()))}")
    failed = False
    if summary["lost"]:
        print(f"LOST REQUESTS: {summary['lost']} — the journal failed its "
              "durability guarantee")
        failed = True
    if summary["duplicate_completions"]:
        print(f"DUPLICATE COMPLETIONS: {summary['duplicate_completions']} — "
              "the exactly-once tripwire should have fired")
        failed = True
    if summary["mismatched"]:
        print("REPLAY MISMATCHES (served point != direct pricing):")
        for line in summary["mismatched"]:
            print(f"  {line}")
        failed = True
    if failed:
        return 1
    print(
        f"  all {summary['acknowledged']} acknowledged requests terminal "
        "exactly once after SIGKILL+restart — zero lost, replay "
        "bit-identical"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one workload's grid fully instrumented; dump/serve the scrape."""
    from repro.observability import (
        JsonlSnapshotSink,
        MetricsRegistry,
        default_profiler,
        set_default_registry,
        to_prometheus,
    )
    from repro.runtime.campaign import run_campaign
    from repro.runtime.supervisor import RetryPolicy, Supervisor

    levels = [0] if args.quick else list(args.levels)
    tile = (1 << 8) if args.quick else args.tile

    # A fresh registry per invocation: the scrape describes this run, not
    # whatever executed earlier in the process.
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    profiler = default_profiler()
    trace = None
    try:
        if args.trace:
            from repro.runtime.trace import ChromeTraceWriter

            trace = profiler.trace = ChromeTraceWriter(args.trace)
        supervisor = Supervisor(
            retry=RetryPolicy(
                max_attempts=args.retries, jitter_seed=args.seed
            ),
        )
        result = run_campaign(
            [args.workload], levels,
            tile_elements=tile,
            supervisor=supervisor,
            seed=args.seed,
        )
        text = to_prometheus(registry)
        if args.jsonl:
            with JsonlSnapshotSink(args.jsonl) as sink:
                sink.write(
                    registry,
                    workload=args.workload,
                    points=len(result.points),
                )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"metrics written to {args.output}")
        else:
            print(text, end="")
        if args.serve is not None:
            _serve_metrics(registry, args.serve)
    finally:
        if trace is not None:
            profiler.trace = None
            trace.close()
        set_default_registry(previous)
    return 0


def _serve_metrics(registry, port: int) -> None:  # pragma: no cover - manual
    """Serve the live scrape over HTTP until interrupted."""
    import re

    from repro.observability import to_prometheus
    from repro.serving.http import JsonHttpServer

    def scrape(_match, _body):
        return 200, to_prometheus(registry)

    routes = [("GET", re.compile(r"/(metrics/?)?$"), scrape)]
    # No ``with server:`` here — that starts a *background* serve loop,
    # and running a second, foreground one on the same listener makes
    # shutdown racy (the first loop to exit resets socketserver's
    # shutdown flag before the other sees it).
    server = JsonHttpServer(routes, host="localhost", port=port)
    try:
        print(f"serving metrics at {server.url}/metrics (Ctrl-C to stop)")
        server.serve_forever(install_signal_handlers=True)
    finally:
        server.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the sharded serving frontend (or its --quick self-test)."""
    from repro.serving.frontend import build_server, quick_selftest
    from repro.serving.pool import CrossbarPool
    from repro.serving.scheduler import ServingConfig

    if args.quick:
        journal_dir = None
        if args.journal is not None:
            import tempfile

            journal_dir = args.journal or tempfile.mkdtemp(
                prefix="repro-journal-"
            )
            os.makedirs(journal_dir, exist_ok=True)
        return quick_selftest(runtime=args.runtime, journal_dir=journal_dir)
    journal_path = None
    if args.journal is not None:
        if not args.journal:
            print("error: --journal requires DIR outside --quick")
            return 2
        os.makedirs(args.journal, exist_ok=True)
        journal_path = os.path.join(args.journal, "requests.jsonl")
    shards = args.shards
    batch_size = args.batch_size
    apim_config = None
    fleet_document = None
    if args.fleet_config is not None:
        from repro.core.config import default_config
        from repro.fleet import load_fleet_config

        fleet_document = load_fleet_config(args.fleet_config)
        point = fleet_document["pool"]
        shards = point["shard_count"]
        batch_size = point["max_batch_size"]
        base = default_config()
        apim_config = base.with_overrides(
            block_rows=point["block_rows"],
            e_interconnect=(
                base.e_interconnect * point["interconnect_scale"]
            ),
        )
    config = ServingConfig(
        max_batch_size=batch_size,
        max_wait_s=args.max_wait,
        queue_capacity=args.queue_capacity,
    )
    pool = CrossbarPool(
        shards=shards,
        serving_config=config,
        apim_config=apim_config,
        tile_elements=args.tile,
        seed=args.seed,
        runtime=args.runtime,
        journal=journal_path,
    )
    pipeline = None
    if args.telemetry:
        from repro.observability.timeseries import TelemetryPipeline

        pipeline = TelemetryPipeline.for_pool(
            pool, interval_s=args.telemetry_interval
        )
        for rule in _default_telemetry_rules(pool, args.telemetry_interval):
            pipeline.add_rule(rule)
        if args.telemetry_jsonl:
            from repro.observability.export import JsonlSnapshotSink

            pipeline.attach_sink(
                JsonlSnapshotSink(
                    args.telemetry_jsonl, max_bytes=16 << 20, keep=3
                )
            )
        print(
            f"telemetry: sampling every {args.telemetry_interval:g}s "
            f"({len(pipeline.alert_rules)} alert rule(s); GET /query, "
            "GET /alerts)",
            flush=True,
        )
    if fleet_document is not None:
        from repro.fleet import Autoscaler, FleetPolicy

        verdict_source = None
        if pipeline is not None:
            from repro.observability.timeseries import SlopeVerdictSource

            verdict_source = SlopeVerdictSource(pipeline)
        policy_spec = fleet_document.get("autoscaler") or {}
        Autoscaler(
            pool,
            policy=FleetPolicy(**policy_spec) if policy_spec else None,
            tenant_priorities={
                name: spec["priority"]
                for name, spec in fleet_document.get("tenants", {}).items()
            },
            verdict_source=verdict_source,
        )
        point = fleet_document["pool"]
        print(
            f"fleet config: {args.fleet_config} -> block_rows="
            f"{point['block_rows']} interconnect x"
            f"{point['interconnect_scale']:g} shards={shards} "
            f"batch<={batch_size}, autoscaler attached",
            flush=True,
        )

    def graceful_drain():  # pragma: no cover - signal path
        # SIGTERM/SIGINT: close admission first (POST /submit answers 503
        # with Retry-After), flush everything already accepted, and only
        # then let the listener shut down.  The pool context exit joins
        # (or terminates) the workers afterwards.
        pool.begin_drain()
        print("drain: admission closed; flushing in-flight requests")
        if pool.wait_drained(timeout=args.drain_timeout):
            print("drain: all accepted requests terminal")
        else:
            print(f"drain: timeout after {args.drain_timeout:.0f}s; "
                  "forcing shutdown")

    with pool:
        if pipeline is not None:
            pipeline.start()
        if journal_path is not None:
            recovery = pool.recovery
            print(
                f"journal: {journal_path} (restored "
                f"{recovery['restored']} completed, replayed "
                f"{recovery['replayed']} in-flight, dropped "
                f"{recovery['truncated']} torn record(s))",
                flush=True,
            )
        # Foreground serving: do NOT enter ``with server:`` — that spawns
        # a background serve loop, and two loops on one listener race on
        # shutdown (socketserver's exiting loop resets the shutdown flag
        # before the survivor checks it, which hangs the process).
        server = build_server(pool, host=args.host, port=args.port)
        try:
            # flush: the crash-test driver parses this line from a pipe
            # to learn the ephemeral port before any request is sent.
            print(
                f"serving {shards} shard(s) [{args.runtime} runtime] "
                f"at {server.url} (POST /submit, GET /result/<id>, "
                "/healthz, /stats, /metrics; Ctrl-C to stop)",
                flush=True,
            )
            server.serve_forever(
                install_signal_handlers=True, on_signal=graceful_drain
            )
        finally:
            server.close()
            if pipeline is not None:
                pipeline.stop()
    return 0


def _default_telemetry_rules(pool, interval_s: float):
    """The out-of-the-box serving rule set for ``--telemetry``.

    One recording rule (the headline ``p99_slope_s_per_s``) plus two
    alerts: the sampled end-to-end p99 crossing the SLO latency target,
    and a sustained positive p99 slope (the same leading signal the
    fleet's :class:`SlopeVerdictSource` consumes).
    """
    from repro.observability.timeseries import AlertRule, RecordingRule

    p99 = 'repro_latency_quantile_seconds{layer="e2e",quantile="p99"}'
    slope_window = max(10.0 * interval_s, 30.0)
    target = pool.slo.policy.latency_target_s
    return [
        RecordingRule(
            "p99_slope_s_per_s", f"slope({p99}, {slope_window:g})"
        ),
        AlertRule(
            "e2e_p99_above_target",
            f"value({p99})",
            threshold=target,
            for_s=2.0 * interval_s,
            severity="page",
        ),
        AlertRule(
            "e2e_p99_rising",
            f"slope({p99}, {slope_window:g})",
            threshold=0.05 * target / slope_window,
            for_s=3.0 * interval_s,
            severity="warn",
        ),
    ]


def _render_top(stats: dict, alerts: dict | None, process: dict) -> str:
    """One ``repro top`` frame as plain text."""
    shards = stats.get("shards") or []
    healthy = sum(1 for s in shards if s.get("healthy"))
    verdict = (stats.get("slo") or {}).get("verdict", "?")
    firing = (alerts or {}).get("firing", [])
    lines = [
        f"repro top — {len(shards)} shard(s), {healthy} healthy · "
        f"verdict={verdict} · "
        + (f"FIRING: {', '.join(firing)}" if firing else "alerts: none firing")
    ]
    if process:
        rss = process.get("repro_process_rss_bytes")
        lines.append(
            "process: "
            f"rss={format_si(rss, 'B') if rss is not None else '?'} "
            f"cpu={process.get('repro_process_cpu_user_seconds', 0):.1f}s/"
            f"{process.get('repro_process_cpu_system_seconds', 0):.1f}s "
            f"threads={process.get('repro_process_threads', 0):.0f} "
            f"fds={process.get('repro_process_open_fds', 0):.0f}"
        )
    lines.append(
        f"  {'shard':<8} {'healthy':>7} {'served':>8} {'failures':>8} "
        f"{'in_flight':>9} {'busy_s':>10}"
    )
    for shard in shards:
        lines.append(
            f"  {shard['index']:<8} {str(bool(shard['healthy'])):>7} "
            f"{shard['served']:>8} {shard['failures']:>8} "
            f"{shard['in_flight']:>9} {shard['busy_s']:>10.3f}"
        )
    tenants = stats.get("tenants") or {}
    if tenants:
        lines.append(f"  {'tenant':<16} {'total':>8} {'ok':>8} {'rate/s':>10}")
        for name in sorted(tenants):
            entry = tenants[name]
            rate = entry.get("rate_per_s")
            lines.append(
                f"  {name:<16} {entry['total']:>8.0f} "
                f"{entry['by_status'].get('ok', 0):>8.0f} "
                f"{'-' if rate is None else f'{rate:.2f}':>10}"
            )
    tails = stats.get("latency") or {}
    if tails:
        lines.append(
            f"  {'layer':<12} {'count':>6} {'p50':>10} {'p95':>10} "
            f"{'p99':>10} {'p999':>10}"
        )
        for layer, summary in tails.items():
            lines.append(
                f"  {layer:<12} {summary['count']:>6} "
                f"{format_si(summary['p50'], 's'):>10} "
                f"{format_si(summary['p95'], 's'):>10} "
                f"{format_si(summary['p99'], 's'):>10} "
                f"{format_si(summary['p999'], 's'):>10}"
            )
    if alerts is not None:
        lines.append(
            f"  {'alert':<24} {'state':>9} {'severity':>8} {'value':>12} "
            f"{'threshold':>12}"
        )
        for rule in alerts.get("rules", []):
            value = rule.get("value")
            shown = "-" if value is None else f"{value:.4g}"
            threshold = f"{rule['op']}{rule['threshold']:.4g}"
            lines.append(
                f"  {rule['name']:<24} {rule['state']:>9} "
                f"{rule['severity']:>8} {shown:>12} {threshold:>12}"
            )
    return "\n".join(lines)


def _top_process_values(pipeline) -> dict:
    """Newest ``repro_process_*`` samples out of a local pipeline."""
    process = {}
    for key in pipeline.store.keys():
        if key.startswith("repro_process_"):
            latest = pipeline.store.get(key).latest()
            if latest is not None:
                process[key] = latest[1]
    return process


def _cmd_top(args: argparse.Namespace) -> int:
    """The fleet dashboard (one-shot, polling, or live-URL mode)."""
    frames = 1 if args.once else args.frames

    if args.url is not None:
        from repro.serving.frontend import _http_json

        base = args.url.rstrip("/")
        rendered = 0
        while frames is None or rendered < frames:
            if rendered:
                time.sleep(args.interval)
            status, stats = _http_json(f"{base}/stats")
            if status != 200:
                print(f"error: GET {base}/stats -> {status} {stats}")
                return 1
            status, alerts = _http_json(f"{base}/alerts")
            if status != 200:
                alerts = None  # telemetry not enabled on that server
            process = {}
            if (stats.get("telemetry") or {}).get("ticks"):
                for name in (
                    "repro_process_rss_bytes",
                    "repro_process_cpu_user_seconds",
                    "repro_process_cpu_system_seconds",
                    "repro_process_threads",
                    "repro_process_open_fds",
                ):
                    status, payload = _http_json(
                        f"{base}/query?series={name}&fn=value"
                    )
                    if status == 200 and payload.get("series"):
                        derived = payload["series"][0].get("derived") or {}
                        if derived.get("value") is not None:
                            process[name] = derived["value"]
            print(_render_top(stats, alerts, process))
            rendered += 1
        return 0

    # In-process demo: a real pool with telemetry attached, driven by a
    # short burst per frame.  Slow traffic is injected straight into the
    # latency analytics so the p99 alert demonstrably fires.
    from repro.observability.timeseries import TelemetryPipeline
    from repro.serving.pool import Client, CrossbarPool

    pool = CrossbarPool(shards=2, tile_elements=1 << 9, seed=args.seed)
    pipeline = TelemetryPipeline.for_pool(pool, interval_s=0.05)
    for rule in _default_telemetry_rules(pool, pipeline.interval_s):
        pipeline.add_rule(rule)
    target = pool.slo.policy.latency_target_s
    with pool:
        client = Client(pool, tenant="demo")
        rendered = 0
        while frames is None or rendered < frames:
            if rendered:
                time.sleep(args.interval)
            for workload in ("Sobel", "Robert"):
                client.call(workload, relax_bits=8, dataset_bytes=1 << 20)
            # The injected slow traffic: e2e observations far past the
            # SLO target, so /alerts shows a real firing rule.
            for _ in range(4):
                pool.latency.observe("e2e", 2.0 * target)
            for _ in range(4):
                pipeline.tick()
                time.sleep(pipeline.interval_s)
            print(
                _render_top(
                    pool.stats(),
                    pipeline.alerts(),
                    _top_process_values(pipeline),
                )
            )
            rendered += 1
    firing = pipeline.alerts()["firing"]
    if args.once and "e2e_p99_above_target" not in firing:
        print("TOP SMOKE FAIL: injected slow traffic fired no alert")
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Offline DSE -> Pareto frontier -> fleet config (or the smoke)."""
    if args.quick:
        from repro.serving.frontend import fleet_quick_selftest

        return fleet_quick_selftest()
    from repro.fleet import run_dse, write_fleet_config

    tenants = None
    if args.tenant:
        tenants = {}
        for spec in args.tenant:
            try:
                name, priority, slo_s = spec.split(":")
                tenants[name] = {
                    "priority": int(priority),
                    "latency_slo_s": float(slo_s),
                }
            except ValueError:
                print(f"error: --tenant wants NAME:PRIO:SLO_S, got {spec!r}")
                return 2
    result = run_dse(
        block_rows=tuple(args.block_rows),
        interconnect_scales=tuple(args.interconnect_scales),
        shard_counts=tuple(args.shard_counts),
        batch_sizes=tuple(args.batch_sizes),
        workloads=tuple(args.workloads),
        tenants=tenants,
        offered_rps=args.offered_rps,
        requests_per_point=args.requests_per_point,
        tile_elements=args.tile,
        seed=args.seed,
    )
    print(
        f"fleet DSE: {len(result.evaluations)} design point(s) at "
        f"{args.offered_rps:g} req/s offered, frontier has "
        f"{len(result.frontier)} non-dominated point(s)"
    )
    print(f"  {'design point':<22} {'latency':>10} {'cost':>10} {'util':>6}")
    for ev in result.frontier:
        print(
            f"  {ev['key']:<22} {format_si(ev['latency_s'], 's'):>10} "
            f"{ev['cost_w']:>9.3g}W {ev['utilisation']:>5.0%}"
        )
    for name, sel in sorted(result.selection.items()):
        slo = (
            "meets SLO"
            if sel["meets_slo"]
            else "MISSES SLO (fastest point chosen)"
        )
        print(
            f"  tenant {name}: prio={sel['priority']} "
            f"slo={sel['latency_slo_s']:g}s -> {sel['key']} ({slo})"
        )
    write_fleet_config(args.output, result)
    print(f"fleet config written to {args.output}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """Serve a burst through a pool; report tails and burn-rate verdicts."""
    from repro.observability.slo import SLOPolicy, evaluate_points
    from repro.serving.pool import Client, CrossbarPool

    workloads = ["Robert"] if args.quick else list(args.workloads)
    levels = [0, 16] if args.quick else list(args.levels)
    tile = (1 << 9) if args.quick else args.tile
    repeat = 2 if args.quick else args.repeat
    policy = SLOPolicy(
        latency_target_s=args.target,
        error_budget=args.budget,
        min_events=1,  # the burst is the whole population; always judge it
    )
    chaos = None
    if args.chaos_rate:
        from repro.runtime.chaos import ChaosPolicy

        chaos = ChaosPolicy(
            transient_rate=args.chaos_rate,
            latency_rate=0.0,
            corrupt_rate=0.0,
            seed=args.seed,
        )
    pool = CrossbarPool(
        shards=args.shards,
        tile_elements=tile,
        seed=args.seed,
        chaos_policy=chaos,
        slo_policy=policy,
    )
    results = []
    with pool:
        client = Client(pool, tenant="slo")
        for _ in range(repeat):
            for workload in workloads:
                for level in levels:
                    results.append(
                        client.call(
                            workload, relax_bits=level,
                            dataset_bytes=1 << 20,
                        )
                    )
        live = pool.slo.evaluate()
        tails = pool.latency.summary()
        health = pool.healthz()
    offline = evaluate_points(
        [
            {
                "status": r.status,
                "apim_time_s": r.queue_wait_s + r.service_s,
            }
            for r in results
        ],
        policy,
    )
    print(
        f"slo: {len(results)} request(s), target {policy.latency_target_s}s"
        f" end-to-end, budget {policy.error_budget:.2%}"
    )
    print(
        f"  burn rates   : short({live['short_window_s']:.0f}s)="
        f"{live['short_burn']:.2f}  long({live['long_window_s']:.0f}s)="
        f"{live['long_burn']:.2f}  verdict={live['verdict']}"
    )
    print(
        f"  offline grid : bad={offline['bad']}/{offline['total']} "
        f"burn={offline['burn_rate']:.2f} verdict={offline['verdict']}"
        + (f" reasons={offline['by_reason']}" if offline["by_reason"] else "")
    )
    print(f"  healthz      : {health['status']}")
    print(f"  {'layer':<12} {'count':>6} {'p50':>10} {'p95':>10} "
          f"{'p99':>10} {'p999':>10}")
    for layer, summary in tails.items():
        print(
            f"  {layer:<12} {summary['count']:>6} "
            f"{format_si(summary['p50'], 's'):>10} "
            f"{format_si(summary['p95'], 's'):>10} "
            f"{format_si(summary['p99'], 's'):>10} "
            f"{format_si(summary['p999'], 's'):>10}"
        )
    return 1 if live["verdict"] == "fast_burn" else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Pretty-print a trace timeline (live demo or spill file)."""
    from repro.observability.tracing import format_timeline, load_spilled

    if args.file is not None:
        records = load_spilled(args.file)
        if args.trace_id is None:
            print(f"{args.file}: {len(records)} spilled trace(s)")
            for record in records:
                print(f"  {record.trace_id}  events={len(record.events)}")
            return 0
        for record in records:
            if record.trace_id == args.trace_id:
                print(format_timeline(record))
                return 0
        print(f"trace {args.trace_id!r} not found in {args.file}")
        return 1
    if not args.quick:
        print(
            "repro trace needs --quick (in-process demo) or "
            "--file SPILL.jsonl; live servers expose GET /trace/<id>"
        )
        return 2
    from repro.runtime.chaos import ChaosPolicy
    from repro.serving.pool import Client, CrossbarPool

    pool = CrossbarPool(
        shards=1,
        tile_elements=1 << 9,
        seed=args.seed,
        chaos_policy=ChaosPolicy(
            transient_rate=0.1, latency_rate=0.0, corrupt_rate=0.0,
            seed=args.seed,
        ),
    )
    with pool:
        client = Client(pool, tenant="demo")
        result = client.call("Robert", relax_bits=8, dataset_bytes=1 << 20)
        record = pool.traces.get(result.trace_id)
    if record is None:
        print(f"trace {result.trace_id!r} missing from the store")
        return 1
    print(format_timeline(record))
    layers = {event.layer for event in record.events}
    needed = {"frontend", "scheduler", "pool", "supervisor", "executor"}
    missing = needed - layers
    if missing:
        print(f"TIMELINE INCOMPLETE: missing layers {sorted(missing)}")
        return 1
    print(
        f"trace ok: {len(record.events)} events across "
        f"{len(layers)} layers, terminal status {result.status!r}"
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Similarity-search demo (recall ladder) or served self-test."""
    if args.quick:
        from repro.serving.frontend import search_quick_selftest

        return search_quick_selftest(
            shards=args.shards, runtime=args.runtime
        )
    from repro.search import (
        MagicHammingKernel,
        build_planted_index,
        recall_at_k,
    )

    kernel = MagicHammingKernel(word_bits=16)
    kernel.self_test(np.random.default_rng(args.seed))
    cost = kernel.measure_word_cost()
    index, query_bits, _ = build_planted_index(
        entries=args.entries,
        dim=args.dim,
        queries=args.queries,
        seed=args.seed,
    )
    exact = [
        index.top_k(query_bits[i], args.k, relax_bits=0)
        for i in range(len(query_bits))
    ]
    print(
        f"search: {args.entries} codewords x {args.dim} bits, "
        f"{args.queries} quer{'y' if args.queries == 1 else 'ies'}, "
        f"top-{args.k}"
    )
    print(
        f"MAGIC Hamming kernel verified (16-bit witness): "
        f"{cost.nor_ops:.0f} NORs, {cost.cycles:.0f} cycles per word"
    )
    print(f"{'relax':>6} {'shift':>6} {'recall@' + str(args.k):>10}")
    for level in args.levels:
        recalls = [
            recall_at_k(
                np.array(exact[i].ids),
                np.array(
                    index.top_k(query_bits[i], args.k, relax_bits=level).ids
                ),
            )
            for i in range(len(query_bits))
        ]
        top = index.top_k(query_bits[0], args.k, relax_bits=level)
        print(
            f"{level:>6} {top.shift:>6} {float(np.mean(recalls)):>10.3f}"
        )
    return 0


def _cmd_workloads() -> str:
    lines = ["paper workloads (Table 1):"]
    for w in all_workloads():
        lines.append(f"  {w.name:<12} kind={w.kind}")
    lines.append("extension workloads:")
    for w in extension_workloads():
        lines.append(f"  {w.name:<12} kind={w.kind}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig4":
        print(render_figure4(run_figure4(samples=args.samples)))
    elif args.command == "fig5":
        print(render_figure5(run_figure5(tile_elements=args.tile)))
    elif args.command == "fig6":
        print(render_figure6(run_figure6()))
    elif args.command == "table1":
        print(render_table1(run_table1(tile_elements=args.tile)))
    elif args.command == "adaptive":
        print(render_adaptive(run_adaptive(tile_elements=args.tile)))
    elif args.command == "report":
        report = generate_report(samples=args.samples, tile_elements=args.tile)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report)
            print(f"report written to {args.output}")
        else:
            print(report)
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "campaign":
        from repro.runtime.campaign import run_campaign

        supervisor = None
        if args.retries is not None or args.deadline is not None:
            from repro.runtime.supervisor import RetryPolicy, Supervisor

            supervisor = Supervisor(
                retry=RetryPolicy(
                    max_attempts=args.retries or 3, jitter_seed=args.seed
                ),
                deadline_s=args.deadline,
            )
        result = run_campaign(
            list(args.workloads), list(args.levels),
            tile_elements=args.tile,
            supervisor=supervisor,
            checkpoint=args.checkpoint,
            resume=args.resume,
            seed=args.seed,
        )
        text = result.to_csv()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"campaign written to {args.output} "
                  f"({len(result.points)} points)")
        else:
            print(text, end="")
    elif args.command == "chaos":
        return _cmd_chaos(args)
    elif args.command == "metrics":
        return _cmd_metrics(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "top":
        return _cmd_top(args)
    elif args.command == "fleet":
        return _cmd_fleet(args)
    elif args.command == "slo":
        return _cmd_slo(args)
    elif args.command == "trace":
        return _cmd_trace(args)
    elif args.command == "search":
        return _cmd_search(args)
    elif args.command == "faults":
        from repro.resilience import campaign_table, run_fault_campaign

        points = run_fault_campaign(
            list(args.rates),
            list(args.spare_fractions),
            trials=args.trials,
            word_bits=args.bits,
            ops_per_trial=args.ops,
            seed=args.seed,
        )
        print(campaign_table(points))
    elif args.command == "workloads":
        print(_cmd_workloads())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
