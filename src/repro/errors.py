"""Exception hierarchy for the APIM reproduction.

Every error raised by this package derives from :class:`ReproError`, so a
caller embedding the simulator can catch one type.  Subclasses partition the
failure domains: device physics, crossbar structural simulation, cost-model
configuration, workload construction, runtime/QoS tuning, fault recovery,
and the supervised campaign runtime (transients, deadlines, breakers,
checkpoints).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An :class:`~repro.core.config.APIMConfig` (or baseline config) field is
    invalid or inconsistent (e.g. negative cycle time, k + m != 2N)."""


class DeviceError(ReproError):
    """Invalid memristor device operation (e.g. state out of [0, 1],
    non-positive resistance bounds)."""


class CrossbarError(ReproError):
    """Structural crossbar misuse: out-of-range row/column, MAGIC operands
    not aligned in a row/column, writing to an occupied output cell, or an
    interconnect shift that exceeds block width."""


class ApproximationError(ReproError):
    """Invalid approximation setting (negative masked bits, relax bits
    exceeding the product width, unknown mode)."""


class WorkloadError(ReproError):
    """Workload construction/execution failure: bad input shape, unsupported
    bit width, or an empty dataset."""


class KernelExecutionError(WorkloadError):
    """A workload kernel raised a raw (non-:class:`ReproError`) exception
    mid-execution.  The executor normalises such escapes into this type so
    supervision code can treat every kernel failure uniformly."""


class SearchError(ReproError):
    """Similarity-search misuse: a query whose dimensionality does not match
    the codebook, a non-positive (or oversized) ``k``, an empty codebook, or
    a bit-vector wider than the Hamming kernel's crossbar word."""


class QoSError(ReproError):
    """The adaptive tuner could not satisfy the quality-of-service target at
    any supported approximation level."""


class FaultError(ReproError):
    """A hardware fault was detected and could not be masked transparently:
    a BIST scan or online residue check flagged corruption that survived the
    bounded detect/retire/re-execute loop."""


class RecoveryError(FaultError):
    """Fault recovery ran out of resources: the spare-row pool is exhausted
    (and the degradation policy forbids relocation), or no healthy rows
    remain to relocate onto."""


class TransientError(ReproError):
    """A fault that is expected to clear on re-execution: a glitched engine
    pass, a flaky measurement, an injected chaos fault.  The supervisor
    retries these (with backoff) before degrading."""


class DeadlineExceededError(ReproError):
    """A supervised run blew its wall-clock deadline.  In-process kernels
    cannot be preempted, so the supervisor detects the overrun between
    attempts (or after completion) and refuses to spend further time."""


class CircuitOpenError(ReproError):
    """The circuit breaker for a (workload, config) key is open: too many
    consecutive failures.  Callers should degrade or fall back instead of
    hammering a run that keeps dying."""


class JournalError(ReproError):
    """A write-ahead record log is unusable: an unwritable path, a failed
    append/fsync, or corruption beyond the recoverable torn-tail case.
    Raised directly by the serving request journal
    (:mod:`repro.serving.journal`); the campaign checkpoint narrows it to
    :class:`CheckpointError`."""


class CheckpointError(JournalError):
    """The campaign checkpoint journal is unusable: an unwritable path, or
    corruption beyond the recoverable torn-tail case."""


class ObservabilityError(ReproError):
    """Metrics/profiling misuse: an invalid metric or label name, a
    re-registration that conflicts with an existing family (different kind,
    labels or buckets), a negative counter increment, or non-monotonic
    histogram buckets."""


class TracingError(ObservabilityError):
    """Request tracing misuse: an invalid trace-store configuration
    (non-positive capacity or event bound) or an unusable spill path."""


class SLOError(ObservabilityError):
    """An SLO policy or burn-rate evaluation is invalid: inconsistent
    thresholds/windows, an out-of-range error budget, or an evaluation
    over an empty point set."""


class TelemetryError(ObservabilityError):
    """Telemetry pipeline misuse: a malformed series selector or rule
    expression, an invalid ring-buffer capacity or sampling cadence, a
    duplicate alert-rule name, or an alert rule with out-of-range
    hysteresis/severity settings."""


class ServingError(ReproError):
    """The serving layer cannot process a request: the pool is closed, a
    request names an unknown workload, or the frontend received a payload
    it cannot interpret."""


class AdmissionRejectedError(ServingError):
    """Admission control refused a request before it entered the queue —
    the priority class is at capacity (backpressure) or the request's
    deadline cannot be met given the current backlog.  Carries
    ``retry_after_s``, the client's suggested resubmission delay."""

    def __init__(self, message: str, retry_after_s: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ShardUnavailableError(ServingError):
    """No healthy shard can take traffic: every shard's circuit breaker is
    open, the pool was stopped, or the pool is draining for shutdown.
    ``retry_after_s`` — when set — is the client's suggested resubmission
    delay (the frontend turns it into a ``Retry-After`` header)."""

    def __init__(
        self, message: str, retry_after_s: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after_s = (
            None if retry_after_s is None else float(retry_after_s)
        )


class DuplicateRequestError(ServingError):
    """An idempotency key was reused with a *different* payload.  Reusing a
    key with the identical payload is the supported retry path (the pool
    returns the original request id); a conflicting payload under the same
    key is a client bug the frontend surfaces as HTTP 409.  Carries the
    offending ``idempotency_key`` and the ``request_id`` the key already
    maps to."""

    def __init__(
        self,
        message: str,
        idempotency_key: str = "",
        request_id: str = "",
    ) -> None:
        super().__init__(message)
        self.idempotency_key = idempotency_key
        self.request_id = request_id


class FleetError(ReproError):
    """The fleet control plane failed: a live resize left the pool in an
    inconsistent state, a design-space sweep produced no usable frontier,
    or a fleet-config file is malformed.  Raw errors escaping the resize
    path are normalised into this type (cause chained) so the autoscaler
    loop can keep running after a failed decision."""


class ScaleRejectedError(FleetError):
    """A scale decision was refused before any shard was touched: the
    request would leave ``[min_shards, max_shards]``, the cooldown window
    has not elapsed, another resize is still in flight, or shrink found no
    idle victim.  Carries the ``direction`` (``grow``/``shrink``/``shed``)
    and the machine-readable ``reason`` so policy code and tests can
    distinguish a bounded refusal from a resize failure."""

    def __init__(
        self, message: str, direction: str = "", reason: str = ""
    ) -> None:
        super().__init__(message)
        self.direction = direction
        self.reason = reason


class ProtocolError(ServingError):
    """The shard-runtime frame protocol was violated: a torn or truncated
    frame, an oversized frame beyond the negotiated ceiling, a frame body
    that is not valid JSON, or a payload that is not a JSON object.  A
    protocol error on a live stream is unrecoverable for that stream —
    framing is lost — so the supervisor treats it as a worker death."""


class WorkerCrashedError(ServingError):
    """A subprocess shard worker died or wedged mid-request: the process
    exited (segfault, SIGKILL, OOM), its pipe hit EOF/BrokenPipe, or it
    hung past the hang deadline and was killed.  The runtime normalises
    every raw ``BrokenPipeError``/``EOFError``/timeout escape into this
    type, then respawns the worker and re-drives the in-flight request."""

    def __init__(
        self,
        message: str,
        shard: int = -1,
        pid: int | None = None,
        reason: str = "crashed",
    ) -> None:
        super().__init__(message)
        self.shard = int(shard)
        self.pid = pid
        self.reason = reason
