"""Drivers that regenerate every table and figure of the paper.

Each ``run_*`` function is pure orchestration over the library: it wires
the core models, baselines, workloads and runtime together, and returns a
plain dataclass the benches print (via :mod:`repro.analysis.tables`) and
the tests assert shape properties on.

Experiment index (see DESIGN.md Section 4): E1 = Figure 4, E2 = Figure 5,
E3 = Figure 6, E4 = Table 1, E5 = the headline scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.gpu import GPUModel
from repro.baselines.pc_adder import PCAdderModel
from repro.baselines.talati import TalatiAdderModel
from repro.core.approximation import EXACT, ApproxSpec
from repro.core.config import APIMConfig, default_config
from repro.core.multiplier import APIMMultiplier
from repro.core.timing import (
    FULL_ADDER_CYCLES,
    fast_multi_add_cycles,
    hybrid_final_add_cycles,
    reduction_stages,
)
from repro.errors import ConfigurationError
from repro.runtime.comparison import ComparisonHarness, ComparisonResult
from repro.runtime.executor import APIMExecutor
from repro.runtime.tuner import AdaptiveTuner, TuningResult
from repro.units import GIB, MIB
from repro.workloads import all_workloads
from repro.workloads.base import Workload

__all__ = [
    "Figure4Result",
    "Figure4Point",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "Figure6Row",
    "run_figure6",
    "Table1Result",
    "Table1Cell",
    "run_table1",
    "AdaptiveResult",
    "run_adaptive",
    "FIGURE5_SIZES",
    "TABLE1_LEVELS",
]

#: Dataset sizes of Figure 5's x-axis (the paper runs 32 MB .. 1 GB).
FIGURE5_SIZES = (
    32 * MIB,
    64 * MIB,
    128 * MIB,
    256 * MIB,
    512 * MIB,
    GIB,
)

#: Approximation levels of Table 1's columns.
TABLE1_LEVELS = (0, 4, 8, 16, 24, 32)


# ---------------------------------------------------------------------------
# E1: Figure 4 — error vs EDP, first-stage vs last-stage approximation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure4Point:
    """One sweep point of an approximation mode."""

    parameter: int  # masked bits (first stage) or relax bits (last stage)
    mean_relative_error: float
    energy_per_mult: float
    time_per_mult: float

    @property
    def edp(self) -> float:
        """Per-multiplication energy-delay product (J*s)."""
        return self.energy_per_mult * self.time_per_mult


@dataclass(frozen=True)
class Figure4Result:
    """Error/EDP curves of both approximation approaches."""

    first_stage: tuple[Figure4Point, ...]
    last_stage: tuple[Figure4Point, ...]
    samples: int

    def error_gap_at_edp(self, edp_target: float) -> float:
        """First-stage error / last-stage error at a matched EDP.

        The paper's claim: about five orders of magnitude at
        ``EDP = 1.4e-16 J*s`` for 32x32 multiplication.  The sweeps sample
        different EDP grids, so both curves are log-log interpolated at the
        matching point: the first-stage point nearest ``edp_target`` sets
        the EDP, and the last-stage error is read off at that same EDP.
        """
        first = min(self.first_stage, key=lambda p: abs(p.edp - edp_target))
        last_error = self._interpolate_error(self.last_stage, first.edp)
        if last_error == 0:
            return float("inf")
        return first.mean_relative_error / last_error

    @staticmethod
    def _interpolate_error(
        points: tuple[Figure4Point, ...], edp: float
    ) -> float:
        """Log-log interpolation of a mode's error at a given EDP."""
        usable = sorted(
            (p for p in points if p.mean_relative_error > 0),
            key=lambda p: p.edp,
        )
        if not usable:
            return 0.0
        if edp <= usable[0].edp:
            return usable[0].mean_relative_error
        if edp >= usable[-1].edp:
            return usable[-1].mean_relative_error
        for low, high in zip(usable, usable[1:]):
            if low.edp <= edp <= high.edp:
                span = np.log(high.edp) - np.log(low.edp)
                frac = (np.log(edp) - np.log(low.edp)) / span if span else 0.0
                log_err = (1 - frac) * np.log(low.mean_relative_error) + (
                    frac
                ) * np.log(high.mean_relative_error)
                return float(np.exp(log_err))
        return usable[-1].mean_relative_error


def run_figure4(
    config: APIMConfig | None = None,
    samples: int = 20000,
    seed: int = 2017,
    first_stage_bits: tuple[int, ...] = (0, 4, 8, 12, 16, 20, 24, 28),
    last_stage_bits: tuple[int, ...] = (0, 8, 16, 24, 32, 40, 48, 56, 60),
) -> Figure4Result:
    """Monte-Carlo sweep of both approximation modes on random operands."""
    config = config or default_config()
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    multiplier = APIMMultiplier(config)
    rng = np.random.default_rng(seed)
    bits = config.word_bits
    a = rng.integers(0, 1 << bits, samples, dtype=np.uint64)
    b = rng.integers(0, 1 << bits, samples, dtype=np.uint64)
    reference = (a * b).astype(np.float64)

    def sweep(specs: list[ApproxSpec], params: tuple[int, ...]):
        points = []
        for param, spec in zip(params, specs):
            result = multiplier.multiply(a, b, spec)
            err = float(
                np.mean(
                    np.abs(result.products.astype(np.float64) - reference)
                    / np.maximum(reference, 1.0)
                )
            )
            points.append(
                Figure4Point(
                    parameter=param,
                    mean_relative_error=err,
                    energy_per_mult=result.cost.energy(config) / samples,
                    time_per_mult=result.cost.cycles
                    * config.cycle_time
                    / samples,
                )
            )
        return tuple(points)

    first = sweep([ApproxSpec.first_stage(f) for f in first_stage_bits],
                  first_stage_bits)
    last = sweep([ApproxSpec.last_stage(m) for m in last_stage_bits],
                 last_stage_bits)
    return Figure4Result(first_stage=first, last_stage=last, samples=samples)


# ---------------------------------------------------------------------------
# E2: Figure 5 — exact APIM vs GPU over dataset sizes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Result:
    """Energy-improvement and speedup curves per workload."""

    sizes: tuple[int, ...]
    curves: dict[str, tuple[ComparisonResult, ...]]

    def at_one_gib(self, workload: str) -> ComparisonResult:
        """The 1 GB point of one workload (the paper's 28x / 4.8x anchor)."""
        for point in self.curves[workload]:
            if point.dataset_bytes == GIB:
                return point
        raise KeyError(f"no 1 GiB point for {workload}")

    def crossover_bytes(self, workload: str) -> int | None:
        """Smallest swept size where APIM beats the GPU on speed
        (the paper places this near 200 MB)."""
        for point in self.curves[workload]:
            if point.speedup >= 1.0:
                return point.dataset_bytes
        return None


def run_figure5(
    workloads: list[Workload] | None = None,
    sizes: tuple[int, ...] = FIGURE5_SIZES,
    config: APIMConfig | None = None,
    tile_elements: int = 1 << 14,
) -> Figure5Result:
    """Sweep exact APIM against the GPU baseline over dataset sizes.

    Defaults to the four workloads of Figure 5(a)-(d): Sobel, Robert, FFT
    and DwtHaar1D.
    """
    if workloads is None:
        workloads = [
            w
            for w in all_workloads()
            if w.name in ("Sobel", "Robert", "FFT", "DwtHaar1D")
        ]
    harness = ComparisonHarness(config=config, tile_elements=tile_elements)
    curves = {
        w.name: tuple(harness.sweep_sizes(w, list(sizes))) for w in workloads
    }
    return Figure5Result(sizes=tuple(int(s) for s in sizes), curves=curves)


# ---------------------------------------------------------------------------
# E3: Figure 6 — multi-operand addition vs prior work
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Row:
    """Latency of adding N operands of N bits, all designs, one N."""

    operands: int
    apim_cycles: float
    apim_approx_cycles: float
    talati_cycles: float
    pc_adder_cycles: float

    @property
    def speedup_vs_best_prior(self) -> float:
        """APIM exact speedup over the faster prior design."""
        return min(self.talati_cycles, self.pc_adder_cycles) / self.apim_cycles

    @property
    def approx_speedup_vs_best_prior(self) -> float:
        """Approximate (99.9 %-accuracy) APIM speedup over the best prior."""
        return (
            min(self.talati_cycles, self.pc_adder_cycles)
            / self.apim_approx_cycles
        )


@dataclass(frozen=True)
class Figure6Result:
    """The Figure 6 latency comparison across operand counts."""

    rows: tuple[Figure6Row, ...]


#: Exact MSBs kept by Figure 6's approximate-APIM point.  Relaxing all but
#: the top 8 result bits bounds the range-normalised error (the PSNR-style
#: convention) by 0.25 * 2**-8 ~ 1e-3 — the paper's "99.9 % accuracy".
FIG6_EXACT_MSBS = 8


def run_figure6(
    operand_counts: tuple[int, ...] = (4, 8, 16, 32),
    config: APIMConfig | None = None,
) -> Figure6Result:
    """Latency of N-operand, N-bit addition for APIM and both baselines.

    The approximate APIM row keeps the tree reduction exact (carry-save is
    always exact) and applies the MAJ shortcut to all but the top
    :data:`FIG6_EXACT_MSBS` bits of the final addition — the '99.9 %
    accuracy' point the paper quotes as 'at least 6x faster'.
    """
    config = config or default_config()
    talati = TalatiAdderModel(config=config)
    pc = PCAdderModel(config=config)
    rows = []
    for n in operand_counts:
        if n < 2:
            raise ConfigurationError("need at least two operands")
        stages = reduction_stages(n)
        final_width = n + max(stages - 1, 0)
        apim = fast_multi_add_cycles(n, n)
        relax = max(final_width - FIG6_EXACT_MSBS, 0)
        apim_approx = FULL_ADDER_CYCLES * stages + hybrid_final_add_cycles(
            final_width, relax
        )
        rows.append(
            Figure6Row(
                operands=n,
                apim_cycles=float(apim),
                apim_approx_cycles=float(apim_approx),
                talati_cycles=talati.multi_add_cost(n, n).cycles,
                pc_adder_cycles=pc.multi_add_cost(n, n).cycles,
            )
        )
    return Figure6Result(rows=tuple(rows))


# ---------------------------------------------------------------------------
# E4: Table 1 — QoL and EDP improvement per application per relax level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Cell:
    """One (application, relax-bits) cell: QoL and EDP improvement vs GPU."""

    workload: str
    relax_bits: int
    qol_percent: float
    edp_improvement: float
    qos_ok: bool


@dataclass(frozen=True)
class Table1Result:
    """The full Table 1 grid."""

    levels: tuple[int, ...]
    dataset_bytes: int
    cells: dict[str, tuple[Table1Cell, ...]]  # per workload, level order

    def cell(self, workload: str, relax_bits: int) -> Table1Cell:
        """Fetch one grid cell."""
        for candidate in self.cells[workload]:
            if candidate.relax_bits == relax_bits:
                return candidate
        raise KeyError(f"no cell ({workload}, {relax_bits})")


def run_table1(
    workloads: list[Workload] | None = None,
    levels: tuple[int, ...] = TABLE1_LEVELS,
    dataset_bytes: float = GIB,
    config: APIMConfig | None = None,
    tile_elements: int = 1 << 13,
) -> Table1Result:
    """QoL / EDP-improvement grid over the six applications.

    EDP improvement is measured against the GPU at ``dataset_bytes`` (the
    paper's large-dataset regime); QoL comes from the tile execution.
    """
    workloads = workloads or all_workloads()
    harness = ComparisonHarness(config=config, tile_elements=tile_elements)
    cells: dict[str, tuple[Table1Cell, ...]] = {}
    for workload in workloads:
        row = []
        for level in levels:
            spec = ApproxSpec.last_stage(level) if level else EXACT
            point = harness.compare(workload, dataset_bytes, spec)
            row.append(
                Table1Cell(
                    workload=workload.name,
                    relax_bits=level,
                    qol_percent=point.qol_percent,
                    edp_improvement=point.edp_improvement,
                    qos_ok=point.qos_ok,
                )
            )
        cells[workload.name] = tuple(row)
    return Table1Result(
        levels=tuple(levels),
        dataset_bytes=int(dataset_bytes),
        cells=cells,
    )


# ---------------------------------------------------------------------------
# E5: adaptive mode — the 480x headline
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveResult:
    """Per-workload tuner outcomes plus the aggregate EDP improvement."""

    tunings: dict[str, TuningResult]
    edp_improvement_vs_gpu: dict[str, float]
    best_edp_improvement: float
    mean_edp_improvement: float


def run_adaptive(
    workloads: list[Workload] | None = None,
    dataset_bytes: float = GIB,
    config: APIMConfig | None = None,
    tile_elements: int = 1 << 13,
) -> AdaptiveResult:
    """Run the adaptive tuner per application and price the chosen setting.

    The paper: "using this adaptive design, our design can achieve 480x
    energy-delay product improvement" (vs GPU, approximate mode) "while
    ensuring acceptable quality of service".
    """
    workloads = workloads or all_workloads()
    config = config or default_config()
    executor = APIMExecutor(config)
    tuner = AdaptiveTuner(executor)
    harness = ComparisonHarness(config=config, tile_elements=tile_elements)
    tunings: dict[str, TuningResult] = {}
    improvements: dict[str, float] = {}
    for workload in workloads:
        tuning = tuner.tune(workload, elements=tile_elements)
        tunings[workload.name] = tuning
        spec = (
            ApproxSpec.last_stage(tuning.selected_relax_bits)
            if tuning.selected_relax_bits
            else EXACT
        )
        point = harness.compare(workload, dataset_bytes, spec)
        improvements[workload.name] = point.edp_improvement
    values = list(improvements.values())
    return AdaptiveResult(
        tunings=tunings,
        edp_improvement_vs_gpu=improvements,
        best_edp_improvement=max(values),
        mean_edp_improvement=float(np.mean(values)),
    )
