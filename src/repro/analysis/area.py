"""Area model of the APIM memory unit.

The paper argues its area overhead is small: "the area and logic overhead
introduced by the proposed memory unit is restricted to the interconnect
circuit and its control logic", against the PC-Adder's per-array
controllers.  This module quantifies that claim with the standard
feature-size-squared accounting:

- RRAM cells in a 4F^2 crosspoint footprint;
- CMOS periphery (decoders, drivers, sense amplifiers, interconnect
  switches) from transistor counts at a per-transistor area factor.

Everything is parameterised on the feature size ``f_nm`` (the paper
characterises at 45 nm).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import APIMConfig, default_config
from repro.crossbar.decoder import SharedPeriphery
from repro.errors import ConfigurationError

__all__ = ["AreaModel", "AreaReport"]

#: Crosspoint cell footprint in F^2 (ideal 4F^2 crossbar).
CELL_F2 = 4.0

#: Average CMOS transistor footprint in F^2 (layout with routing).
TRANSISTOR_F2 = 160.0

#: Transistors per sense amplifier (current-mirror SA + MAJ comparator
#: + output mux, Figure 3(b)).
SA_TRANSISTORS = 22


@dataclass(frozen=True)
class AreaReport:
    """Area split of one APIM memory unit, in mm^2."""

    cells_mm2: float
    decoders_mm2: float
    sense_amps_mm2: float
    interconnect_mm2: float
    spare_rows_mm2: float = 0.0

    @property
    def total_mm2(self) -> float:
        """Total unit area."""
        return (
            self.cells_mm2
            + self.decoders_mm2
            + self.sense_amps_mm2
            + self.interconnect_mm2
            + self.spare_rows_mm2
        )

    @property
    def overhead_fraction(self) -> float:
        """Non-storage area over total — the paper's 'overhead' figure."""
        periphery = self.total_mm2 - self.cells_mm2
        return periphery / self.total_mm2 if self.total_mm2 else 0.0


class AreaModel:
    """Feature-size-squared area accounting for a blocked crossbar unit."""

    def __init__(
        self, config: APIMConfig | None = None, f_nm: float = 45.0
    ) -> None:
        if f_nm <= 0:
            raise ConfigurationError(f"feature size must be positive: {f_nm}")
        self.config = config or default_config()
        self.f_nm = f_nm

    def _f2_to_mm2(self, f2: float) -> float:
        meters = self.f_nm * 1e-9
        return f2 * meters * meters * 1e6  # m^2 -> mm^2

    def unit_area(self, num_blocks: int) -> AreaReport:
        """Area of a unit of ``num_blocks`` blocks with shared periphery."""
        if num_blocks <= 0:
            raise ConfigurationError("need at least one block")
        cfg = self.config
        cells_f2 = num_blocks * cfg.block_rows * cfg.block_cols * CELL_F2
        periphery = SharedPeriphery(cfg.block_rows, cfg.block_cols, num_blocks)
        decoder_t = (cfg.block_rows + cfg.block_cols) * (
            periphery.TRANSISTORS_PER_LINE
        )
        switch_t = (
            (num_blocks - 1)
            * cfg.block_cols
            * periphery.TRANSISTORS_PER_SWITCH
        )
        sa_t = cfg.block_cols * SA_TRANSISTORS  # one SA bank, shared
        # Spare-row redundancy budget (resilience layer): extra wordlines
        # of cells per block plus their lines on the shared row decoder.
        spare_rows = cfg.spare_rows_per_block
        spare_f2 = (
            num_blocks * spare_rows * cfg.block_cols * CELL_F2
            + spare_rows * periphery.TRANSISTORS_PER_LINE * TRANSISTOR_F2
        )
        return AreaReport(
            cells_mm2=self._f2_to_mm2(cells_f2),
            decoders_mm2=self._f2_to_mm2(decoder_t * TRANSISTOR_F2),
            sense_amps_mm2=self._f2_to_mm2(sa_t * TRANSISTOR_F2),
            interconnect_mm2=self._f2_to_mm2(switch_t * TRANSISTOR_F2),
            spare_rows_mm2=self._f2_to_mm2(spare_f2),
        )

    def per_array_controller_area(self, num_blocks: int) -> float:
        """Area (mm^2) the PC-Adder-style organisation pays instead: every
        block with its own decoders, no interconnect."""
        if num_blocks <= 0:
            raise ConfigurationError("need at least one block")
        cfg = self.config
        periphery = SharedPeriphery(cfg.block_rows, cfg.block_cols, num_blocks)
        transistors = periphery.periphery_transistors(shared=False)
        transistors += num_blocks * cfg.block_cols * SA_TRANSISTORS
        return self._f2_to_mm2(transistors * TRANSISTOR_F2)

    def density_gib_per_mm2(self, num_blocks: int) -> float:
        """Storage density of the unit in GiB per mm^2."""
        report = self.unit_area(num_blocks)
        bytes_total = num_blocks * self.config.block_bytes
        return bytes_total / (1 << 30) / report.total_mm2
