"""Experiment drivers and paper-style result rendering (S20).

One driver per paper artifact:

- :func:`~repro.analysis.experiments.run_figure4` — error vs EDP of the
  two approximation modes (32x32 multiplication).
- :func:`~repro.analysis.experiments.run_figure5` — exact-APIM energy/
  speedup vs GPU over dataset sizes, per workload.
- :func:`~repro.analysis.experiments.run_figure6` — multi-operand addition
  latency vs the two prior in-memory adders.
- :func:`~repro.analysis.experiments.run_table1` — QoL and EDP improvement
  per application per approximation level.
- :func:`~repro.analysis.experiments.run_adaptive` — the adaptive tuner's
  selected settings and the resulting EDP gain (the 480x headline).

:mod:`repro.analysis.tables` renders each result the way the paper prints
it, so bench output reads side by side with the original.
"""

from repro.analysis.experiments import (
    Figure4Result,
    Figure5Result,
    Figure6Result,
    Table1Result,
    AdaptiveResult,
    run_adaptive,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
)
from repro.analysis.tables import (
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
    render_adaptive,
)
from repro.analysis.area import AreaModel, AreaReport
from repro.analysis.report import generate_report
from repro.analysis.sensitivity import SensitivityResult, sweep_parameter
from repro.analysis.pareto import ParetoPoint, operating_point, pareto_frontier
from repro.analysis.export import (
    adaptive_to_rows,
    figure4_to_rows,
    figure5_to_rows,
    figure6_to_rows,
    table1_to_rows,
    to_csv,
    to_json,
)

__all__ = [
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Table1Result",
    "AdaptiveResult",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table1",
    "run_adaptive",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_table1",
    "render_adaptive",
    "AreaModel",
    "AreaReport",
    "generate_report",
    "sweep_parameter",
    "SensitivityResult",
    "ParetoPoint",
    "pareto_frontier",
    "operating_point",
    "figure4_to_rows",
    "figure5_to_rows",
    "figure6_to_rows",
    "table1_to_rows",
    "adaptive_to_rows",
    "to_csv",
    "to_json",
]
