"""Paper-style rendering of experiment results.

Each ``render_*`` takes the matching result dataclass from
:mod:`repro.analysis.experiments` and returns a printable string shaped
like the paper's artifact, so a bench run can be eyeballed against the
original figures/tables.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    AdaptiveResult,
    Figure4Result,
    Figure5Result,
    Figure6Result,
    Table1Result,
)
from repro.units import format_bytes, format_improvement, format_si

__all__ = [
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_table1",
    "render_adaptive",
]


def render_figure4(result: Figure4Result) -> str:
    """Figure 4: error (log scale) vs EDP for the two approaches."""
    lines = [
        "Figure 4 — error vs EDP, 32x32 multiplication "
        f"({result.samples} random samples)",
        f"{'mode':<12} {'bits':>4} {'mean rel. error':>16} {'EDP (J*s)':>12}",
    ]
    for label, points in (
        ("first-stage", result.first_stage),
        ("last-stage", result.last_stage),
    ):
        for p in points:
            lines.append(
                f"{label:<12} {p.parameter:>4} "
                f"{p.mean_relative_error:>16.3e} {p.edp:>12.3e}"
            )
    gap = result.error_gap_at_edp(1.4e-16)
    lines.append(
        f"error gap at EDP=1.4e-16 J*s (first/last): {gap:.1e} "
        "(paper: ~5 orders of magnitude)"
    )
    return "\n".join(lines)


def render_figure5(result: Figure5Result) -> str:
    """Figure 5: energy improvement and speedup vs dataset size."""
    lines = ["Figure 5 — exact APIM normalised to GPU vs dataset size"]
    header = f"{'workload':<10}" + "".join(
        f"{format_bytes(s):>14}" for s in result.sizes
    )
    lines.append(header + "   (speedup | energy improvement)")
    for name, points in result.curves.items():
        row = f"{name:<10}" + "".join(
            f"{p.speedup:>6.2f}|{p.energy_improvement:<7.1f}" for p in points
        )
        lines.append(row)
        crossover = result.crossover_bytes(name)
        anchor = result.at_one_gib(name)
        lines.append(
            f"  -> crossover at {format_bytes(crossover) if crossover else '>1G'}"
            f"; 1 GiB point: {anchor.speedup:.1f}x speed, "
            f"{anchor.energy_improvement:.0f}x energy "
            "(paper anchors: ~200M crossover, 4.8x / 28x)"
        )
    return "\n".join(lines)


def render_figure6(result: Figure6Result) -> str:
    """Figure 6: N-operand N-bit addition latency vs prior work."""
    lines = [
        "Figure 6 — latency (cycles) of adding N operands of N bits",
        f"{'N':>4} {'APIM':>8} {'APIM-approx':>12} {'MAGIC[24]':>10} "
        f"{'PC-Adder[25]':>13} {'speedup':>8} {'approx':>7}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.operands:>4} {row.apim_cycles:>8.0f} "
            f"{row.apim_approx_cycles:>12.0f} {row.talati_cycles:>10.0f} "
            f"{row.pc_adder_cycles:>13.0f} "
            f"{row.speedup_vs_best_prior:>7.1f}x "
            f"{row.approx_speedup_vs_best_prior:>6.1f}x"
        )
    lines.append(
        "paper claims: >= 2x vs best prior (exact), >= 6x at 99.9 % accuracy"
    )
    return "\n".join(lines)


def render_table1(result: Table1Result) -> str:
    """Table 1: QoL and EDP improvement per application per relax level."""
    lines = [
        "Table 1 — QoL and EDP improvement vs GPU "
        f"(dataset {format_bytes(result.dataset_bytes)})",
        f"{'Application':<12}"
        + "".join(f"{f'{lvl} bits':>20}" for lvl in result.levels),
        f"{'':<12}" + "".join(f"{'EDP | QoL':>20}" for _ in result.levels),
    ]
    for name, row in result.cells.items():
        cells = "".join(
            f"{format_improvement(c.edp_improvement):>10} |{c.qol_percent:>7.2f}%"
            for c in row
        )
        lines.append(f"{name:<12}{cells}")
    return "\n".join(lines)


def render_adaptive(result: AdaptiveResult) -> str:
    """Adaptive mode: selected relax bits and EDP improvement per app."""
    lines = [
        "Adaptive APIM — tuner-selected approximation per application",
        f"{'Application':<12} {'m*':>4} {'QoL':>9} {'EDP vs GPU':>12}",
    ]
    for name, tuning in result.tunings.items():
        trial = tuning.selected_trial
        lines.append(
            f"{name:<12} {tuning.selected_relax_bits:>4} "
            f"{trial.qol_percent:>8.2f}% "
            f"{format_improvement(result.edp_improvement_vs_gpu[name]):>12}"
        )
    lines.append(
        f"best {format_improvement(result.best_edp_improvement)}, "
        f"mean {format_improvement(result.mean_edp_improvement)} "
        "(paper headline: up to 480x in approximate mode)"
    )
    return "\n".join(lines)
