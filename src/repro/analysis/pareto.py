"""Quality/efficiency Pareto analysis over the approximation grid.

The adaptive tuner picks one point per application; this module exposes
the whole frontier — the (QoL, EDP-improvement) trade curve — so users
with different quality budgets can pick their own operating points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import Table1Result
from repro.errors import ConfigurationError

__all__ = [
    "ParetoPoint",
    "non_dominated",
    "operating_point",
    "pareto_frontier",
]


def non_dominated(items: list, metrics) -> list:
    """Strict non-domination filter over minimised objectives.

    ``metrics(item)`` returns a tuple where *lower is better* in every
    coordinate (negate a maximised objective).  An item is dominated when
    another is no worse in every coordinate and strictly better in at
    least one.  The quality/efficiency frontier below and the fleet DSE's
    cost–latency frontier are both this filter under different metrics.
    """
    scored = [(item, tuple(metrics(item))) for item in items]
    frontier = []
    for candidate, cscore in scored:
        dominated = any(
            other is not candidate
            and all(o <= c for o, c in zip(oscore, cscore))
            and any(o < c for o, c in zip(oscore, cscore))
            for other, oscore in scored
        )
        if not dominated:
            frontier.append(candidate)
    return frontier


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (quality, efficiency) setting."""

    workload: str
    relax_bits: int
    qol_percent: float
    edp_improvement: float


def pareto_frontier(result: Table1Result, workload: str) -> list[ParetoPoint]:
    """Non-dominated points of one application's Table-1 row.

    A setting is dominated if another has both lower (or equal) QoL and
    higher (or equal) EDP improvement, with at least one strict.  Because
    both columns are monotone in ``m``, every swept level is typically on
    the frontier — the function still filters rigorously, so it stays
    correct for non-monotone grids (e.g. custom sweeps).
    """
    if workload not in result.cells:
        raise ConfigurationError(
            f"workload {workload!r} not in the grid; "
            f"have {sorted(result.cells)}"
        )
    cells = result.cells[workload]
    frontier = [
        ParetoPoint(
            workload=workload,
            relax_bits=candidate.relax_bits,
            qol_percent=candidate.qol_percent,
            edp_improvement=candidate.edp_improvement,
        )
        for candidate in non_dominated(
            list(cells),
            lambda cell: (cell.qol_percent, -cell.edp_improvement),
        )
    ]
    frontier.sort(key=lambda p: p.qol_percent)
    return frontier


def operating_point(
    result: Table1Result, workload: str, max_qol_percent: float
) -> ParetoPoint:
    """The most efficient frontier point within a quality budget.

    Raises :class:`ConfigurationError` when no swept setting fits (even
    exact mode exceeds the budget — impossible for a healthy kernel, whose
    exact QoL is zero).
    """
    if max_qol_percent < 0:
        raise ConfigurationError("quality budget must be non-negative")
    eligible = [
        point
        for point in pareto_frontier(result, workload)
        if point.qol_percent <= max_qol_percent
    ]
    if not eligible:
        raise ConfigurationError(
            f"no setting of {workload!r} meets QoL <= {max_qol_percent}%"
        )
    return max(eligible, key=lambda p: p.edp_improvement)
