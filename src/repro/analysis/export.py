"""Result export: experiment dataclasses as CSV and JSON.

The paper-style renderers target eyeballs; plotting pipelines want flat
tables.  Each ``*_to_rows`` returns a header plus rows of plain scalars;
:func:`to_csv` / :func:`to_json` serialise any of them.
"""

from __future__ import annotations

import io
import json

from repro.analysis.experiments import (
    AdaptiveResult,
    Figure4Result,
    Figure5Result,
    Figure6Result,
    Table1Result,
)
from repro.errors import ConfigurationError

__all__ = [
    "figure4_to_rows",
    "figure5_to_rows",
    "figure6_to_rows",
    "table1_to_rows",
    "adaptive_to_rows",
    "to_csv",
    "to_json",
]

Rows = tuple[list[str], list[list]]


def figure4_to_rows(result: Figure4Result) -> Rows:
    """Columns: mode, bits, mean_relative_error, energy_J, time_s, edp_Js."""
    header = ["mode", "bits", "mean_relative_error", "energy_J", "time_s",
              "edp_Js"]
    rows = []
    for mode, points in (
        ("first_stage", result.first_stage),
        ("last_stage", result.last_stage),
    ):
        for p in points:
            rows.append(
                [mode, p.parameter, p.mean_relative_error,
                 p.energy_per_mult, p.time_per_mult, p.edp]
            )
    return header, rows


def figure5_to_rows(result: Figure5Result) -> Rows:
    """Columns: workload, dataset_bytes, speedup, energy/EDP improvements."""
    header = ["workload", "dataset_bytes", "speedup", "energy_improvement",
              "edp_improvement", "apim_time_s", "gpu_time_s",
              "apim_energy_J", "gpu_energy_J"]
    rows = []
    for name, points in result.curves.items():
        for p in points:
            rows.append(
                [name, p.dataset_bytes, p.speedup, p.energy_improvement,
                 p.edp_improvement, p.apim_time, p.gpu_time,
                 p.apim_energy, p.gpu_energy]
            )
    return header, rows


def figure6_to_rows(result: Figure6Result) -> Rows:
    """Columns: operands + per-design cycle counts + speedups."""
    header = ["operands", "apim_cycles", "apim_approx_cycles",
              "talati_cycles", "pc_adder_cycles", "speedup_vs_best_prior",
              "approx_speedup_vs_best_prior"]
    rows = [
        [r.operands, r.apim_cycles, r.apim_approx_cycles, r.talati_cycles,
         r.pc_adder_cycles, r.speedup_vs_best_prior,
         r.approx_speedup_vs_best_prior]
        for r in result.rows
    ]
    return header, rows


def table1_to_rows(result: Table1Result) -> Rows:
    """Columns: workload, relax_bits, qol_percent, edp_improvement, qos_ok."""
    header = ["workload", "relax_bits", "qol_percent", "edp_improvement",
              "qos_ok"]
    rows = []
    for name, cells in result.cells.items():
        for cell in cells:
            rows.append(
                [name, cell.relax_bits, cell.qol_percent,
                 cell.edp_improvement, cell.qos_ok]
            )
    return header, rows


def adaptive_to_rows(result: AdaptiveResult) -> Rows:
    """Columns: workload, selected m, QoL, EDP improvement vs GPU."""
    header = ["workload", "selected_relax_bits", "qol_percent",
              "edp_improvement_vs_gpu"]
    rows = []
    for name, tuning in result.tunings.items():
        trial = tuning.selected_trial
        rows.append(
            [name, tuning.selected_relax_bits, trial.qol_percent,
             result.edp_improvement_vs_gpu[name]]
        )
    return header, rows


def to_csv(rows: Rows) -> str:
    """Serialise ``(header, rows)`` as RFC-4180-ish CSV text."""
    header, body = rows
    if not header:
        raise ConfigurationError("export needs a non-empty header")
    out = io.StringIO()

    def cell(value) -> str:
        text = f"{value}"
        if "," in text or '"' in text or "\n" in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    out.write(",".join(cell(c) for c in header) + "\n")
    for row in body:
        if len(row) != len(header):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(header)}"
            )
        out.write(",".join(cell(c) for c in row) + "\n")
    return out.getvalue()


def to_json(rows: Rows) -> str:
    """Serialise ``(header, rows)`` as a JSON list of objects."""
    header, body = rows
    if not header:
        raise ConfigurationError("export needs a non-empty header")
    records = []
    for row in body:
        if len(row) != len(header):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(header)}"
            )
        records.append(dict(zip(header, row)))
    return json.dumps(records, indent=2)
