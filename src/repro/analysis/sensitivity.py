"""Sensitivity analysis: how the headline results move with the model's
calibrated constants.

The reproduction fixes several constants the paper does not publish
(per-op energies, the peripheral energy per lane-cycle, rows per lane).
This module sweeps them and reports the effect on the 1 GB comparison
point, so a reader can judge how much of the result is structure and how
much is calibration — the honest companion to EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import APIMConfig, default_config
from repro.errors import ConfigurationError
from repro.runtime.comparison import ComparisonHarness
from repro.units import GIB
from repro.workloads import workload_by_name
from repro.workloads.base import Workload

__all__ = ["SensitivityPoint", "SensitivityResult", "sweep_parameter"]

#: Config fields the sweep accepts, with a short rationale.
SWEEPABLE = {
    "e_nor": "MAGIC NOR energy per cell (device-level constant)",
    "e_peripheral": "decoder/driver energy per lane-cycle (calibrated)",
    "mult_rows_per_lane": "rows one operation chain occupies (lane model)",
    "cycle_time": "MAGIC cycle time",
    "block_rows": "block height (storage vs parallelism split)",
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep sample."""

    value: float
    speedup: float
    energy_improvement: float
    edp_improvement: float


@dataclass(frozen=True)
class SensitivityResult:
    """A full parameter sweep at the 1 GB comparison point."""

    parameter: str
    workload: str
    points: tuple[SensitivityPoint, ...]

    def spread(self) -> float:
        """max/min EDP improvement across the sweep — the sensitivity."""
        values = [p.edp_improvement for p in self.points]
        low = min(values)
        return max(values) / low if low > 0 else float("inf")


def sweep_parameter(
    parameter: str,
    values: list[float],
    workload: Workload | str = "Sobel",
    dataset_bytes: float = GIB,
    base_config: APIMConfig | None = None,
    tile_elements: int = 1 << 12,
) -> SensitivityResult:
    """Sweep one config field and price the workload at each setting."""
    if parameter not in SWEEPABLE:
        raise ConfigurationError(
            f"unknown sweep parameter {parameter!r}; "
            f"supported: {sorted(SWEEPABLE)}"
        )
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    if isinstance(workload, str):
        workload = workload_by_name(workload)
    base = base_config or default_config()
    points = []
    for value in values:
        cast = int(value) if parameter in ("mult_rows_per_lane", "block_rows") else value
        config = base.with_overrides(**{parameter: cast})
        harness = ComparisonHarness(config=config, tile_elements=tile_elements)
        comparison = harness.compare(workload, dataset_bytes)
        points.append(
            SensitivityPoint(
                value=float(value),
                speedup=comparison.speedup,
                energy_improvement=comparison.energy_improvement,
                edp_improvement=comparison.edp_improvement,
            )
        )
    return SensitivityResult(
        parameter=parameter,
        workload=workload.name,
        points=tuple(points),
    )
